"""Useful-skew and sizing study (the post-composition stages of Fig. 4).

Composition merges registers with *similar* D/Q slacks precisely so that
one useful-skew offset per MBR helps every constituent bit.  This example
makes that mechanism visible: it composes a design, then applies useful
skew and drive sizing step by step, reporting WNS/TNS and clock-pin
capacitance after each stage, plus a per-MBR view of the offsets chosen.

Run:  python examples/skew_sizing_study.py
"""

from repro.bench import generate_design, preset
from repro.clocktree import synthesize_clock_tree
from repro.core.composer import compose_design
from repro.core.sizing import size_registers
from repro.library import default_library
from repro.skew import assign_useful_skew


def stage(label, timer, design):
    s = timer.summary()
    cap = synthesize_clock_tree(design).report.capacitance
    print(f"  {label:<28} WNS {s.wns:7.3f}  TNS {s.tns:8.2f}  "
          f"failing {s.failing_endpoints:4d}  clk cap {cap:.4f} pF")
    return s


def main() -> None:
    library = default_library()
    bundle = generate_design(preset("D3", scale=0.25), library)
    design, timer = bundle.design, bundle.timer

    print(f"design {design.name} at clock period {bundle.clock_period} ns")
    stage("base (after placement)", timer, design)

    result = compose_design(design, timer, bundle.scan_model)
    stage(f"after composition ({len(result.composed)} groups)", timer, design)

    new_cells = [design.cells[g.new_cell] for g in result.composed if g.new_cell in design.cells]
    skew = assign_useful_skew(timer, new_cells, window=0.05)
    stage("after useful skew", timer, design)

    nonzero = {k: v for k, v in skew.offsets.items() if abs(v) > 1e-9}
    print(f"\n  {len(nonzero)}/{len(skew.offsets)} new MBRs received a skew offset;"
          f" the largest:")
    for name, offset in sorted(nonzero.items(), key=lambda kv: -abs(kv[1]))[:8]:
        cell = design.cells[name]
        print(f"    {name:>10} ({cell.register_cell.name:<16}) {offset:+.4f} ns")

    sizing = size_registers(design, timer, new_cells)
    timer.dirty()
    print()
    stage(f"after sizing ({sizing.num_swapped} downsized)", timer, design)
    print(f"\n  sizing saved {-sizing.area_delta:.2f} um^2 of area and "
          f"{-sizing.clock_cap_delta * 1000:.2f} fF of clock-pin capacitance")


if __name__ == "__main__":
    main()
