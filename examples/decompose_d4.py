"""Future-work extension: decompose & recompose initial 8-bit MBRs.

The paper observes that composition barely helps designs like D4 whose
clock tree is dominated by pre-existing 8-bit MBRs (which are skipped as
already-maximal), and proposes decomposing and recomposing them instead.
This example runs both flavours on the D4-like benchmark and compares —
including the clock/data/leakage power split the whole exercise is about.

Run:  python examples/decompose_d4.py
"""

from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.library import default_library
from repro.metrics.power import estimate_power


def run(library, decompose: bool):
    bundle = generate_design(preset("D4", scale=0.2), library)
    config = FlowConfig(decompose_widths=(8,) if decompose else ())
    report = run_flow(bundle.design, bundle.timer, bundle.scan_model, config)
    power = estimate_power(bundle.design, clock_period_ns=bundle.clock_period)
    return report, power


def main() -> None:
    library = default_library()
    plain, plain_power = run(library, decompose=False)
    ext, ext_power = run(library, decompose=True)

    print("D4 (8-bit-rich design), plain composition vs decompose+recompose:\n")
    rows = [
        ("registers after", plain.final.total_regs, ext.final.total_regs),
        ("8-bit MBRs after", plain.final.width_histogram.get(8, 0),
         ext.final.width_histogram.get(8, 0)),
        ("TNS after (ns)", round(plain.final.tns, 1), round(ext.final.tns, 1)),
        ("failing endpoints", plain.final.failing_endpoints, ext.final.failing_endpoints),
        ("clock cap (pF)", round(plain.final.clk_cap, 4), round(ext.final.clk_cap, 4)),
        ("clock power (mW)", round(plain_power.clock_dynamic_mw, 3),
         round(ext_power.clock_dynamic_mw, 3)),
        ("total power (mW)", round(plain_power.total_mw, 3), round(ext_power.total_mw, 3)),
    ]
    print(f"{'':>22} {'plain':>10} {'decompose':>10}")
    for label, a, b in rows:
        print(f"{label:>22} {a:>10} {b:>10}")

    if ext.decomposition is not None:
        d = ext.decomposition
        reformed = ext.final.width_histogram.get(8, 0)
        print(f"\ndecomposed {d.cells_removed} MBRs into {d.cells_created} bit cells;"
              f" the ILP re-formed {reformed} 8-bit MBRs")
    print("\nfinding: the refresh pays on timing (every re-formed MBR gets fresh")
    print("drive mapping and useful skew), not on raw register count — the bits")
    print("of a dense bank occupy more area as singles than their shared cell did.")


if __name__ == "__main__":
    main()
