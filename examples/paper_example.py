"""The paper's worked example (Figs. 1-3), reproduced end to end.

Builds the six-register design of Fig. 2, evaluates every candidate MBR's
placement-aware weight (Fig. 3's table), and solves the composition ILP
twice — without and with incomplete MBRs — printing the selected solutions
the paper shows.

Run:  python examples/paper_example.py
"""

import math

from repro.bench.paper_example import (
    PAPER_WIDTHS,
    build_paper_example,
    paper_example_graph,
)
from repro.core.candidates import CandidateConfig, enumerate_candidates
from repro.core.compatibility import analyze_registers
from repro.ilp import SetPartitionProblem, solve_set_partition
from repro.library import default_library
from repro.sta import Timer


def solve(candidates):
    names = sorted(PAPER_WIDTHS)
    index = {n: i for i, n in enumerate(names)}
    problem = SetPartitionProblem(
        n_elements=len(names),
        subsets=tuple(frozenset(index[m] for m in c.members) for c in candidates),
        weights=tuple(c.weight for c in candidates),
    )
    sol = solve_set_partition(problem)
    chosen = sorted("".join(sorted(candidates[i].members)) for i in sol.chosen)
    return chosen, sol.objective


def main() -> None:
    library = default_library()
    design = build_paper_example(library)
    timer = Timer(design, clock_period=5.0)
    infos = analyze_registers(design, timer)
    graph = paper_example_graph(design, infos)

    config = CandidateConfig(allow_incomplete=True, max_incomplete_area_overhead=math.inf)
    candidates = enumerate_candidates(graph, list(infos.values()), library, config=config)

    print("candidate MBRs and their weights (paper Fig. 3):")
    by_size: dict[int, list] = {}
    for cand in candidates:
        by_size.setdefault(len(cand.members), []).append(cand)
    for size in sorted(by_size):
        row = "  ".join(
            f"{''.join(sorted(c.members)):>5}={c.weight:5.2f}"
            for c in sorted(by_size[size], key=lambda c: c.weight)
        )
        label = "orig" if size == 1 else f"{size}-reg"
        print(f"  {label:>6}: {row}")

    exact_only = [c for c in candidates if not c.is_incomplete]
    chosen, cost = solve(exact_only)
    print(f"\nILP without incomplete MBRs: {chosen}  (cost {cost:.3f})")
    print("  paper: {B,F} and {A,C,D} become 3-bit MBRs, E stays")

    chosen, cost = solve(candidates)
    print(f"ILP with incomplete MBRs:    {chosen}  (cost {cost:.3f})")
    print("  paper: {A,E} maps to an incomplete 8-bit MBR, plus {B,F} and {C,D}")
    print("\n(as the paper notes, the flow's 5% area-overhead rule would, in")
    print(" reality, reject the AE merge — rerun with the default")
    print(" CandidateConfig to see it disappear)")


if __name__ == "__main__":
    main()
