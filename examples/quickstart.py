"""Quickstart: compose multi-bit registers on a small synthetic design.

Generates a placed design rich in registers, runs the paper's full
incremental flow (placement-aware ILP composition -> useful skew -> MBR
sizing), and prints the before/after quality-of-results row.

Run:  python examples/quickstart.py
"""

from repro.bench import generate_design, preset
from repro.flow import run_flow
from repro.library import default_library
from repro.reporting import format_table1


def main() -> None:
    library = default_library()

    # A scaled-down analogue of the paper's D1 industrial benchmark:
    # ~200 registers in clustered banks, scan chains, gated clocks, and a
    # clock period chosen so ~38% of endpoints violate (like the paper's
    # designs at this flow stage).
    bundle = generate_design(preset("D1", scale=0.3), library)
    design = bundle.design
    print(f"design {design.name}: {len(design.cells)} cells, "
          f"{design.total_register_count()} registers, "
          f"clock period {bundle.clock_period} ns")

    report = run_flow(design, bundle.timer, bundle.scan_model)

    print()
    print(format_table1([report]))
    print()
    savings = report.savings
    print(f"registers: {report.base.total_regs} -> {report.final.total_regs} "
          f"(-{savings['total_regs']:.0%})")
    print(f"clock-tree capacitance: -{savings['clk_cap']:.0%}")
    print(f"composed groups: {len(report.composition.composed)}, "
          f"useful-skew offsets: {len(report.skew.offsets) if report.skew else 0}, "
          f"downsized cells: {report.sizing.num_swapped if report.sizing else 0}")


if __name__ == "__main__":
    main()
