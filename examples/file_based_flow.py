"""File-based flow: library + netlist + placement through disk formats.

Demonstrates the I/O layer the way a tool user would drive it: write the
cell library as Liberty-style text and the design as Verilog + DEF, read
everything back, extract the scan chains from the netlist, and run MBR
composition on the loaded design.

Run:  python examples/file_based_flow.py
"""

import tempfile
from pathlib import Path

from repro.bench import generate_design, preset
from repro.core.composer import compose_design
from repro.io import (
    read_def,
    read_liberty,
    read_verilog,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import default_library
from repro.netlist.validate import validate_design
from repro.scan import ScanModel
from repro.sta import Timer


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_flow_"))
    print(f"working directory: {workdir}")

    # Producer side: build and save a design.
    library = default_library()
    bundle = generate_design(preset("D2", scale=0.15), library)
    write_liberty(library, workdir / "repro28.lib")
    write_verilog(bundle.design, workdir / "design.v")
    write_def(bundle.design, workdir / "design.def")
    for name in ("repro28.lib", "design.v", "design.def"):
        size = (workdir / name).stat().st_size
        print(f"wrote {name}: {size} bytes")

    # Consumer side: a fresh session loads everything from disk.
    lib = read_liberty(workdir / "repro28.lib")
    design = read_verilog(workdir / "design.v", lib)
    read_def(workdir / "design.def", design)
    scan_model = ScanModel.from_design(design)
    print(f"loaded {design.name}: {len(design.cells)} cells, "
          f"{design.total_register_count()} registers, "
          f"{len(scan_model.chains)} scan chains")

    timer = Timer(design, clock_period=bundle.clock_period)
    before = timer.summary()
    result = compose_design(design, timer, scan_model)
    after = timer.summary()

    print(f"composed {len(result.composed)} MBR groups: "
          f"{result.registers_before} -> {result.registers_after} registers")
    print(f"timing: TNS {before.tns:.2f} -> {after.tns:.2f} ns, "
          f"failing endpoints {before.failing_endpoints} -> {after.failing_endpoints}")
    errors = [i for i in validate_design(design) if i.is_error]
    print(f"netlist validation: {'clean' if not errors else errors}")

    write_verilog(design, workdir / "design_composed.v")
    write_def(design, workdir / "design_composed.def")
    print(f"saved composed design to {workdir}/design_composed.[v,def]")


if __name__ == "__main__":
    main()
