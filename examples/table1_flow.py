"""Full evaluation: regenerate the paper's Table 1, Fig. 5, and Fig. 6.

Runs the incremental MBR composition flow (ILP and heuristic baseline) on
all five synthetic industrial benchmarks and prints the three artifacts of
the paper's Section 5.

Run:  python examples/table1_flow.py [scale] [workers]
      (scale defaults to 0.25; 1.0 runs the full presets, several minutes;
       workers parallelizes the ILP solve stage, bit-identical results)
"""

import sys

from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.library import default_library
from repro.reporting import (
    format_fig5_histograms,
    format_fig6_comparison,
    format_stage_runtimes,
    format_table1,
)

DESIGNS = ["D1", "D2", "D3", "D4", "D5"]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    library = default_library()

    ilp_reports, heur_reports = [], []
    for name in DESIGNS:
        for algorithm, sink in (("ilp", ilp_reports), ("heuristic", heur_reports)):
            bundle = generate_design(preset(name, scale=scale), library)
            config = FlowConfig(algorithm=algorithm)
            config.composer.workers = workers
            report = run_flow(bundle.design, bundle.timer, bundle.scan_model, config)
            sink.append(report)
        print(f"{name}: ilp {ilp_reports[-1].base.total_regs} -> "
              f"{ilp_reports[-1].final.total_regs} regs, "
              f"heuristic -> {heur_reports[-1].final.total_regs} regs")

    print("\n=== Table 1: design characteristics before/after MBR composition ===")
    print(format_table1(ilp_reports))

    print("\n=== Fig. 5: MBR bit widths before & after composition ===")
    print(format_fig5_histograms(ilp_reports))

    print("\n=== Fig. 6: normalized registers, ILP vs heuristic ===")
    print(format_fig6_comparison(ilp_reports, heur_reports))

    print(f"\n=== Per-stage runtimes (ILP flow, workers={workers}) ===")
    print(format_stage_runtimes(ilp_reports))


if __name__ == "__main__":
    main()
