"""Tests for the stage-runtime report table."""

from repro.core.composer import CompositionResult
from repro.engine import StageTrace
from repro.flow import FlowReport
from repro.metrics import DesignMetrics
from repro.reporting import format_stage_counters, format_stage_runtimes


def _report(name: str, stages: dict[str, float]) -> FlowReport:
    trace = StageTrace()
    for stage_name, seconds in stages.items():
        trace.record(stage_name, seconds)
    return FlowReport(
        design_name=name,
        base=DesignMetrics(),
        final=DesignMetrics(),
        composition=CompositionResult(),
        skew=None,
        sizing=None,
        runtime_seconds=sum(stages.values()),
        trace=trace,
    )


class TestStageRuntimes:
    def test_one_column_per_stage_plus_total(self):
        rep = _report("D1", {"base-metrics": 0.5, "compose": 2.0, "skew": 0.25})
        text = format_stage_runtimes([rep])
        lines = text.splitlines()
        assert "base-metrics" in lines[0]
        assert "compose" in lines[0]
        assert "Total(s)" in lines[0]
        assert "D1" in text and "2.00" in text and "2.75" in text

    def test_union_of_stage_names_across_reports(self):
        a = _report("D1", {"compose": 1.0})
        b = _report("D2", {"compose": 1.0, "sizing": 0.5})
        text = format_stage_runtimes([a, b])
        # D1 has no sizing stage: its cell renders as 0.00, not a crash.
        assert "sizing" in text
        assert "0.00" in text

    def test_traceless_report_renders(self):
        rep = _report("D1", {"compose": 1.0})
        rep.trace = None
        text = format_stage_runtimes([rep])
        assert "D1" in text


class TestStageCounters:
    def test_int_counters_render_without_decimal_point(self):
        rep = _report("D1", {})
        rep.trace.record("compose", 1.0, counters={"ilp_nodes": 4420, "workers": 2})
        text = format_stage_counters([rep])
        assert "ilp_nodes=4420" in text
        assert "workers=2" in text
        assert "2.0" not in text  # ints never grow a spurious decimal point

    def test_float_counters_render_compactly(self):
        rep = _report("D1", {})
        rep.trace.record("solve", 0.5, counters={"gap": 0.25})
        assert "gap=0.25" in format_stage_counters([rep])

    def test_nested_children_are_summed(self):
        rep = _report("D1", {})
        inner = StageTrace()
        inner.record("solve", 0.2, counters={"ilp_nodes": 3})
        rep.trace.record("compose", 1.0, counters={"ilp_nodes": 4}, children=inner)
        text = format_stage_counters([rep])
        assert "ilp_nodes=7" in text

    def test_traceless_report_renders(self):
        rep = _report("D1", {})
        rep.trace = None
        assert format_stage_counters([rep]).startswith("D1:")
