"""Tests for the synthetic benchmark generator and presets."""

import pytest

from repro.bench import BenchmarkSpec, generate_design, preset, PRESETS
from repro.netlist.validate import validate_design


@pytest.fixture(scope="module")
def bundle(lib):
    return generate_design(preset("D1", scale=0.15), lib)


class TestGeneratedDesign:
    def test_register_count_matches_spec(self, bundle):
        assert bundle.design.total_register_count() == bundle.spec.n_registers

    def test_structurally_valid(self, bundle):
        assert not [i for i in validate_design(bundle.design) if i.is_error]

    def test_deterministic(self, lib):
        a = generate_design(preset("D2", scale=0.1), lib)
        b = generate_design(preset("D2", scale=0.1), lib)
        assert set(a.design.cells) == set(b.design.cells)
        assert all(
            a.design.cells[n].origin == b.design.cells[n].origin for n in a.design.cells
        )
        assert a.clock_period == b.clock_period

    def test_seed_changes_design(self, lib):
        from dataclasses import replace

        a = generate_design(preset("D2", scale=0.1), lib)
        b = generate_design(replace(preset("D2", scale=0.1), seed=999), lib)
        positions_a = sorted(c.origin.as_tuple() for c in a.design.registers())
        positions_b = sorted(c.origin.as_tuple() for c in b.design.registers())
        assert positions_a != positions_b

    def test_failing_endpoint_fraction_near_target(self, bundle):
        s = bundle.timer.summary()
        frac = s.failing_endpoints / s.total_endpoints
        assert abs(frac - bundle.spec.failing_endpoint_fraction) < 0.12

    def test_width_mix_roughly_matches(self, bundle):
        hist = bundle.design.width_histogram()
        total = sum(hist.values())
        for width, target in bundle.spec.width_mix.items():
            actual = hist.get(width, 0) / total
            assert abs(actual - target) < 0.15

    def test_registers_on_legal_grid(self, bundle):
        from repro.placement import PlacementRows

        rows = PlacementRows(
            bundle.design.die,
            bundle.design.library.technology.row_height,
            bundle.design.library.technology.site_width,
        )
        for cell in bundle.design.registers():
            snapped = rows.snap(cell.origin)
            assert abs(snapped.x - cell.origin.x) < 1e-6
            assert abs(snapped.y - cell.origin.y) < 1e-6

    def test_no_cell_overlaps(self, bundle):
        cells = sorted(bundle.design.cells.values(), key=lambda c: (c.origin.y, c.origin.x))
        by_row = {}
        for c in cells:
            by_row.setdefault(round(c.origin.y, 3), []).append(c)
        for row_cells in by_row.values():
            for a, b in zip(row_cells, row_cells[1:]):
                assert a.origin.x + a.libcell.width <= b.origin.x + 1e-6, (a.name, b.name)

    def test_scan_chains_cover_scan_registers(self, bundle):
        scan_regs = {
            c.name
            for c in bundle.design.registers()
            if c.register_cell.func_class.is_scan
        }
        chained = {n for ch in bundle.scan_model.chains.values() for n in ch.cells}
        assert chained == scan_regs

    def test_clock_gating_present(self, bundle):
        gated = [n for n in bundle.design.nets.values() if n.is_clock and n.name != "clk"]
        assert gated  # some clusters are behind ICGs


class TestPresets:
    def test_all_presets_distinct_seeds(self):
        seeds = [s.seed for s in PRESETS.values()]
        assert len(set(seeds)) == len(PRESETS)

    def test_d4_is_8bit_rich(self):
        assert PRESETS["D4"].width_mix[8] > 3 * PRESETS["D1"].width_mix[8]

    def test_scale(self):
        assert preset("D1", scale=0.5).n_registers == PRESETS["D1"].n_registers // 2
        assert preset("D1").n_registers == PRESETS["D1"].n_registers

    def test_d4_has_lower_composable_fraction(self, lib):
        # D4's 8-bit richness makes fewer registers composable (Table 1).
        from repro.core.compatibility import analyze_registers

        b1 = generate_design(preset("D1", scale=0.15), lib)
        b4 = generate_design(preset("D4", scale=0.15), lib)
        f1 = sum(
            1 for i in analyze_registers(b1.design, b1.timer, b1.scan_model).values() if i.composable
        ) / b1.design.total_register_count()
        f4 = sum(
            1 for i in analyze_registers(b4.design, b4.timer, b4.scan_model).values() if i.composable
        ) / b4.design.total_register_count()
        assert f4 < f1
