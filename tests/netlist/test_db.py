"""Tests for the netlist object model and design container."""

import pytest

from repro.geometry import Point, Rect
from repro.library.cells import PinDirection
from repro.library.functional import DFF_R
from repro.netlist import Design, RegisterView
from repro.netlist.validate import validate_design


class TestDesignBasics:
    def test_cell_and_net_namespaces(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        c = d.add_cell("u1", "INV_X1", Point(1, 1))
        n = d.add_net("n1")
        d.connect(c.pin("A"), n)
        assert d.cell("u1") is c
        assert d.net("n1") is n
        assert c.pin("A").net is n
        assert n.terminals == [c.pin("A")]

    def test_duplicate_names_rejected(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        d.add_cell("u1", "INV_X1")
        d.add_net("n1")
        with pytest.raises(ValueError):
            d.add_cell("u1", "INV_X1")
        with pytest.raises(ValueError):
            d.add_net("n1")

    def test_missing_lookups_raise(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        with pytest.raises(KeyError):
            d.cell("nope")
        with pytest.raises(KeyError):
            d.net("nope")

    def test_unique_name_generation(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        d.add_cell("mbr_1", "INV_X1")
        name = d.unique_name("mbr")
        assert name != "mbr_1" and name not in d.cells

    def test_remove_cell_disconnects(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        c = d.add_cell("u1", "INV_X1")
        n = d.add_net("n1")
        d.connect(c.pin("A"), n)
        d.remove_cell(c)
        assert "u1" not in d.cells
        assert n.terminals == []

    def test_reconnect_moves_pin(self, lib):
        d = Design("t", lib, Rect(0, 0, 10, 10))
        c = d.add_cell("u1", "INV_X1")
        n1, n2 = d.add_net("n1"), d.add_net("n2")
        d.connect(c.pin("A"), n1)
        d.connect(c.pin("A"), n2)
        assert c.pin("A").net is n2
        assert n1.terminals == [] and n2.terminals == [c.pin("A")]


class TestNetQueries:
    def test_driver_and_sinks(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        drv = d.add_cell("drv", "BUF_X2", Point(1, 1))
        s1 = d.add_cell("s1", "INV_X1", Point(5, 5))
        s2 = d.add_cell("s2", "INV_X1", Point(9, 2))
        n = d.add_net("n")
        d.connect(drv.pin("Z"), n)
        d.connect(s1.pin("A"), n)
        d.connect(s2.pin("A"), n)
        assert n.driver is drv.pin("Z")
        assert set(n.sinks) == {s1.pin("A"), s2.pin("A")}
        assert n.sink_cap() == pytest.approx(2 * s1.pin("A").cap)

    def test_input_port_drives_net(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        p = d.add_port("in", PinDirection.INPUT, Point(0, 10))
        n = d.add_net("n")
        d.connect(p, n)
        assert n.driver is p

    def test_output_port_is_sink(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        p = d.add_port("out", PinDirection.OUTPUT, Point(20, 10))
        n = d.add_net("n")
        d.connect(p, n)
        assert n.driver is None
        assert n.sinks == [p]

    def test_hpwl_and_bbox(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        a = d.add_cell("a", "BUF_X1", Point(0, 0))
        b = d.add_cell("b", "INV_X1", Point(10, 5))
        n = d.add_net("n")
        d.connect(a.pin("Z"), n)
        d.connect(b.pin("A"), n)
        expected = a.pin("Z").location.manhattan_to(b.pin("A").location)
        assert n.hpwl() == pytest.approx(expected)

    def test_bbox_exclude_terminal(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        a = d.add_cell("a", "BUF_X1", Point(0, 0))
        b = d.add_cell("b", "INV_X1", Point(10, 5))
        n = d.add_net("n")
        d.connect(a.pin("Z"), n)
        d.connect(b.pin("A"), n)
        box = n.bbox(exclude=a.pin("Z"))
        assert box is not None
        assert box.area == 0.0  # single remaining terminal

    def test_pin_location_tracks_cell_move(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        c = d.add_cell("c", "BUF_X1", Point(0, 0))
        loc0 = c.pin("Z").location
        c.move_to(Point(3, 4))
        loc1 = c.pin("Z").location
        assert loc1.x == pytest.approx(loc0.x + 3) and loc1.y == pytest.approx(loc0.y + 4)

    def test_fixed_cell_cannot_move(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        c = d.add_cell("c", "BUF_X1", Point(0, 0), fixed=True)
        with pytest.raises(ValueError):
            c.move_to(Point(1, 1))


class TestDesignMetrics:
    def test_register_counting(self, flop_row):
        assert flop_row.total_register_count() == 4
        assert flop_row.total_register_bits() == 4
        assert flop_row.width_histogram() == {1: 4}

    def test_area_positive(self, flop_row):
        assert flop_row.total_cell_area() > 0

    def test_hpwl_split_sums_to_total(self, flop_row):
        clk, other = flop_row.hpwl_split()
        assert clk > 0 and other > 0
        assert clk + other == pytest.approx(flop_row.total_hpwl())

    def test_registers_view(self, flop_row):
        regs = flop_row.registers()
        assert len(regs) == 4
        assert all(r.is_register for r in regs)


class TestRegisterView:
    def test_bits_of_single_flop(self, flop_row):
        view = RegisterView(flop_row.cell("ff0"))
        bits = view.bits()
        assert len(bits) == 1
        assert bits[0].d_net is flop_row.net("n_d0")
        assert bits[0].q_net is flop_row.net("n_q0")

    def test_control_nets(self, flop_row):
        view = RegisterView(flop_row.cell("ff1"))
        assert view.clock_net is flop_row.net("clk")
        assert view.control_nets() == {"RN": flop_row.net("rst")}

    def test_non_register_rejected(self, flop_row):
        with pytest.raises(TypeError):
            RegisterView(flop_row.cell("ibuf0"))

    def test_scan_nets(self, scan_row):
        v0 = RegisterView(scan_row.cell("ff0"))
        v1 = RegisterView(scan_row.cell("ff1"))
        assert v0.scan_in_net() is scan_row.net("n_si")
        assert v0.scan_out_net() is v1.scan_in_net()


class TestValidation:
    def test_clean_fixture_designs(self, flop_row, scan_row):
        assert not [i for i in validate_design(flop_row) if i.is_error]
        assert not [i for i in validate_design(scan_row) if i.is_error]

    def test_multiple_drivers_flagged(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        a = d.add_cell("a", "BUF_X1", Point(0, 0))
        b = d.add_cell("b", "BUF_X1", Point(5, 5))
        n = d.add_net("n")
        d.connect(a.pin("Z"), n)
        d.connect(b.pin("Z"), n)
        issues = validate_design(d)
        assert any("multiply driven" in i.message for i in issues if i.is_error)

    def test_driverless_net_flagged(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        a = d.add_cell("a", "INV_X1", Point(0, 0))
        n = d.add_net("n")
        d.connect(a.pin("A"), n)
        issues = validate_design(d)
        assert any("no driver" in i.message for i in issues if i.is_error)

    def test_unconnected_register_clock_flagged(self, lib):
        d = Design("t", lib, Rect(0, 0, 20, 20))
        ff = lib.register_cells(DFF_R, 1)[0]
        d.add_cell("ff", ff, Point(1, 1))
        issues = validate_design(d)
        assert any("clock pin unconnected" in i.message for i in issues if i.is_error)

    def test_cell_outside_die_flagged(self, lib):
        d = Design("t", lib, Rect(0, 0, 5, 5))
        d.add_cell("c", "BUF_X1", Point(4.9, 0))
        issues = validate_design(d)
        assert any("outside the die" in i.message for i in issues if i.is_error)
