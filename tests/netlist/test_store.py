"""Slotted-store unit tests: interning, free-lists, terminal lists, views.

``tests/netlist/test_db.py`` exercises the flyweight API surface; these
tests pin down the :class:`~repro.netlist.store.NetlistStore` mechanics
underneath it — the parts the higher-level suites only hit indirectly.
"""

import random

import pytest

from repro.geometry import Point, Rect
from repro.netlist import Design
from repro.netlist.store import NO_ID


def make_design(lib):
    return Design("t", lib, Rect(0, 0, 100, 100))


class TestInterning:
    def test_libcell_interned_once(self, lib):
        d = make_design(lib)
        a = d.add_cell("u1", "INV_X1")
        b = d.add_cell("u2", "INV_X1")
        store = d.store
        assert store.cell_lib[a._cid] == store.cell_lib[b._cid]
        rec = store.libs[store.cell_lib[a._cid]]
        assert rec.libcell is a.libcell
        assert rec.pin_index == {p.name: i for i, p in enumerate(rec.pins)}

    def test_register_record_flags(self, lib):
        d = make_design(lib)
        ff = d.add_cell("ff", "DFF_R_X1")
        inv = d.add_cell("i", "INV_X1")
        store = d.store
        assert store.cell_is_register(ff._cid)
        assert not store.cell_is_register(inv._cid)


class TestFreeLists:
    def test_cell_slot_and_pin_block_recycled(self, lib):
        d = make_design(lib)
        a = d.add_cell("u1", "INV_X1")
        cid, pin0 = a._cid, int(d.store.cell_pin0[a._cid])
        d.remove_cell(a)
        b = d.add_cell("u2", "INV_X1")  # same pin-block size: reuse
        assert b._cid == cid
        assert int(d.store.cell_pin0[b._cid]) == pin0

    def test_recycled_block_starts_unconnected(self, lib):
        d = make_design(lib)
        a = d.add_cell("u1", "INV_X1")
        n = d.add_net("n1")
        d.connect(a.pin("A"), n)
        d.remove_cell(a)
        b = d.add_cell("u2", "INV_X1")
        assert b.pin("A").net is None
        assert n.terminals == []

    def test_net_id_recycled(self, lib):
        d = make_design(lib)
        n = d.add_net("n1")
        nid = n._nid
        d.remove_net(n)
        m = d.add_net("n2")
        assert m._nid == nid


class TestTerminalList:
    def test_order_is_connection_order(self, lib):
        d = make_design(lib)
        n = d.add_net("n")
        cells = [d.add_cell(f"u{i}", "INV_X1") for i in range(5)]
        for c in cells:
            d.connect(c.pin("A"), n)
        assert [t.cell.name for t in n.terminals] == [c.name for c in cells]

    @pytest.mark.parametrize("victim", [0, 2, 4])
    def test_unlink_keeps_order(self, lib, victim):
        d = make_design(lib)
        n = d.add_net("n")
        cells = [d.add_cell(f"u{i}", "INV_X1") for i in range(5)]
        for c in cells:
            d.connect(c.pin("A"), n)
        d.disconnect(cells[victim].pin("A"))
        expect = [c.name for i, c in enumerate(cells) if i != victim]
        assert [t.cell.name for t in n.terminals] == expect

    def test_link_unlink_storm_matches_list_model(self, lib):
        d = make_design(lib)
        n = d.add_net("n")
        cells = [d.add_cell(f"u{i}", "INV_X1") for i in range(12)]
        model: list[str] = []
        rng = random.Random(23)
        for _ in range(400):
            c = rng.choice(cells)
            if c.pin("A").net is None:
                d.connect(c.pin("A"), n)
                model.append(c.name)
            else:
                d.disconnect(c.pin("A"))
                model.remove(c.name)
            assert [t.cell.name for t in n.terminals] == model
            # Doubly-linked integrity: walking the list forward agrees
            # with the stored count and every node's prev pointer.
            store, prev = d.store, NO_ID
            count = 0
            tid = int(store.net_head[n._nid])
            while tid != NO_ID:
                assert store._get_prev(tid) == prev
                prev, tid = tid, store._get_next(tid)
                count += 1
            assert count == int(store.net_count[n._nid]) == len(model)
            assert int(store.net_tail[n._nid]) == prev

    def test_free_net_clears_terminals(self, lib):
        d = make_design(lib)
        n = d.add_net("n")
        c = d.add_cell("u1", "INV_X1")
        d.connect(c.pin("A"), n)
        d.remove_net(n)
        assert c.pin("A").net is None


class TestViews:
    def test_views_are_canonical(self, lib):
        d = make_design(lib)
        c = d.add_cell("u1", "INV_X1")
        assert d.cells["u1"] is c
        assert c.pin("A") is c.pin("A")
        n = d.add_net("n")
        assert d.nets["n"] is n

    def test_removed_cell_view_detaches(self, lib):
        d = make_design(lib)
        c = d.add_cell("u1", "INV_X1", Point(3, 4))
        n = d.add_net("n")
        d.connect(c.pin("A"), n)
        pin = c.pin("A")
        d.remove_cell(c)
        # The stale handles stay readable but report disconnection.
        assert c.name == "u1"
        assert c.libcell.name == "INV_X1"
        assert c.origin == Point(3, 4)
        assert pin.net is None

    def test_detached_view_does_not_alias_slot_reuse(self, lib):
        d = make_design(lib)
        c = d.add_cell("u1", "INV_X1", Point(3, 4))
        d.remove_cell(c)
        fresh = d.add_cell("u2", "INV_X1", Point(9, 9))  # reuses the slot
        assert c.name == "u1" and c.origin == Point(3, 4)
        assert fresh.name == "u2" and fresh.origin == Point(9, 9)


class TestGeometry:
    def test_net_bbox_and_exclude(self, lib):
        d = make_design(lib)
        n = d.add_net("n")
        a = d.add_cell("a", "INV_X1", Point(0, 0))
        b = d.add_cell("b", "INV_X1", Point(10, 20))
        d.connect(a.pin("A"), n)
        d.connect(b.pin("A"), n)
        full = n.bbox()
        assert full is not None
        without_b = n.bbox(exclude=b.pin("A"))
        pin_a = a.pin("A").location
        assert without_b.xlo == pytest.approx(pin_a.x)
        assert without_b.yhi == pytest.approx(pin_a.y)

    def test_clone_preserves_connectivity_and_positions(self, lib):
        from repro.check.oracles import bit_connectivity_signature

        d = make_design(lib)
        clk = d.add_net("clk", is_clock=True)
        data = d.add_net("d0")
        q = d.add_net("q0")
        ff = d.add_cell("ff", "DFF_R_X1", Point(5, 5))
        d.connect(ff.pin("CK"), clk)
        d.connect(ff.pin("D"), data)
        d.connect(ff.pin("Q"), q)
        twin = d.clone()
        assert bit_connectivity_signature(twin) == bit_connectivity_signature(d)
        assert twin.cells["ff"].origin == Point(5, 5)
        assert twin.cells["ff"] is not d.cells["ff"]
