"""Tests for compose_mbr — the structural edit behind MBR composition."""

import pytest

from repro.geometry import Point
from repro.library.functional import DFF_R, DFF_R_S
from repro.library.functional import ScanStyle
from repro.netlist import ComposeError, RegisterView, compose_mbr
from repro.netlist.validate import validate_design

from tests.conftest import make_flop_row


def _errors(design):
    return [i for i in validate_design(design) if i.is_error]


class TestComposeBasic:
    def test_merge_two_flops_into_2bit(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 2)[0]
        group = [flop_row.cell("ff0"), flop_row.cell("ff1")]
        d0_net, q0_net = flop_row.net("n_d0"), flop_row.net("n_q0")
        d1_net, q1_net = flop_row.net("n_d1"), flop_row.net("n_q1")

        record = compose_mbr(flop_row, group, target, Point(11.0, 50.0), name="mbr0")
        mbr = record.new_cell

        assert set(record.cells_removed) == {"ff0", "ff1"}
        assert record.cells_added == ("mbr0",)

        assert "ff0" not in flop_row.cells and "ff1" not in flop_row.cells
        assert mbr.pin("D0").net is d0_net
        assert mbr.pin("Q0").net is q0_net
        assert mbr.pin("D1").net is d1_net
        assert mbr.pin("Q1").net is q1_net
        assert mbr.pin("CK").net is flop_row.net("clk")
        assert mbr.pin("RN").net is flop_row.net("rst")
        assert not _errors(flop_row)

    def test_register_count_drops_bits_conserved(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 4)[0]
        group = [flop_row.cell(f"ff{i}") for i in range(4)]
        bits_before = flop_row.total_register_bits()
        compose_mbr(flop_row, group, target, Point(11.0, 50.0))
        assert flop_row.total_register_count() == 1
        assert flop_row.total_register_bits() == bits_before

    def test_incomplete_mbr_leaves_spare_bits(self, lib, flop_row):
        # 3 flops into a 4-bit cell: D3/Q3 stay unconnected, and validation
        # treats the spare D as acceptable (Section 3: incomplete MBRs).
        target = lib.register_cells(DFF_R, 4)[0]
        group = [flop_row.cell(f"ff{i}") for i in range(3)]
        mbr = compose_mbr(flop_row, group, target, Point(11.0, 50.0)).new_cell
        assert mbr.pin("D3").net is None and mbr.pin("Q3").net is None
        assert not _errors(flop_row)
        view = RegisterView(mbr)
        assert view.connected_bit_count == 3

    def test_mbr_of_mbrs(self, lib, flop_row):
        # Compose 2+2 into two 2-bit MBRs, then those into one 4-bit MBR —
        # the incremental re-composition the paper applies to MBR-rich designs.
        t2 = lib.register_cells(DFF_R, 2)[0]
        t4 = lib.register_cells(DFF_R, 4)[0]
        m1 = compose_mbr(flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], t2, Point(11, 50)).new_cell
        m2 = compose_mbr(flop_row, [flop_row.cell("ff2"), flop_row.cell("ff3")], t2, Point(19, 50)).new_cell
        m4 = compose_mbr(flop_row, [m1, m2], t4, Point(14, 50)).new_cell
        assert flop_row.total_register_count() == 1
        assert m4.pin("D2").net is flop_row.net("n_d2")
        assert m4.pin("Q3").net is flop_row.net("n_q3")
        assert not _errors(flop_row)

    def test_new_cell_name_unique_by_default(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 2)[0]
        mbr = compose_mbr(
            flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
        ).new_cell
        assert mbr.name in flop_row.cells


class TestComposeErrors:
    def test_wrong_functional_class_rejected(self, lib, flop_row):
        target = lib.register_cells(DFF_R_S, 2)[0]
        with pytest.raises(ComposeError, match="class"):
            compose_mbr(
                flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
            )

    def test_overflow_rejected(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 2)[0]
        with pytest.raises(ComposeError, match="fit"):
            compose_mbr(
                flop_row,
                [flop_row.cell("ff0"), flop_row.cell("ff1"), flop_row.cell("ff2")],
                target,
                Point(11, 50),
            )

    def test_dont_touch_rejected(self, lib, flop_row):
        flop_row.cell("ff0").dont_touch = True
        target = lib.register_cells(DFF_R, 2)[0]
        with pytest.raises(ComposeError, match="dont_touch"):
            compose_mbr(
                flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
            )

    def test_different_control_nets_rejected(self, lib, flop_row):
        # Rewire ff1's reset to a different net: no longer functionally
        # compatible, compose must refuse.
        other_rst = flop_row.add_net("rst2")
        from repro.library.cells import PinDirection

        p = flop_row.add_port("rst2", PinDirection.INPUT, Point(0, 0))
        flop_row.connect(p, other_rst)
        flop_row.connect(flop_row.cell("ff1").pin("RN"), other_rst)
        target = lib.register_cells(DFF_R, 2)[0]
        with pytest.raises(ComposeError, match="RN"):
            compose_mbr(
                flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
            )

    def test_empty_group_rejected(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 2)[0]
        with pytest.raises(ComposeError):
            compose_mbr(flop_row, [], target, Point(11, 50))


class TestComposeScan:
    def test_internal_scan_chain_preserved_for_consecutive_flops(self, lib, scan_row):
        # Chain is si -> ff0 -> ff1 -> ff2 -> ff3 -> so; merging ff1+ff2
        # (consecutive) keeps the chain intact through the new SI/SO.
        target = next(
            c
            for c in lib.register_cells(DFF_R_S, 2)
            if c.scan_style is ScanStyle.INTERNAL
        )
        stitch_in = scan_row.net("n_scan1")  # ff0.SO -> ff1.SI
        stitch_out = scan_row.net("n_scan3")  # ff2.SO -> ff3.SI
        record = compose_mbr(
            scan_row, [scan_row.cell("ff1"), scan_row.cell("ff2")], target, Point(13, 50)
        )
        mbr = record.new_cell
        # The stitch net absorbed inside the MBR shows up as removed.
        assert "n_scan2" in record.removed_nets
        assert mbr.pin("SI").net is stitch_in
        assert mbr.pin("SO").net is stitch_out
        assert mbr.pin("SE").net is scan_row.net("se")
        # The old ff1->ff2 stitch net died with the merge.
        assert "n_scan2" not in scan_row.nets
        assert not _errors(scan_row)

    def test_multi_scan_target_carries_per_bit_chains(self, lib, scan_row):
        target = next(
            c for c in lib.register_cells(DFF_R_S, 2) if c.scan_style is ScanStyle.MULTI
        )
        n1 = scan_row.net("n_scan1")
        n2 = scan_row.net("n_scan2")
        n3 = scan_row.net("n_scan3")
        mbr = compose_mbr(
            scan_row, [scan_row.cell("ff1"), scan_row.cell("ff2")], target, Point(13, 50)
        ).new_cell
        # Bit 0 (old ff1): SI from n_scan1, SO to n_scan2; bit 1 (old ff2):
        # SI from n_scan2, SO to n_scan3 — both chains cross the MBR.
        assert mbr.pin("SI0").net is n1
        assert mbr.pin("SO0").net is n2
        assert mbr.pin("SI1").net is n2
        assert mbr.pin("SO1").net is n3
        assert not _errors(scan_row)

    def test_dead_net_sweep_removes_orphans(self, lib, scan_row):
        target = next(
            c
            for c in lib.register_cells(DFF_R_S, 4)
            if c.scan_style is ScanStyle.INTERNAL
        )
        compose_mbr(
            scan_row,
            [scan_row.cell(f"ff{i}") for i in range(4)],
            target,
            Point(13, 50),
        )
        # All three internal stitch nets die.
        for name in ("n_scan1", "n_scan2", "n_scan3"):
            assert name not in scan_row.nets
        assert not _errors(scan_row)


class TestComposeGeometryIndependence:
    def test_compose_in_fresh_design(self, lib):
        d = make_flop_row(lib, n_flops=8, name="fresh")
        target = lib.register_cells(DFF_R, 8)[0]
        compose_mbr(d, [d.cell(f"ff{i}") for i in range(8)], target, Point(20, 50))
        assert d.total_register_count() == 1
        assert d.width_histogram() == {8: 1}
