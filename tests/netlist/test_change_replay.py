"""Change-record replay: a merged edit history patches a TimingGraph to
the exact state a from-scratch build produces.

``Design.track`` scopes nest — every active tracker sees every event — so
an outer scope around a decompose → compose → legalize sequence captures
one merged :class:`~repro.netlist.change.ChangeRecord` equivalent to the
concatenation of the inner scopes' records.  Replaying either onto a
timing graph snapshotted *before* the edits must reproduce, arc for arc
and seed for seed, the graph built fresh from the edited netlist — the
invariant ``Timer.apply_change`` and :class:`~repro.flow.session.EcoSession`
lean on.
"""

from __future__ import annotations

from repro.bench import generate_design, preset
from repro.core.composer import compose_design
from repro.core.decompose import decompose_registers
from repro.netlist.change import ChangeRecord
from repro.placement.legalize import PlacementRows, legalize
from repro.sta.graph import TimingGraph


def _key(terminal):
    """A stable identity for a graph node: (owning cell, pin/port name)."""
    cell = getattr(terminal, "cell", None)
    return (cell.name if cell is not None else "", terminal.name)


def _arcs(graph: TimingGraph):
    return sorted(
        (_key(arc.src), _key(arc.dst), arc.delay)
        for arcs in graph.fanout.values()
        for arc in arcs
    )


def _seeds(graph: TimingGraph):
    return {
        "launch": {(c.name, p.name) for c, p in graph.launch_by_id.values()},
        "capture": {(c.name, p.name) for c, p in graph.capture_by_id.values()},
        "launch_delay": sorted(
            (_key(graph._nodes[nid]), d) for nid, d in graph.launch_delay.items()
        ),
        "inputs": {p.name for p in graph.input_ports},
        "outputs": {p.name for p in graph.output_ports},
    }


def test_nested_scopes_replay_to_identical_timing_graph(lib):
    bundle = generate_design(preset("D1", scale=0.15), lib)
    design, timer, scan = bundle.design, bundle.timer, bundle.scan_model

    # Two pre-edit snapshots: one replays the outer scope's record, the
    # other the merge of the inner scopes' records.
    snap_outer = TimingGraph(design)
    snap_merged = TimingGraph(design)

    inner: list[ChangeRecord] = []
    with design.track() as outer:
        # 1. Decompose the pre-existing 4-bit MBRs (bits land unlegalized
        #    on their source MBR, exactly as the flow driver stages it).
        with design.track() as t_decompose:
            decomposition = decompose_registers(design, scan, widths=(4,))
            scan.restitch(design)
        inner.append(t_decompose.record())
        timer.apply_change(inner[-1])

        # 2. Recompose — the composer tracks and applies its own scoped
        #    changes to the timer; the outer tracker still sees them all.
        with design.track() as t_compose:
            compose_design(design, timer, scan)
        inner.append(t_compose.record())

        # 3. Legalize the decomposed bits that survived as singles.
        leftover = [
            design.cells[n]
            for names in decomposition.decomposed.values()
            for n in names
            if n in design.cells
        ]
        tech = design.library.technology
        rows = PlacementRows(design.die, tech.row_height, tech.site_width)
        with design.track() as t_legalize:
            legalize(design, rows, movable=leftover)
        inner.append(t_legalize.record())

    assert decomposition.decomposed, "D1 must offer 4-bit MBRs to split"
    merged_outer = outer.record()
    merged_inner = ChangeRecord.merge(inner)
    assert not merged_outer.is_empty

    snap_outer.apply_change(merged_outer)
    snap_merged.apply_change(merged_inner)
    fresh = TimingGraph(design)

    assert _arcs(snap_outer) == _arcs(fresh)
    assert _arcs(snap_merged) == _arcs(fresh)
    assert _seeds(snap_outer) == _seeds(fresh)
    assert _seeds(snap_merged) == _seeds(fresh)


def test_outer_scope_equals_merge_of_inner_scopes(lib):
    """The outer tracker's record and the inner merge agree on content."""
    bundle = generate_design(preset("D1", scale=0.1), lib)
    design, scan = bundle.design, bundle.scan_model

    inner: list[ChangeRecord] = []
    with design.track() as outer:
        with design.track() as t1:
            decomposition = decompose_registers(design, scan, widths=(4,))
        inner.append(t1.record())
        with design.track() as t2:
            scan.restitch(design)
        inner.append(t2.record())

    assert decomposition.decomposed
    a, b = outer.record(), ChangeRecord.merge(inner)
    assert set(a.cells_added) == set(b.cells_added)
    assert set(a.removed) == set(b.removed)
    assert set(a.moved) == set(b.moved)
    assert set(a.touched) == set(b.touched)
    assert set(a.rewired_nets) == set(b.rewired_nets)
