"""Round-trip tests for liberty / verilog / DEF subsets."""

import pytest

from repro.bench import generate_design, preset
from repro.io import (
    read_def,
    read_liberty,
    read_verilog,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import default_library
from repro.library.cells import RegisterCell
from repro.netlist.validate import validate_design
from repro.placement import design_hpwl
from repro.sta import Timer


@pytest.fixture(scope="module")
def bundle(lib):
    return generate_design(preset("D2", scale=0.08), lib)


class TestLibertyRoundtrip:
    def test_all_cells_roundtrip(self, lib, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(lib, path)
        back = read_liberty(path)
        assert len(back) == len(lib)
        for cell in lib.cells():
            twin = back.cell(cell.name)
            assert type(twin) is type(cell)
            assert twin.area == pytest.approx(cell.area)
            assert twin.drive_resistance == pytest.approx(cell.drive_resistance)
            assert len(twin.pins) == len(cell.pins)

    def test_register_attributes_roundtrip(self, lib, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(lib, path)
        back = read_liberty(path)
        for cell in lib.cells():
            if not isinstance(cell, RegisterCell):
                continue
            twin = back.cell(cell.name)
            assert twin.width_bits == cell.width_bits
            assert twin.func_class == cell.func_class
            assert twin.scan_style == cell.scan_style
            assert twin.clock_pin_cap == pytest.approx(cell.clock_pin_cap)

    def test_technology_roundtrip(self, lib, tmp_path):
        path = tmp_path / "lib.lib"
        write_liberty(lib, path)
        back = read_liberty(path)
        assert back.technology.wire_cap_per_um == pytest.approx(
            lib.technology.wire_cap_per_um
        )
        assert back.technology.row_height == pytest.approx(lib.technology.row_height)

    def test_register_queries_survive(self, lib, tmp_path):
        from repro.library.functional import DFF_R

        path = tmp_path / "lib.lib"
        write_liberty(lib, path)
        back = read_liberty(path)
        assert back.widths_for(DFF_R) == lib.widths_for(DFF_R)


class TestNetlistRoundtrip:
    def test_verilog_def_roundtrip(self, lib, bundle, tmp_path):
        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)

        back = read_verilog(vpath, lib)
        read_def(dpath, back)

        assert set(back.cells) == set(design.cells)
        assert set(back.nets) == set(design.nets)
        assert set(back.ports) == set(design.ports)
        for name, cell in design.cells.items():
            twin = back.cell(name)
            assert twin.libcell.name == cell.libcell.name
            # DEF quantizes to 1/1000 um.
            assert twin.origin.x == pytest.approx(cell.origin.x, abs=1e-3)
            assert twin.origin.y == pytest.approx(cell.origin.y, abs=1e-3)
            assert twin.fixed == cell.fixed
        assert not [i for i in validate_design(back) if i.is_error]

    def test_connectivity_preserved(self, lib, bundle, tmp_path):
        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)
        back = read_def(dpath, read_verilog(vpath, lib))
        for name, net in design.nets.items():
            twin = back.net(name)
            assert twin.num_pins == net.num_pins
            assert twin.is_clock == net.is_clock

    def test_hpwl_identical_after_roundtrip(self, lib, bundle, tmp_path):
        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)
        back = read_def(dpath, read_verilog(vpath, lib))
        assert design_hpwl(back) == pytest.approx(design_hpwl(design), rel=1e-4)

    def test_timing_identical_after_roundtrip(self, lib, bundle, tmp_path):
        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)
        back = read_def(dpath, read_verilog(vpath, lib))
        s1 = Timer(design, clock_period=bundle.clock_period).summary()
        s2 = Timer(back, clock_period=bundle.clock_period).summary()
        assert s2.total_endpoints == s1.total_endpoints
        assert s2.tns == pytest.approx(s1.tns, abs=1e-2)
        assert s2.wns == pytest.approx(s1.wns, abs=1e-3)

    def test_def_libcell_mismatch_rejected(self, lib, bundle, tmp_path):
        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)
        text = dpath.read_text()
        # Corrupt one component's libcell reference.
        victim = sorted(design.cells.values(), key=lambda c: c.name)[0]
        text = text.replace(
            f"- {victim.name} {victim.libcell.name} ", f"- {victim.name} INV_X1 ", 1
        )
        dpath.write_text(text)
        back = read_verilog(vpath, lib)
        with pytest.raises(ValueError, match="in DEF but"):
            read_def(dpath, back)

    def test_composition_works_on_roundtripped_design(self, lib, bundle, tmp_path):
        """A design loaded from files composes exactly like the original —
        the file formats carry everything the flow needs."""
        from repro.core.composer import compose_design

        design = bundle.design
        vpath, dpath = tmp_path / "d.v", tmp_path / "d.def"
        write_verilog(design, vpath)
        write_def(design, dpath)
        back = read_def(dpath, read_verilog(vpath, lib))
        timer = Timer(back, clock_period=bundle.clock_period)
        # Scan chains are physical connectivity: re-extract them from the
        # loaded netlist rather than carrying a side file.
        from repro.scan import ScanModel

        scan_model = ScanModel.from_design(back)
        res = compose_design(back, timer, scan_model)
        assert res.registers_after <= res.registers_before
        assert not [i for i in validate_design(back) if i.is_error]
