"""Streaming parser coverage: round-trips at scale and malformed inputs.

``tests/io/test_roundtrip.py`` checks small hand-built designs survive a
write/read cycle.  Here the writers and single-pass readers face (a) a
generated design large enough to exercise the store's growth/interning
paths with the connectivity oracle as the equality judge, and (b) the
error paths: every parser must reject corrupt input with a message that
names the file, line, and offending construct.
"""

import pytest

from repro.bench import generate_design, preset
from repro.check.invariants import check_design
from repro.check.oracles import bit_connectivity_signature
from repro.io import (
    read_def,
    read_liberty,
    read_verilog,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import default_library
from repro.netlist import Design
from repro.placement import design_hpwl


@pytest.fixture(scope="module")
def bundle():
    # ``huge`` scaled down: same all-banked topology as the million-register
    # preset (clusters, scan chains, datapaths), small enough for CI.
    return generate_design(preset("huge", scale=0.002), default_library())


class TestScaleRoundTrip:
    def test_verilog_def_round_trip_preserves_connectivity(self, bundle, tmp_path):
        design = bundle.design
        v, d = tmp_path / "a.v", tmp_path / "a.def"
        write_verilog(design, v)
        write_def(design, d)
        parsed = read_verilog(v, design.library)
        read_def(d, parsed)

        assert len(parsed.cells) == len(design.cells)
        assert len(parsed.nets) == len(design.nets)
        assert len(parsed.ports) == len(design.ports)
        assert check_design(parsed) == []
        assert bit_connectivity_signature(parsed) == bit_connectivity_signature(design)
        assert design_hpwl(parsed) == pytest.approx(design_hpwl(design), rel=1e-9)

    def test_liberty_round_trip_carries_every_cell(self, bundle, tmp_path):
        library = bundle.design.library
        path = tmp_path / "lib.lib"
        write_liberty(library, path)
        again = read_liberty(path)
        assert sorted(c.name for c in again.cells()) == sorted(
            c.name for c in library.cells()
        )
        assert again.technology.row_height == library.technology.row_height

    def test_second_generation_is_reproducible(self, bundle):
        twin = generate_design(preset("huge", scale=0.002), default_library())
        assert bit_connectivity_signature(twin.design) == bit_connectivity_signature(
            bundle.design
        )


def _write(tmp_path, name, text):
    p = tmp_path / name
    p.write_text(text)
    return p


GOOD_HEADER = """\
module top (clk);
  input clk;
  wire n1;
"""


class TestVerilogErrors:
    def test_unknown_library_cell(self, tmp_path):
        p = _write(tmp_path, "a.v", GOOD_HEADER + "  NOPE_X9 u1 ( .A(n1) );\nendmodule\n")
        with pytest.raises(ValueError, match=r"a\.v:4: unknown library cell 'NOPE_X9'"):
            read_verilog(p, default_library())

    def test_unknown_pin(self, tmp_path):
        p = _write(tmp_path, "a.v", GOOD_HEADER + "  INV_X1 u1 ( .ZZ(n1) );\nendmodule\n")
        with pytest.raises(ValueError, match=r"has no pin 'ZZ'"):
            read_verilog(p, default_library())

    def test_undeclared_net(self, tmp_path):
        p = _write(tmp_path, "a.v", GOOD_HEADER + "  INV_X1 u1 ( .A(ghost) );\nendmodule\n")
        with pytest.raises(ValueError, match=r"references undeclared net 'ghost'"):
            read_verilog(p, default_library())

    def test_double_connection(self, tmp_path):
        p = _write(
            tmp_path,
            "a.v",
            GOOD_HEADER + "  INV_X1 u1 ( .A(n1), .A(clk) );\nendmodule\n",
        )
        with pytest.raises(ValueError, match=r"pin 'A' of instance 'u1' is connected twice"):
            read_verilog(p, default_library())

    def test_declaration_after_instance(self, tmp_path):
        p = _write(
            tmp_path,
            "a.v",
            GOOD_HEADER + "  INV_X1 u1 ( .A(n1) );\n  wire late;\nendmodule\n",
        )
        with pytest.raises(ValueError, match=r"declaration after first instance"):
            read_verilog(p, default_library())

    def test_no_module(self, tmp_path):
        p = _write(tmp_path, "a.v", "// just a comment\n")
        with pytest.raises(ValueError, match=r"no module found"):
            read_verilog(p, default_library())


@pytest.fixture
def placed_design(lib):
    from repro.geometry import Point, Rect
    from repro.library.cells import PinDirection

    d = Design("top", lib, Rect(0, 0, 10, 10))
    d.add_cell("u1", "INV_X1", Point(1, 1))
    port = d.add_port("clk", PinDirection.INPUT, Point(0, 5))
    d.connect(port, d.add_net("clk", is_clock=True))
    return d


class TestDefErrors:
    def test_unknown_component(self, placed_design, tmp_path):
        p = _write(
            tmp_path,
            "a.def",
            "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\nCOMPONENTS 1 ;\n"
            "  - ghost INV_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n",
        )
        with pytest.raises(ValueError, match=r"component 'ghost' is not in the netlist"):
            read_def(p, placed_design)

    def test_libcell_mismatch(self, placed_design, tmp_path):
        p = _write(
            tmp_path,
            "a.def",
            "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\nCOMPONENTS 1 ;\n"
            "  - u1 NAND2_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\n",
        )
        with pytest.raises(ValueError, match=r"u1 is NAND2_X1 in DEF but INV_X1"):
            read_def(p, placed_design)

    def test_unknown_pin(self, placed_design, tmp_path):
        p = _write(
            tmp_path,
            "a.def",
            "DIEAREA ( 0 0 ) ( 10000 10000 ) ;\nPINS 1 ;\n"
            "  - ghost + NET ghost + DIRECTION INPUT + PLACED ( 0 0 ) N ;\nEND PINS\n",
        )
        with pytest.raises(ValueError, match=r"pin 'ghost' is not a port of the netlist"):
            read_def(p, placed_design)

    def test_missing_diearea(self, placed_design, tmp_path):
        p = _write(tmp_path, "a.def", "VERSION 5.8 ;\nEND DESIGN\n")
        with pytest.raises(ValueError, match=r"missing DIEAREA"):
            read_def(p, placed_design)


class TestLibertyErrors:
    def test_cell_outside_library(self, tmp_path):
        p = _write(tmp_path, "a.lib", "cell (INV_X1) {\n}\n")
        with pytest.raises(ValueError, match=r"cell outside library"):
            read_liberty(p)

    def test_pin_outside_cell(self, tmp_path):
        p = _write(
            tmp_path,
            "a.lib",
            'library (l) {\n  pin (A) { direction : input; capacitance : 1; '
            "offset : (0,0); }\n}\n",
        )
        with pytest.raises(ValueError, match=r"pin outside cell"):
            read_liberty(p)

    def test_missing_cell_attribute(self, tmp_path):
        p = _write(
            tmp_path,
            "a.lib",
            "library (l) {\n  cell (X) {\n    area : 1.0;\n  }\n}\n",
        )
        with pytest.raises(ValueError, match=r"cell 'X' is missing required attribute"):
            read_liberty(p)

    def test_malformed_pin(self, tmp_path):
        p = _write(
            tmp_path,
            "a.lib",
            "library (l) {\n  cell (X) {\n    area : 1.0; class : combinational;\n"
            "    pin (A) { direction : input; }\n  }\n}\n",
        )
        with pytest.raises(ValueError, match=r"pin 'A' is missing direction/capacitance/offset"):
            read_liberty(p)

    def test_not_a_liberty_file(self, tmp_path):
        p = _write(tmp_path, "a.lib", "// nothing here\n")
        with pytest.raises(ValueError, match=r"not a liberty-subset file"):
            read_liberty(p)
