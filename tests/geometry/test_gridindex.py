"""The shared spatial index: grid-bin pair candidates and row gap search."""

import random

import pytest

from repro.geometry.gridindex import GridBinIndex, RowIntervals


def _overlap(a, b):
    return a[0] <= b[2] and b[0] <= a[2] and a[1] <= b[3] and b[1] <= a[3]


class TestGridBinIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridBinIndex(0.0)

    def test_pairs_cover_all_true_overlaps(self):
        rng = random.Random(7)
        rects = []
        for _ in range(120):
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            rects.append((x, y, x + rng.uniform(0, 8), y + rng.uniform(0, 8)))
        index = GridBinIndex(5.0)
        for r in rects:
            index.add(*r)
        pairs = set(index.candidate_pairs())
        truth = {
            (i, j)
            for i in range(len(rects))
            for j in range(i + 1, len(rects))
            if _overlap(rects[i], rects[j])
        }
        # The grid is a filter: it may propose bin-sharing non-overlaps,
        # but it must never miss a genuinely overlapping pair.
        assert truth <= pairs

    def test_pairs_are_emitted_exactly_once(self):
        index = GridBinIndex(1.0)
        # Two wide rectangles sharing many bins must still pair up once.
        index.add(0.0, 0.0, 10.0, 0.5)
        index.add(0.0, 0.2, 10.0, 0.7)
        assert list(index.candidate_pairs()) == [(0, 1)]

    def test_pair_order_is_insertion_deterministic(self):
        def build():
            index = GridBinIndex(2.0)
            for k in range(40):
                x = (k * 7) % 13
                index.add(x, k % 5, x + 3.0, k % 5 + 2.5)
            return list(index.candidate_pairs())

        assert build() == build()

    def test_query_superset_and_unique(self):
        index = GridBinIndex(4.0)
        rects = [(0, 0, 2, 2), (5, 5, 7, 7), (1, 1, 6, 6), (30, 30, 31, 31)]
        for r in rects:
            index.add(*r)
        hits = list(index.query(0.5, 0.5, 5.5, 5.5))
        assert len(hits) == len(set(hits))
        truth = {i for i, r in enumerate(rects) if _overlap(r, (0.5, 0.5, 5.5, 5.5))}
        assert truth <= set(hits)
        assert 3 not in set(hits)

    def test_negative_coordinates(self):
        index = GridBinIndex(3.0)
        index.add(-10.0, -10.0, -8.0, -8.0)
        index.add(-9.0, -9.0, -7.0, -7.0)
        assert list(index.candidate_pairs()) == [(0, 1)]


class _NaiveRow:
    """Reference: gaps by linear scan, first-best wins (the old legalizer)."""

    def __init__(self):
        self.spans = []

    def occupy(self, lo, hi):
        self.spans.append((lo, hi))
        self.spans.sort()

    def nearest_gap(self, desired, width, limit):
        best, best_cost = None, None
        prev_end = 0
        gaps = []
        for s, e in self.spans:
            gaps.append((prev_end, s))
            prev_end = max(prev_end, e)
        gaps.append((prev_end, limit))
        for lo, hi in gaps:
            if hi - lo < width:
                continue
            x = min(max(desired, lo), hi - width)
            cost = abs(x - desired)
            if best_cost is None or cost < best_cost:
                best, best_cost = x, cost
        return best


class TestRowIntervals:
    def test_occupy_merges_overlaps(self):
        row = RowIntervals()
        row.occupy(10, 20)
        row.occupy(30, 40)
        row.occupy(15, 35)  # bridges both
        assert list(row.intervals()) == [(10, 40)]

    def test_occupy_merges_touching(self):
        row = RowIntervals()
        row.occupy(0, 5)
        row.occupy(5, 8)
        assert list(row.intervals()) == [(0, 8)]

    def test_fits(self):
        row = RowIntervals()
        row.occupy(10, 20)
        assert row.fits(0, 10)
        assert row.fits(20, 25)
        assert not row.fits(5, 11)
        assert not row.fits(19, 22)
        assert not row.fits(12, 15)

    def test_fits_is_exact_with_overlapping_inserts(self):
        # Overlapping occupies used to leave the interval list inconsistent;
        # merged storage keeps ``fits`` exact.
        row = RowIntervals()
        row.occupy(0, 10)
        row.occupy(2, 4)
        assert not row.fits(5, 7)

    def test_nearest_gap_basic(self):
        row = RowIntervals()
        row.occupy(10, 20)
        # Desired inside the occupied interval: nearer edge wins; the tie
        # (dist 2 left at start 8 vs dist 8 right) is not a tie at all.
        assert row.nearest_gap(12, 2, 100) == 8
        assert row.nearest_gap(19, 2, 100) == 20
        assert row.nearest_gap(0, 5, 100) == 0

    def test_nearest_gap_tie_prefers_left(self):
        row = RowIntervals()
        row.occupy(4, 8)
        # width 2, desired 5: left gap places at 2 (cost 3), right gap at 8
        # (cost 3) — a genuine tie, and the leftmost placement must win,
        # matching the old first-encountered-wins linear scan.
        assert row.nearest_gap(5, 2, 20) == 2

    def test_nearest_gap_none_when_full(self):
        row = RowIntervals()
        row.occupy(0, 50)
        assert row.nearest_gap(10, 1, 50) is None
        assert row.nearest_gap(10, 60, 50) is None

    def test_matches_linear_reference_randomized(self):
        rng = random.Random(13)
        for _ in range(200):
            limit = rng.randrange(20, 120)
            row, ref = RowIntervals(), _NaiveRow()
            for _ in range(rng.randrange(0, 12)):
                lo = rng.randrange(0, limit - 1)
                hi = lo + rng.randrange(1, 12)
                row.occupy(lo, min(hi, limit))
                ref.occupy(lo, min(hi, limit))
            for _ in range(8):
                desired = rng.randrange(-5, limit + 5)
                width = rng.randrange(1, 10)
                assert row.nearest_gap(desired, width, limit) == ref.nearest_gap(
                    desired, width, limit
                ), (list(row.intervals()), desired, width, limit)
