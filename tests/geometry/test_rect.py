"""Unit tests for the rectangle algebra used by feasible regions."""

import pytest

from repro.geometry import Point, Rect
from repro.geometry.rect import bounding_box, intersect_all


class TestConstruction:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 2.0)

    def test_from_center(self):
        r = Rect.from_center(Point(5.0, 5.0), 4.0, 2.0)
        assert (r.xlo, r.ylo, r.xhi, r.yhi) == (3.0, 4.0, 7.0, 6.0)

    def test_from_points(self):
        r = Rect.from_points([Point(1, 5), Point(3, 2), Point(0, 4)])
        assert (r.xlo, r.ylo, r.xhi, r.yhi) == (0, 2, 3, 5)

    def test_degenerate_point_rect(self):
        r = Rect.point(Point(2.0, 3.0))
        assert r.area == 0.0
        assert r.contains_point(Point(2.0, 3.0))
        assert not r.contains_point(Point(2.0, 3.1))


class TestProperties:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4 and r.height == 3
        assert r.area == 12
        assert r.half_perimeter == 7
        assert r.center == Point(2.0, 1.5)

    def test_corners(self):
        r = Rect(0, 0, 1, 1)
        assert len(r.corners()) == 4
        assert Point(0, 0) in r.corners()
        assert Point(1, 1) in r.corners()


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.001, 1))

    def test_contains_point_tolerance(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(2.05, 1), tol=0.1)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_overlaps_touching_edges(self):
        # Closed rectangles that share an edge overlap.
        assert Rect(0, 0, 1, 1).overlaps(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).overlaps(Rect(1.01, 0, 2, 1))


class TestCombinators:
    def test_intersect(self):
        r = Rect(0, 0, 4, 4).intersect(Rect(2, 2, 6, 6))
        assert r == Rect(2, 2, 4, 4)

    def test_intersect_disjoint(self):
        assert Rect(0, 0, 1, 1).intersect(Rect(2, 2, 3, 3)) is None

    def test_intersect_degenerate_edge(self):
        r = Rect(0, 0, 1, 1).intersect(Rect(1, 0, 2, 1))
        assert r is not None and r.width == 0.0

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(3, 3, 4, 4)) == Rect(0, 0, 4, 4)

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1.0) == Rect(0, 0, 3, 3)

    def test_expanded_negative_clamps(self):
        r = Rect(0, 0, 1, 1).expanded(-2.0)
        assert r.width == 0.0 and r.height == 0.0

    def test_clamp_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.clamp_point(Point(5, 1)) == Point(2, 1)
        assert r.clamp_point(Point(1, 1)) == Point(1, 1)

    def test_manhattan_to_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.manhattan_to_point(Point(3, 3)) == 2.0
        assert r.manhattan_to_point(Point(1, 1)) == 0.0

    def test_bounding_box_list(self):
        bb = bounding_box([Rect(0, 0, 1, 1), Rect(5, -1, 6, 2)])
        assert bb == Rect(0, -1, 6, 2)

    def test_intersect_all(self):
        assert intersect_all([Rect(0, 0, 4, 4), Rect(1, 1, 5, 5), Rect(2, 0, 3, 6)]) == Rect(2, 1, 3, 4)
        assert intersect_all([Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)]) is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
        with pytest.raises(ValueError):
            intersect_all([])
