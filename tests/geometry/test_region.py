"""Tests for timing-feasible placement regions (paper Section 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import FeasibleRegion, Point, Rect
from repro.geometry.region import SlackToDistance, common_region


class TestFeasibleRegion:
    def test_overlapping_regions_compatible(self):
        a = FeasibleRegion(Rect(0, 0, 10, 10))
        b = FeasibleRegion(Rect(5, 5, 15, 15))
        assert a.overlaps(b)
        common = a.intersect(b)
        assert common is not None and common.rect == Rect(5, 5, 10, 10)

    def test_disjoint_regions_incompatible(self):
        a = FeasibleRegion(Rect(0, 0, 1, 1))
        b = FeasibleRegion(Rect(5, 5, 6, 6))
        assert not a.overlaps(b)
        assert a.intersect(b) is None

    def test_two_pinned_regions_never_compatible(self):
        # Two negative-slack registers cannot merge even with touching
        # footprints: neither may move.
        a = FeasibleRegion(Rect(0, 0, 2, 1), pinned=True)
        b = FeasibleRegion(Rect(1, 0, 3, 1), pinned=True)
        assert not a.overlaps(b)

    def test_pinned_and_free_compatible(self):
        # A pinned register still offers its footprint as a region other
        # registers can move into (paper Section 2).
        pinned = FeasibleRegion(Rect(0, 0, 2, 1), pinned=True)
        free = FeasibleRegion(Rect(-5, -5, 5, 5))
        assert pinned.overlaps(free)
        assert free.overlaps(pinned)

    def test_intersect_propagates_pinned(self):
        pinned = FeasibleRegion(Rect(0, 0, 2, 1), pinned=True)
        free = FeasibleRegion(Rect(-5, -5, 5, 5))
        common = pinned.intersect(free)
        assert common is not None and common.pinned


class TestCommonRegion:
    def test_three_way_intersection(self):
        regions = [
            FeasibleRegion(Rect(0, 0, 10, 10)),
            FeasibleRegion(Rect(5, 0, 15, 10)),
            FeasibleRegion(Rect(0, 5, 10, 15)),
        ]
        common = common_region(regions)
        assert common is not None and common.rect == Rect(5, 5, 10, 10)

    def test_empty_intersection(self):
        regions = [
            FeasibleRegion(Rect(0, 0, 1, 1)),
            FeasibleRegion(Rect(2, 2, 3, 3)),
        ]
        assert common_region(regions) is None

    def test_two_pinned_rejected(self):
        regions = [
            FeasibleRegion(Rect(0, 0, 5, 5), pinned=True),
            FeasibleRegion(Rect(0, 0, 5, 5), pinned=True),
        ]
        assert common_region(regions) is None

    def test_one_pinned_allowed(self):
        regions = [
            FeasibleRegion(Rect(0, 0, 5, 5), pinned=True),
            FeasibleRegion(Rect(0, 0, 5, 5)),
        ]
        common = common_region(regions)
        assert common is not None and common.pinned

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            common_region([])


class TestSlackToDistance:
    def test_positive_slack_scales_linearly(self):
        conv = SlackToDistance(delay_per_micron=0.0005)
        assert math.isclose(conv.distance(0.05), 100.0)

    def test_negative_and_zero_slack_give_zero(self):
        conv = SlackToDistance(delay_per_micron=0.0005)
        assert conv.distance(0.0) == 0.0
        assert conv.distance(-0.3) == 0.0

    def test_cap_applies(self):
        conv = SlackToDistance(delay_per_micron=0.0005, max_distance=40.0)
        assert conv.distance(10.0) == 40.0

    @given(st.floats(min_value=-1, max_value=1, allow_nan=False))
    def test_distance_nonnegative_and_monotone(self, slack):
        conv = SlackToDistance(delay_per_micron=0.0005, max_distance=200.0)
        d = conv.distance(slack)
        assert d >= 0.0
        assert conv.distance(slack + 0.1) >= d
