"""Unit and property tests for convex hulls and point-in-polygon."""

from hypothesis import given, strategies as st

from repro.geometry import Point, convex_hull, point_in_convex_polygon, polygon_area


# Placement coordinates: microns at sub-nm resolution.  Pathological
# magnitudes (1e-24) are not representative and only probe float absorption.
coords = st.integers(min_value=-100_000, max_value=100_000).map(lambda v: v / 1000.0)
points = st.builds(Point, coords, coords)


class TestConvexHull:
    def test_triangle(self):
        hull = convex_hull([Point(0, 0), Point(4, 0), Point(0, 4)])
        assert len(hull) == 3

    def test_interior_point_dropped(self):
        hull = convex_hull([Point(0, 0), Point(4, 0), Point(0, 4), Point(1, 1)])
        assert Point(1, 1) not in hull
        assert len(hull) == 3

    def test_collinear_points_dropped(self):
        hull = convex_hull([Point(0, 0), Point(2, 0), Point(4, 0), Point(4, 4), Point(0, 4)])
        assert Point(2, 0) not in hull
        assert len(hull) == 4

    def test_duplicates_ignored(self):
        hull = convex_hull([Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)])
        assert len(hull) == 3

    def test_degenerate_single_point(self):
        assert convex_hull([Point(1, 2), Point(1, 2)]) == [Point(1, 2)]

    def test_degenerate_segment(self):
        hull = convex_hull([Point(0, 0), Point(1, 1), Point(2, 2)])
        assert hull == [Point(0, 0), Point(2, 2)]

    def test_ccw_orientation(self):
        hull = convex_hull([Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)])
        assert polygon_area(hull) > 0

    @given(st.lists(points, min_size=3, max_size=30))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_convex_polygon(p, hull, include_boundary=True)

    @given(st.lists(points, min_size=3, max_size=30))
    def test_hull_vertices_subset_of_input(self, pts):
        hull = convex_hull(pts)
        input_set = {(p.x, p.y) for p in pts}
        assert all((h.x, h.y) in input_set for h in hull)

    @given(st.lists(points, min_size=3, max_size=20))
    def test_hull_idempotent(self, pts):
        hull = convex_hull(pts)
        assert convex_hull(hull) == hull


class TestPointInPolygon:
    SQUARE = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]

    def test_strict_interior(self):
        assert point_in_convex_polygon(Point(2, 2), self.SQUARE)
        assert point_in_convex_polygon(Point(2, 2), self.SQUARE, include_boundary=False)

    def test_exterior(self):
        assert not point_in_convex_polygon(Point(5, 2), self.SQUARE)
        assert not point_in_convex_polygon(Point(-0.1, 2), self.SQUARE)

    def test_boundary_inclusive_vs_exclusive(self):
        edge_point = Point(4, 2)
        assert point_in_convex_polygon(edge_point, self.SQUARE, include_boundary=True)
        assert not point_in_convex_polygon(edge_point, self.SQUARE, include_boundary=False)

    def test_vertex(self):
        assert point_in_convex_polygon(Point(0, 0), self.SQUARE, include_boundary=True)
        assert not point_in_convex_polygon(Point(0, 0), self.SQUARE, include_boundary=False)

    def test_empty_polygon(self):
        assert not point_in_convex_polygon(Point(0, 0), [])

    def test_segment_polygon(self):
        seg = [Point(0, 0), Point(4, 0)]
        assert point_in_convex_polygon(Point(2, 0), seg)
        assert not point_in_convex_polygon(Point(2, 0.1), seg)
        assert not point_in_convex_polygon(Point(5, 0), seg)

    def test_single_vertex_polygon(self):
        assert point_in_convex_polygon(Point(1, 1), [Point(1, 1)])
        assert not point_in_convex_polygon(Point(1, 2), [Point(1, 1)])
