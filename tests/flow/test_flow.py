"""Integration tests for the Fig. 4 flow driver and metrics collection."""

import pytest

from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.metrics import collect_metrics, compare_metrics
from repro.netlist.validate import validate_design


@pytest.fixture(scope="module")
def report(lib):
    # Scale 0.3 (~210 registers): below this, single-merge noise dominates
    # the wirelength and congestion percentages the tests check.
    b = generate_design(preset("D1", scale=0.3), lib)
    bits_before = b.design.total_register_bits()
    rep = run_flow(b.design, b.timer, b.scan_model)
    return b, rep, bits_before


class TestFlowQoR:
    """The paper's headline claims, at reproduction scale."""

    def test_total_registers_reduced_substantially(self, report):
        _, rep, _ = report
        assert rep.savings["total_regs"] > 0.15  # paper avg: 29%

    def test_clock_cap_reduced(self, report):
        _, rep, _ = report
        assert rep.savings["clk_cap"] > 0.0  # paper avg: 6%

    def test_no_timing_degradation(self, report):
        _, rep, _ = report
        # "we don't increase the timing violations" — TNS and failing
        # endpoints after skew+sizing must not be meaningfully worse.
        assert abs(rep.final.tns) <= abs(rep.base.tns) * 1.10 + 0.1
        assert rep.final.failing_endpoints <= rep.base.failing_endpoints * 1.10 + 2

    def test_wirelength_not_increased(self, report):
        _, rep, _ = report
        assert rep.final.wirelength_total <= rep.base.wirelength_total * 1.02

    def test_congestion_not_degraded(self, report):
        _, rep, _ = report
        base, ours = rep.base.overflow_edges, rep.final.overflow_edges
        assert ours <= base * 1.06 + 3  # "marginal" difference

    def test_area_not_increased(self, report):
        _, rep, _ = report
        assert rep.final.area <= rep.base.area * 1.005

    def test_netlist_valid_after_flow(self, report):
        b, _, _ = report
        assert not [i for i in validate_design(b.design) if i.is_error]

    def test_width_histogram_shifts_up(self, report):
        _, rep, _ = report
        # Fig. 5: mass moves toward wider MBRs.
        def mean_width(hist):
            total = sum(hist.values())
            return sum(w * c for w, c in hist.items()) / total

        assert mean_width(rep.final.width_histogram) > mean_width(rep.base.width_histogram)

    def test_bits_conserved(self, report):
        b, rep, bits_before = report
        # Connected bits are invariant; the physical-width histogram may
        # carry extra spare bits from incomplete MBRs.
        assert b.design.total_register_bits() == bits_before

        def bits(hist):
            return sum(w * c for w, c in hist.items())

        assert bits(rep.final.width_histogram) >= bits(rep.base.width_histogram)

    def test_skew_and_sizing_ran(self, report):
        _, rep, _ = report
        assert rep.skew is not None and rep.skew.offsets
        assert rep.sizing is not None

    def test_runtime_recorded(self, report):
        _, rep, _ = report
        assert rep.runtime_seconds > 0
        assert rep.final.exec_time_s == pytest.approx(rep.runtime_seconds)


class TestFlowVariants:
    def test_heuristic_algorithm(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        rep = run_flow(b.design, b.timer, b.scan_model, FlowConfig(algorithm="heuristic"))
        assert rep.final.total_regs < rep.base.total_regs

    def test_unknown_algorithm_rejected(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        with pytest.raises(ValueError):
            run_flow(b.design, b.timer, b.scan_model, FlowConfig(algorithm="nope"))

    def test_skew_and_sizing_can_be_disabled(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        rep = run_flow(
            b.design, b.timer, b.scan_model, FlowConfig(run_skew=False, run_sizing=False)
        )
        assert rep.skew is None and rep.sizing is None


class TestMetrics:
    def test_collect_base_metrics(self, lib):
        b = generate_design(preset("D3", scale=0.1), lib)
        m = collect_metrics(b.design, b.timer, b.scan_model)
        assert m.total_regs == b.design.total_register_count()
        assert 0 < m.comp_regs <= m.total_regs
        assert m.clk_cap > 0 and m.clk_bufs > 0
        assert m.total_endpoints > 0
        assert m.wirelength_other > 0

    def test_compare_metrics_signs(self, lib):
        from repro.metrics import DesignMetrics

        base = DesignMetrics(area=100, total_regs=100, clk_cap=1.0)
        ours = DesignMetrics(area=90, total_regs=70, clk_cap=1.1)
        cmp = compare_metrics(base, ours)
        assert cmp["area"] == pytest.approx(0.10)
        assert cmp["total_regs"] == pytest.approx(0.30)
        assert cmp["clk_cap"] == pytest.approx(-0.10)  # negative = got worse

    def test_compare_handles_zero_base(self):
        from repro.metrics import DesignMetrics

        cmp = compare_metrics(DesignMetrics(), DesignMetrics())
        assert all(v == 0.0 for v in cmp.values())


class TestReporting:
    def test_table1_renders(self, report):
        from repro.reporting import format_table1

        _, rep, _ = report
        text = format_table1([rep])
        assert "Base" in text and "Ours" in text and "Save" in text
        assert rep.design_name in text

    def test_fig5_renders(self, report):
        from repro.reporting import format_fig5_histograms

        _, rep, _ = report
        text = format_fig5_histograms([rep])
        assert "Before" in text and "After" in text
        assert "8-bit" in text

    def test_fig6_renders(self, report):
        from repro.reporting import format_fig6_comparison

        _, rep, _ = report
        text = format_fig6_comparison([rep], [rep])
        assert "ILP/Heur" in text and "average" in text
