"""Integration tests for the Fig. 4 flow driver and metrics collection."""

import pytest

from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.metrics import collect_metrics, compare_metrics
from repro.netlist.validate import validate_design


@pytest.fixture(scope="module")
def report(lib):
    # Scale 0.3 (~210 registers): below this, single-merge noise dominates
    # the wirelength and congestion percentages the tests check.
    b = generate_design(preset("D1", scale=0.3), lib)
    bits_before = b.design.total_register_bits()
    rep = run_flow(b.design, b.timer, b.scan_model)
    return b, rep, bits_before


class TestFlowQoR:
    """The paper's headline claims, at reproduction scale."""

    def test_total_registers_reduced_substantially(self, report):
        _, rep, _ = report
        assert rep.savings["total_regs"] > 0.15  # paper avg: 29%

    def test_clock_cap_reduced(self, report):
        _, rep, _ = report
        assert rep.savings["clk_cap"] > 0.0  # paper avg: 6%

    def test_no_timing_degradation(self, report):
        _, rep, _ = report
        # "we don't increase the timing violations" — TNS and failing
        # endpoints after skew+sizing must not be meaningfully worse.
        assert abs(rep.final.tns) <= abs(rep.base.tns) * 1.10 + 0.1
        assert rep.final.failing_endpoints <= rep.base.failing_endpoints * 1.10 + 2

    def test_wirelength_not_increased(self, report):
        _, rep, _ = report
        assert rep.final.wirelength_total <= rep.base.wirelength_total * 1.02

    def test_congestion_not_degraded(self, report):
        _, rep, _ = report
        base, ours = rep.base.overflow_edges, rep.final.overflow_edges
        assert ours <= base * 1.06 + 3  # "marginal" difference

    def test_area_not_increased(self, report):
        _, rep, _ = report
        assert rep.final.area <= rep.base.area * 1.005

    def test_netlist_valid_after_flow(self, report):
        b, _, _ = report
        assert not [i for i in validate_design(b.design) if i.is_error]

    def test_width_histogram_shifts_up(self, report):
        _, rep, _ = report
        # Fig. 5: mass moves toward wider MBRs.
        def mean_width(hist):
            total = sum(hist.values())
            return sum(w * c for w, c in hist.items()) / total

        assert mean_width(rep.final.width_histogram) > mean_width(rep.base.width_histogram)

    def test_bits_conserved(self, report):
        b, rep, bits_before = report
        # Connected bits are invariant; the physical-width histogram may
        # carry extra spare bits from incomplete MBRs.
        assert b.design.total_register_bits() == bits_before

        def bits(hist):
            return sum(w * c for w, c in hist.items())

        assert bits(rep.final.width_histogram) >= bits(rep.base.width_histogram)

    def test_skew_and_sizing_ran(self, report):
        _, rep, _ = report
        assert rep.skew is not None and rep.skew.offsets
        assert rep.sizing is not None

    def test_runtime_recorded(self, report):
        _, rep, _ = report
        assert rep.runtime_seconds > 0
        assert rep.final.exec_time_s == pytest.approx(rep.runtime_seconds)


class TestFlowTrace:
    """The stage-pipeline engine's runtime accounting."""

    def test_trace_covers_every_flow_stage(self, report):
        _, rep, _ = report
        assert rep.trace is not None
        assert rep.trace.stage_names() == [
            "base-metrics",
            "decompose",
            "compose",
            "legalize-bits",
            "skew",
            "sizing",
            "final-metrics",
        ]

    def test_stage_runtimes_sum_to_flow_runtime(self, report):
        _, rep, _ = report
        # Top-level stage wall clocks account for the whole run (the only
        # unmeasured work is pipeline bookkeeping and report assembly).
        assert rep.trace.total_seconds == pytest.approx(
            rep.runtime_seconds, rel=0.05
        )

    def test_compose_stage_nests_composer_trace(self, report):
        _, rep, _ = report
        compose_rec = next(r for r in rep.trace.records if r.name == "compose")
        assert compose_rec.children is rep.composition.trace
        names = rep.composition.trace.stage_names()
        assert names[:6] == [
            "analyze",
            "graph",
            "partition",
            "enumerate",
            "solve",
            "apply",
        ]
        assert names[-2:] == ["scan", "legalize"]

    def test_composer_trace_counters(self, report):
        _, rep, _ = report
        trace = rep.composition.trace
        assert trace.counter_total("subgraphs") == rep.composition.subgraphs
        assert trace.counter_total("ilp_nodes") == rep.composition.ilp_nodes
        assert trace.counter_total("composed") == len(rep.composition.composed)

    def test_heuristic_flow_also_traced(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        rep = run_flow(b.design, b.timer, b.scan_model, FlowConfig(algorithm="heuristic"))
        assert rep.trace is not None
        names = rep.composition.trace.stage_names()
        assert names == ["analyze", "graph", "solve", "apply", "scan", "legalize"]

    def test_trace_formats(self, report):
        _, rep, _ = report
        text = rep.trace.format()
        assert "compose" in text and "final-metrics" in text and "total" in text


class TestFlowVariants:
    def test_heuristic_algorithm(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        rep = run_flow(b.design, b.timer, b.scan_model, FlowConfig(algorithm="heuristic"))
        assert rep.final.total_regs < rep.base.total_regs

    def test_unknown_algorithm_rejected(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        with pytest.raises(ValueError):
            run_flow(b.design, b.timer, b.scan_model, FlowConfig(algorithm="nope"))

    def test_decomposition_field_is_typed(self, lib):
        from repro.core.decompose import DecomposeResult

        b = generate_design(preset("D4", scale=0.1), lib)
        rep = run_flow(
            b.design, b.timer, b.scan_model, FlowConfig(decompose_widths=(8,))
        )
        assert isinstance(rep.decomposition, DecomposeResult)
        assert rep.decomposition.decomposed

    def test_skew_and_sizing_can_be_disabled(self, lib):
        b = generate_design(preset("D2", scale=0.1), lib)
        rep = run_flow(
            b.design, b.timer, b.scan_model, FlowConfig(run_skew=False, run_sizing=False)
        )
        assert rep.skew is None and rep.sizing is None


class TestMetrics:
    def test_collect_base_metrics(self, lib):
        b = generate_design(preset("D3", scale=0.1), lib)
        m = collect_metrics(b.design, b.timer, b.scan_model)
        assert m.total_regs == b.design.total_register_count()
        assert 0 < m.comp_regs <= m.total_regs
        assert m.clk_cap > 0 and m.clk_bufs > 0
        assert m.total_endpoints > 0
        assert m.wirelength_other > 0

    def test_compare_metrics_signs(self, lib):
        from repro.metrics import DesignMetrics

        base = DesignMetrics(area=100, total_regs=100, clk_cap=1.0)
        ours = DesignMetrics(area=90, total_regs=70, clk_cap=1.1)
        cmp = compare_metrics(base, ours)
        assert cmp["area"] == pytest.approx(0.10)
        assert cmp["total_regs"] == pytest.approx(0.30)
        assert cmp["clk_cap"] == pytest.approx(-0.10)  # negative = got worse

    def test_compare_handles_zero_base(self):
        from repro.metrics import DesignMetrics

        cmp = compare_metrics(DesignMetrics(), DesignMetrics())
        assert all(v == 0.0 for v in cmp.values())


class TestReporting:
    def test_table1_renders(self, report):
        from repro.reporting import format_table1

        _, rep, _ = report
        text = format_table1([rep])
        assert "Base" in text and "Ours" in text and "Save" in text
        assert rep.design_name in text

    def test_fig5_renders(self, report):
        from repro.reporting import format_fig5_histograms

        _, rep, _ = report
        text = format_fig5_histograms([rep])
        assert "Before" in text and "After" in text
        assert "8-bit" in text

    def test_fig6_renders(self, report):
        from repro.reporting import format_fig6_comparison

        _, rep, _ = report
        text = format_fig6_comparison([rep], [rep])
        assert "ILP/Heur" in text and "average" in text
