"""EcoSession: incremental recomposition must be bit-identical to a
from-scratch compose.

The heart of PR 3's acceptance criterion: after every localized edit of a
seeded storm, ``EcoSession.recompose()`` must yield the same composed
groups, placements, and timing summary as running
:func:`~repro.core.composer.compose_design` from scratch on a clone of
the same (edited) netlist — while actually reusing cached component
outcomes.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.bench import generate_design, preset
from repro.check import (
    assert_clean,
    clone_world,
    compare_session_to_reference,
    scratch_compose,
)
from repro.core.composer import compose_design
from repro.flow import EcoSession
from repro.geometry import Point
from repro.sta import Timer

from tests.conftest import make_flop_row


def _random_move(design, rng, radius=3.0):
    """Pick a movable register and a clamped die position near it."""
    movable = [c for c in design.registers() if not (c.fixed or c.dont_touch)]
    cell = rng.choice(movable)
    x = min(
        max(design.die.xlo, cell.origin.x + rng.uniform(-radius, radius)),
        design.die.xhi - cell.libcell.width,
    )
    y = min(
        max(design.die.ylo, cell.origin.y + rng.uniform(-radius, radius)),
        design.die.yhi - cell.libcell.height,
    )
    return cell, Point(x, y)


class TestEcoEquivalence:
    def test_priming_compose_matches_compose_design(self, lib):
        bundle = generate_design(preset("D1", scale=0.15), lib)
        session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
        ref_result, ref_design, ref_timer = scratch_compose(session)

        stats = session.recompose()
        assert not stats.incremental

        assert_clean(
            compare_session_to_reference(
                session, stats.result, ref_result, ref_design, ref_timer
            )
        )

    def test_twenty_move_storm_stays_bit_identical(self, lib):
        bundle = generate_design(preset("D1", scale=0.15), lib)
        session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
        session.recompose()

        rng = random.Random(11)
        reused = recomputed = 0.0
        for _ in range(21):
            cell, target = _random_move(session.design, rng)
            with session.edit():
                session.design.move_cell(cell, target)

            # Snapshot the edited-but-not-yet-recomposed world; the shadow
            # compose runs from scratch on that clone.
            design, timer, scan = clone_world(
                session.design, session.timer, session.scan_model
            )
            stats = session.recompose()
            assert stats.incremental
            assert stats.dirty_registers > 0
            ref_result = compose_design(
                design,
                timer,
                scan,
                config=replace(session.config, passes=session.max_passes),
            )

            assert_clean(
                compare_session_to_reference(
                    session, stats.result, ref_result, design, timer
                )
            )

            r, c = stats.reuse.get("components", (0.0, 0.0))
            reused += r
            recomputed += c

        # The storm must actually exercise the cache: most components are
        # replayed from their digests, not re-enumerated.
        assert reused > 0
        assert recomputed < reused

    def test_full_recompose_and_explicit_passes_are_not_incremental(self, lib):
        bundle = generate_design(preset("D1", scale=0.1), lib)
        session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
        assert not session.recompose().incremental  # priming run

        rng = random.Random(3)
        cell, target = _random_move(session.design, rng)
        with session.edit():
            session.design.move_cell(cell, target)
        assert not session.recompose(full=True).incremental

        cell, target = _random_move(session.design, rng)
        with session.edit():
            session.design.move_cell(cell, target)
        assert not session.recompose(passes=2).incremental

        cell, target = _random_move(session.design, rng)
        with session.edit():
            session.design.move_cell(cell, target)
        assert session.recompose().incremental


class TestAuditMode:
    def test_audit_shadow_checks_every_incremental_recompose(self, lib):
        bundle = generate_design(preset("D1", scale=0.1), lib)
        session = EcoSession(
            bundle.design, bundle.timer, bundle.scan_model, audit_mode=True
        )
        prime = session.recompose()
        assert not prime.audit_checked  # nothing to shadow-check yet

        rng = random.Random(5)
        for _ in range(5):
            cell, target = _random_move(session.design, rng)
            with session.edit():
                session.design.move_cell(cell, target)
            stats = session.recompose()
            # audit_mode composes a clone from scratch and raises
            # EcoAuditError on any divergence — reaching here means the
            # incremental result matched bit-for-bit.
            assert stats.incremental
            assert stats.audit_checked

    def test_audit_env_gates_the_default(self, lib, monkeypatch):
        design = make_flop_row(lib)
        timer = Timer(design, clock_period=1.0)

        monkeypatch.delenv("REPRO_ECO_AUDIT", raising=False)
        assert not EcoSession(design, timer).audit_mode

        monkeypatch.setenv("REPRO_ECO_AUDIT", "1")
        assert EcoSession(design, timer).audit_mode

        monkeypatch.setenv("REPRO_ECO_AUDIT", "0")
        assert not EcoSession(design, timer).audit_mode

        # An explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_ECO_AUDIT", "1")
        assert not EcoSession(design, timer, audit_mode=False).audit_mode
