"""Tests for the row/site grid."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect
from repro.placement import PlacementRows


@pytest.fixture
def rows() -> PlacementRows:
    return PlacementRows(Rect(0, 0, 100, 50), row_height=1.0, site_width=0.2)


class TestGrid:
    def test_counts(self, rows):
        assert rows.num_rows == 50
        assert rows.sites_per_row == 500

    def test_row_y(self, rows):
        assert rows.row_y(0) == 0.0
        assert rows.row_y(49) == 49.0
        with pytest.raises(IndexError):
            rows.row_y(50)

    def test_nearest_row_clamps(self, rows):
        assert rows.nearest_row(-5.0) == 0
        assert rows.nearest_row(500.0) == 49
        assert rows.nearest_row(10.4) == 10
        assert rows.nearest_row(10.6) == 11

    def test_snap_x(self, rows):
        assert rows.snap_x(1.09) == pytest.approx(1.0)
        assert rows.snap_x(1.11) == pytest.approx(1.2)
        assert rows.snap_x(-3.0) == 0.0
        assert rows.snap_x(1000.0) == 100.0

    def test_snap_point(self, rows):
        p = rows.snap(Point(5.49, 7.6))
        assert p == Point(5.4, 8.0)

    def test_sites_for_width(self, rows):
        assert rows.sites_for_width(0.2) == 1
        assert rows.sites_for_width(0.21) == 2
        assert rows.sites_for_width(1.0) == 5
        assert rows.sites_for_width(0.05) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PlacementRows(Rect(0, 0, 10, 10), row_height=0.0, site_width=0.2)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_snap_idempotent(self, x):
        rows = PlacementRows(Rect(0, 0, 100, 50), row_height=1.0, site_width=0.2)
        snapped = rows.snap_x(x)
        assert rows.snap_x(snapped) == pytest.approx(snapped)
        assert 0.0 <= snapped <= 100.0
