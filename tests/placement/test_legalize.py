"""Tests for the Tetris legalizer."""

import pytest

from repro.geometry import Point, Rect
from repro.library.functional import DFF_R
from repro.netlist import Design
from repro.placement import PlacementRows, legalize


@pytest.fixture
def rows() -> PlacementRows:
    return PlacementRows(Rect(0, 0, 50, 20), row_height=1.0, site_width=0.2)


def _no_overlaps(design: Design) -> bool:
    cells = list(design.cells.values())
    for i, a in enumerate(cells):
        for b in cells[i + 1 :]:
            inter = a.footprint.intersect(b.footprint)
            if inter is not None and inter.area > 1e-9:
                return False
    return True


def _on_grid(design: Design, rows: PlacementRows) -> bool:
    for c in design.cells.values():
        snapped = rows.snap(c.origin)
        if abs(snapped.x - c.origin.x) > 1e-9 or abs(snapped.y - c.origin.y) > 1e-9:
            return False
    return True


class TestLegalize:
    def test_already_legal_design_unchanged(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        d.add_cell("a", "BUF_X1", Point(1.0, 5.0))
        d.add_cell("b", "BUF_X1", Point(10.0, 5.0))
        res = legalize(d, rows)
        assert res.ok
        assert res.num_moved == 0

    def test_overlapping_cells_separated(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        for i in range(5):
            d.add_cell(f"c{i}", "BUF_X2", Point(10.0, 5.0))  # all stacked
        res = legalize(d, rows)
        assert res.ok
        assert _no_overlaps(d)
        assert _on_grid(d, rows)

    def test_off_grid_cells_snapped(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        d.add_cell("a", "BUF_X1", Point(3.37, 5.49))
        res = legalize(d, rows)
        assert res.ok
        assert _on_grid(d, rows)

    def test_fixed_cells_are_obstacles(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        obstacle = d.add_cell("fix", "BUF_X4", Point(10.0, 5.0), fixed=True)
        mover = d.add_cell("mv", "BUF_X1", Point(10.0, 5.0))
        res = legalize(d, rows)
        assert res.ok
        assert obstacle.origin == Point(10.0, 5.0)
        assert _no_overlaps(d)

    def test_incremental_subset_leaves_rest_alone(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        stay = d.add_cell("stay", "BUF_X1", Point(5.0, 5.0))
        mbr_cell = lib.register_cells(DFF_R, 8)[0]
        mbr = d.add_cell("mbr", mbr_cell, Point(5.0, 5.0))
        res = legalize(d, rows, movable=[mbr])
        assert res.ok
        assert stay.origin == Point(5.0, 5.0)  # untouched
        assert _no_overlaps(d)

    def test_wide_mbr_seated_first(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        mbr_cell = lib.register_cells(DFF_R, 8)[0]
        d.add_cell("mbr", mbr_cell, Point(20.0, 10.0))
        for i in range(10):
            d.add_cell(f"b{i}", "BUF_X1", Point(20.0 + 0.1 * i, 10.0))
        res = legalize(d, rows)
        assert res.ok
        assert _no_overlaps(d)
        # The MBR (processed first) should be at or very near its target.
        assert d.cell("mbr").origin.manhattan_to(Point(20.0, 10.0)) < 2.0

    def test_max_displacement_can_fail(self, lib):
        tiny = PlacementRows(Rect(0, 0, 4, 2), row_height=1.0, site_width=0.2)
        d = Design("t", lib, Rect(0, 0, 4, 2))
        d.add_cell("fix", "BUF_X4", Point(0.0, 0.0), fixed=True)
        d.add_cell("fix2", "BUF_X4", Point(0.0, 1.0), fixed=True)
        mv = d.add_cell("mv", "BUF_X4", Point(0.0, 0.0))
        res = legalize(d, tiny, movable=[mv], max_displacement=0.5)
        assert not res.ok and res.failed == ["mv"]

    def test_displacement_metrics(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        d.add_cell("a", "BUF_X1", Point(10.0, 5.0))
        d.add_cell("b", "BUF_X1", Point(10.0, 5.0))
        res = legalize(d, rows)
        assert res.total_displacement >= res.max_displacement >= 0.0
        assert res.num_moved >= 1

    def test_dense_row_spills_to_neighbor_rows(self, lib, rows):
        d = Design("t", lib, Rect(0, 0, 50, 20))
        # More cells than fit on one row at x in [0, 2]: must spread.
        for i in range(30):
            d.add_cell(f"c{i}", "BUF_X4", Point(1.0, 10.0))
        res = legalize(d, rows)
        assert res.ok
        assert _no_overlaps(d)
        used_rows = {c.origin.y for c in d.cells.values()}
        assert len(used_rows) > 1
