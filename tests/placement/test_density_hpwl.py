"""Tests for density maps and HPWL measurement."""

import pytest

from repro.geometry import Point, Rect
from repro.netlist import Design
from repro.placement import DensityMap, design_hpwl
from repro.placement.hpwl import hpwl_of_nets


class TestDensityMap:
    def test_total_area_conserved(self, lib, flop_row):
        dm = DensityMap.of_design(flop_row, bins_x=8, bins_y=8)
        assert dm.area.sum() == pytest.approx(flop_row.total_cell_area())

    def test_rect_spanning_bins_split(self):
        dm = DensityMap(Rect(0, 0, 10, 10), bins_x=2, bins_y=1)
        dm.add_rect(Rect(4, 0, 6, 1))  # 1 um^2 in each half
        assert dm.area[0, 0] == pytest.approx(1.0)
        assert dm.area[1, 0] == pytest.approx(1.0)

    def test_negative_sign_removes(self):
        dm = DensityMap(Rect(0, 0, 10, 10), bins_x=2, bins_y=2)
        r = Rect(1, 1, 3, 3)
        dm.add_rect(r)
        dm.add_rect(r, sign=-1.0)
        assert abs(dm.area).max() == pytest.approx(0.0)

    def test_utilization_and_overfull(self):
        dm = DensityMap(Rect(0, 0, 4, 4), bins_x=2, bins_y=2)
        dm.add_rect(Rect(0, 0, 2, 2))  # fills bin (0,0) exactly
        assert dm.max_utilization == pytest.approx(1.0)
        assert dm.overfull_bins(limit=0.99) == 1
        assert dm.overfull_bins(limit=1.01) == 0

    def test_rect_outside_core_clipped(self):
        dm = DensityMap(Rect(0, 0, 4, 4), bins_x=2, bins_y=2)
        dm.add_rect(Rect(-2, -2, 1, 1))
        assert dm.area.sum() == pytest.approx(1.0)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            DensityMap(Rect(0, 0, 4, 4), bins_x=0, bins_y=2)


class TestHpwl:
    def test_clock_other_split(self, flop_row):
        total = design_hpwl(flop_row)
        clk = design_hpwl(flop_row, clock_only=True)
        other = design_hpwl(flop_row, clock_only=False)
        assert clk + other == pytest.approx(total)
        assert clk > 0

    def test_hpwl_of_net_subset(self, flop_row):
        nets = [flop_row.net("n_d0"), flop_row.net("n_q0")]
        assert hpwl_of_nets(nets) == pytest.approx(sum(n.hpwl() for n in nets))

    def test_moving_cell_changes_hpwl(self, lib):
        d = Design("t", lib, Rect(0, 0, 100, 100))
        a = d.add_cell("a", "BUF_X1", Point(0, 0))
        b = d.add_cell("b", "INV_X1", Point(10, 0))
        n = d.add_net("n")
        d.connect(a.pin("Z"), n)
        d.connect(b.pin("A"), n)
        before = design_hpwl(d)
        b.move_to(Point(50, 0))
        assert design_hpwl(d) > before
