"""Tests for the pure-Python simplex, cross-checked against SciPy HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import LPStatus, scipy_available, solve_lp, solve_lp_scipy

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")


class TestBasics:
    def test_simple_minimization(self):
        # min -x - y  s.t. x + y <= 4, x <= 3, y <= 2  ->  x=3, y=1 or x=2,y=2
        res = solve_lp([-1, -1], A_ub=[[1, 1]], b_ub=[4], bounds=[(0, 3), (0, 2)])
        assert res.ok
        assert res.objective == pytest.approx(-4.0)

    def test_equality_constraints(self):
        # min x + 2y  s.t. x + y = 3  ->  x=3, y=0
        res = solve_lp([1, 2], A_eq=[[1, 1]], b_eq=[3])
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)
        assert res.objective == pytest.approx(3.0)

    def test_infeasible(self):
        res = solve_lp([1], A_eq=[[1]], b_eq=[5], bounds=[(0, 1)])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = solve_lp([-1], bounds=[(0, None)])
        assert res.status is LPStatus.UNBOUNDED

    def test_inconsistent_bounds(self):
        res = solve_lp([1], bounds=[(2.0, 1.0)])
        assert res.status is LPStatus.INFEASIBLE

    def test_negative_lower_bounds(self):
        res = solve_lp([1], bounds=[(-5.0, 5.0)])
        assert res.ok and res.x[0] == pytest.approx(-5.0)

    def test_free_variable(self):
        # min |x - 3| style: min z s.t. z >= x - 3, z >= 3 - x, x free.
        res = solve_lp(
            [0, 1],
            A_ub=[[1, -1], [-1, -1]],
            b_ub=[3, -3],
            bounds=[(None, None), (0, None)],
        )
        assert res.ok
        assert res.x[0] == pytest.approx(3.0)
        assert res.objective == pytest.approx(0.0)

    def test_negative_rhs_normalized(self):
        # -x <= -2  <=>  x >= 2.
        res = solve_lp([1], A_ub=[[-1]], b_ub=[-2])
        assert res.ok and res.x[0] == pytest.approx(2.0)

    def test_degenerate_problem_terminates(self):
        # Classic degeneracy: redundant constraints through the optimum.
        res = solve_lp(
            [-1, -1],
            A_ub=[[1, 0], [1, 0], [0, 1], [1, 1]],
            b_ub=[1, 1, 1, 2],
        )
        assert res.ok and res.objective == pytest.approx(-2.0)


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    @needs_scipy
    def test_random_lps_match_highs(self, data):
        n = data.draw(st.integers(2, 5))
        m = data.draw(st.integers(1, 5))
        coef = st.floats(min_value=-5, max_value=5, allow_nan=False)
        c = data.draw(st.lists(coef, min_size=n, max_size=n))
        A = [data.draw(st.lists(coef, min_size=n, max_size=n)) for _ in range(m)]
        b = data.draw(st.lists(st.floats(min_value=0.1, max_value=10), min_size=m, max_size=m))
        bounds = [(0.0, 10.0)] * n  # box keeps everything bounded/feasible

        ours = solve_lp(c, A_ub=A, b_ub=b, bounds=bounds)
        ref = solve_lp_scipy(c, A_ub=A, b_ub=b, bounds=bounds)
        assert ours.status == ref.status
        if ours.ok:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            # Our solution must satisfy the constraints.
            assert np.all(np.asarray(A) @ ours.x <= np.asarray(b) + 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    @needs_scipy
    def test_random_equality_lps_match_highs(self, data):
        n = data.draw(st.integers(2, 4))
        coef = st.floats(min_value=-3, max_value=3, allow_nan=False)
        c = data.draw(st.lists(coef, min_size=n, max_size=n))
        row = data.draw(st.lists(st.floats(min_value=0.5, max_value=3), min_size=n, max_size=n))
        b = data.draw(st.floats(min_value=0.5, max_value=float(sum(row))))
        bounds = [(0.0, 1.0)] * n

        ours = solve_lp(c, A_eq=[row], b_eq=[b], bounds=bounds)
        ref = solve_lp_scipy(c, A_eq=[row], b_eq=[b], bounds=bounds)
        assert ours.status == ref.status
        if ours.ok:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
