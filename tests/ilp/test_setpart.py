"""Tests for the exact set-partition solver (the composition ILP core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import (
    SetPartitionProblem,
    scipy_available,
    solve_set_partition,
    solve_set_partition_scipy,
)
from repro.ilp.branch_bound import solve_binary_program

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")


def problem(n, subsets, weights):
    return SetPartitionProblem(
        n_elements=n,
        subsets=tuple(frozenset(s) for s in subsets),
        weights=tuple(float(w) for w in weights),
    )


class TestExactness:
    def test_trivial_singletons(self):
        p = problem(3, [[0], [1], [2]], [1, 1, 1])
        sol = solve_set_partition(p)
        assert sol.feasible and sol.objective == pytest.approx(3.0)
        assert sorted(sol.chosen) == [0, 1, 2]

    def test_prefers_cheap_big_subset(self):
        # {0,1,2} at 0.5 beats three singletons at 1 each.
        p = problem(3, [[0], [1], [2], [0, 1, 2]], [1, 1, 1, 0.5])
        sol = solve_set_partition(p)
        assert sol.chosen == [3]
        assert sol.objective == pytest.approx(0.5)

    def test_overlap_forces_disjoint_choice(self):
        # {0,1} and {1,2} overlap; must pick one plus a singleton.
        p = problem(3, [[0, 1], [1, 2], [0], [1], [2]], [0.5, 0.5, 1, 1, 1])
        sol = solve_set_partition(p)
        assert sol.objective == pytest.approx(1.5)
        chosen_sets = [p.subsets[i] for i in sol.chosen]
        covered = frozenset().union(*chosen_sets)
        assert covered == frozenset({0, 1, 2})
        assert sum(len(s) for s in chosen_sets) == 3  # disjoint

    def test_infeasible_reported(self):
        p = problem(3, [[0, 1]], [1.0])
        sol = solve_set_partition(p)
        assert not sol.feasible

    def test_paper_weight_example(self):
        # Section 3.2's arithmetic: one 8-bit MBR with one blocker (w=16)
        # loses to a clean 4-bit (w=1/4) plus a blocked 4-bit (w=8).
        p = problem(
            2,
            [[0, 1], [0], [1]],
            [16.0, 0.25, 8.0],
        )
        sol = solve_set_partition(p)
        assert sorted(sol.chosen) == [1, 2]
        assert sol.objective == pytest.approx(8.25)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            problem(2, [[]], [1.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            problem(2, [[5]], [1.0])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            problem(2, [[0]], [1.0, 2.0])


@st.composite
def random_instances(draw):
    """Feasible random instances: singletons for every element plus extras."""
    n = draw(st.integers(3, 9))
    subsets = [[e] for e in range(n)]
    weights = [draw(st.floats(min_value=0.1, max_value=4)) for _ in range(n)]
    n_extra = draw(st.integers(0, 8))
    for _ in range(n_extra):
        size = draw(st.integers(2, min(4, n)))
        members = draw(
            st.lists(st.integers(0, n - 1), min_size=size, max_size=size, unique=True)
        )
        subsets.append(members)
        weights.append(draw(st.floats(min_value=0.1, max_value=4)))
    return problem(n, subsets, weights)


class TestAgainstReferenceSolvers:
    @settings(max_examples=40, deadline=None)
    @given(random_instances())
    @needs_scipy
    def test_matches_scipy_milp(self, p):
        ours = solve_set_partition(p)
        ref = solve_set_partition_scipy(p)
        assert ours.feasible and ref.feasible
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(random_instances())
    def test_matches_generic_branch_bound(self, p):
        ours = solve_set_partition(p)
        # Encode as a generic binary program.
        k = len(p.subsets)
        A_eq = [[1.0 if e in p.subsets[i] else 0.0 for i in range(k)] for e in range(p.n_elements)]
        b_eq = [1.0] * p.n_elements
        ref = solve_binary_program(list(p.weights), A_eq=A_eq, b_eq=b_eq)
        assert ref.feasible
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(random_instances())
    def test_solution_is_exact_partition(self, p):
        sol = solve_set_partition(p)
        counts = [0] * p.n_elements
        for i in sol.chosen:
            for e in p.subsets[i]:
                counts[e] += 1
        assert all(c == 1 for c in counts)


class TestScale:
    def test_30_element_instance_fast(self):
        # The paper's subgraph bound: 30 registers with many overlapping
        # candidates must solve exactly without pain.
        import itertools

        n = 30
        subsets = [[e] for e in range(n)]
        weights = [1.0] * n
        for a, b in itertools.combinations(range(0, n, 2), 2):
            if abs(a - b) <= 6:
                subsets.append([a, b])
                weights.append(0.5)
        for start in range(0, n - 4, 3):
            subsets.append(list(range(start, start + 4)))
            weights.append(0.25)
        p = problem(n, subsets, weights)
        sol = solve_set_partition(p)
        assert sol.feasible
        if scipy_available():
            ref = solve_set_partition_scipy(p)
            assert sol.objective == pytest.approx(ref.objective, abs=1e-6)
