"""Warm-started ILP solves: bound-only pruning, bit-identical optima.

A :class:`~repro.ilp.setpart.WarmStart` carries the objective of a
known-feasible solution from a prior matching instance.  The contract is
strict: the solver may *prune* with it but never *adopt* it, so a warm
solve returns exactly the cold solve's answer — chosen set, objective,
feasibility — while typically exploring fewer nodes.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.candidates import CandidateMBR
from repro.core.composer import _warm_bound
from repro.ilp import SetPartitionProblem, WarmStart, solve_set_partition
from repro.ilp.branch_bound import solve_binary_program


def _problem() -> SetPartitionProblem:
    # 6 elements, singletons at weight 1 plus a few cheaper merged subsets.
    subsets = [frozenset((i,)) for i in range(6)]
    weights = [1.0] * 6
    subsets += [
        frozenset((0, 1)),
        frozenset((2, 3)),
        frozenset((4, 5)),
        frozenset((0, 1, 2)),
        frozenset((3, 4, 5)),
    ]
    weights += [0.5, 0.5, 0.5, 0.4, 0.9]
    return SetPartitionProblem(
        n_elements=6, subsets=tuple(subsets), weights=tuple(weights)
    )


class TestSetPartitionWarmStart:
    def test_warm_solve_is_bit_identical_to_cold(self):
        problem = _problem()
        cold = solve_set_partition(problem)
        assert cold.feasible
        warm = solve_set_partition(problem, warm=WarmStart(bound=cold.objective))
        assert warm.feasible
        assert warm.chosen == cold.chosen
        assert warm.objective == cold.objective

    def test_loose_warm_bound_changes_nothing(self):
        problem = _problem()
        cold = solve_set_partition(problem)
        warm = solve_set_partition(
            problem, warm=WarmStart(bound=cold.objective + 100.0)
        )
        assert warm.chosen == cold.chosen
        assert warm.objective == cold.objective

    def test_unusable_warm_start_is_ignored(self):
        problem = _problem()
        ws = WarmStart(bound=float("inf"))
        assert not ws.usable
        obs.set_registry(obs.MetricsRegistry())
        out = solve_set_partition(problem, warm=ws)
        cold = solve_set_partition(problem)
        assert out.chosen == cold.chosen
        counters = obs.get_registry().snapshot()["counters"]
        assert "ilp.setpart.warmstart_hits" not in counters

    def test_warm_start_counts_hits_and_prunes(self):
        problem = _problem()
        cold = solve_set_partition(problem)
        obs.set_registry(obs.MetricsRegistry())
        warm = solve_set_partition(problem, warm=WarmStart(bound=cold.objective))
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["ilp.setpart.warmstart_hits"] == 1
        assert counters["ilp.setpart.prunes_from_incumbent"] == warm.warm_pruned
        assert warm.warm_pruned >= 0


class TestBinaryProgramWarmStart:
    def test_warm_solve_matches_cold(self):
        # min -x0 - x1 s.t. x0 + x1 <= 1: optimum picks exactly one.
        c = np.array([-1.0, -1.0, 0.0])
        A_ub = np.array([[1.0, 1.0, 0.0]])
        b_ub = np.array([1.0])
        cold = solve_binary_program(c, A_ub=A_ub, b_ub=b_ub)
        obs.set_registry(obs.MetricsRegistry())
        warm = solve_binary_program(
            c, A_ub=A_ub, b_ub=b_ub, warm=WarmStart(bound=cold.objective)
        )
        assert warm.x.tolist() == cold.x.tolist()
        assert warm.objective == cold.objective
        counters = obs.get_registry().snapshot()["counters"]
        assert counters["ilp.bnb.warmstart_hits"] == 1


def _cand(members, weight, bits=None):
    members = tuple(members)
    return CandidateMBR(
        members=members,
        bits=bits if bits is not None else len(members),
        weight=weight,
        blockers=0,
        mapping=None,
        region=None,
    )


class TestWarmBoundReweighing:
    NODES = ("a", "b", "c", "d")

    def _candidates(self):
        return [
            _cand(("a",), 1.0),
            _cand(("b",), 1.0),
            _cand(("c",), 1.0),
            _cand(("d",), 1.0),
            _cand(("a", "b"), 0.5),
            _cand(("c", "d"), 0.25),
        ]

    def test_prior_selection_reweighs_to_current_objective(self):
        groups = (frozenset(("a", "b")),)
        bound = _warm_bound(self.NODES, self._candidates(), groups)
        # a+b merged at today's 0.5, c and d completed as singletons.
        assert bound == pytest.approx(0.5 + 1.0 + 1.0)

    def test_full_prior_cover_needs_no_singletons(self):
        groups = (frozenset(("a", "b")), frozenset(("c", "d")))
        bound = _warm_bound(self.NODES, self._candidates(), groups)
        assert bound == pytest.approx(0.5 + 0.25)

    def test_missing_group_disables_warm_start(self):
        groups = (frozenset(("a", "c")),)  # not among today's candidates
        assert _warm_bound(self.NODES, self._candidates(), groups) == float("inf")

    def test_overlapping_groups_disable_warm_start(self):
        groups = (frozenset(("a", "b")), frozenset(("a", "b")))
        assert _warm_bound(self.NODES, self._candidates(), groups) == float("inf")

    def test_group_outside_node_set_disables_warm_start(self):
        cands = self._candidates() + [_cand(("d", "e"), 0.1)]
        groups = (frozenset(("d", "e")),)
        assert _warm_bound(self.NODES, cands, groups) == float("inf")

    def test_no_prior_selection_disables_warm_start(self):
        assert _warm_bound(self.NODES, self._candidates(), None) == float("inf")

    def test_missing_singleton_completion_disables_warm_start(self):
        cands = [c for c in self._candidates() if c.members != ("d",)]
        groups = (frozenset(("a", "b")),)
        assert _warm_bound(self.NODES, cands, groups) == float("inf")
