"""Tests for CTS-lite and clock metrics."""

import pytest

from repro.clocktree import synthesize_clock_tree
from repro.geometry import Point
from repro.library.functional import DFF_R
from repro.netlist import compose_mbr

from tests.conftest import make_flop_row


class TestClockTree:
    def test_single_sink_design(self, lib):
        d = make_flop_row(lib, n_flops=1, name="one")
        tree = synthesize_clock_tree(d)
        assert tree.report.num_sinks == 1
        assert tree.report.num_buffers == 0
        assert tree.report.capacitance > 0  # the sink's own pin cap

    def test_sink_count_matches_registers(self, lib):
        d = make_flop_row(lib, n_flops=16, name="sixteen")
        tree = synthesize_clock_tree(d)
        assert tree.report.num_sinks == 16

    def test_fanout_limit_forces_levels(self, lib):
        d = make_flop_row(lib, n_flops=16, spacing=2.0, name="lv")
        tree = synthesize_clock_tree(d, max_fanout=4)
        # 16 sinks at fanout 4 needs at least 4 leaf buffers + upper level.
        assert tree.report.num_buffers >= 5
        assert len(tree.levels) >= 2

    def test_no_sinks_empty_report(self, lib):
        from repro.geometry import Rect
        from repro.netlist import Design

        d = Design("empty", lib, Rect(0, 0, 10, 10))
        tree = synthesize_clock_tree(d)
        assert tree.report.num_sinks == 0
        assert tree.report.capacitance == 0.0

    def test_composition_reduces_clock_tree_cost(self, lib):
        # The paper's core effect: fewer sinks and lower leaf cap after MBR
        # composition must shrink the clock tree.
        before = make_flop_row(lib, n_flops=32, spacing=2.0, name="b")
        after = make_flop_row(lib, n_flops=32, spacing=2.0, name="a")
        target = lib.register_cells(DFF_R, 8)[0]
        for g in range(4):
            group = [after.cell(f"ff{8 * g + i}") for i in range(8)]
            x = group[0].origin.x
            compose_mbr(after, group, target, Point(x, 50.0))

        t_before = synthesize_clock_tree(before, max_fanout=8)
        t_after = synthesize_clock_tree(after, max_fanout=8)
        assert t_after.report.num_sinks == 4
        assert t_after.report.capacitance < t_before.report.capacitance
        assert t_after.report.num_buffers <= t_before.report.num_buffers

    def test_report_addition(self, lib):
        d = make_flop_row(lib, n_flops=4, name="add")
        r = synthesize_clock_tree(d).report
        total = r + r
        assert total.num_sinks == 2 * r.num_sinks
        assert total.capacitance == pytest.approx(2 * r.capacitance)

    def test_coincident_sinks_converge(self, lib):
        # All registers at the same point: median split must still terminate.
        d = make_flop_row(lib, n_flops=8, spacing=0.0, name="co")
        tree = synthesize_clock_tree(d, max_fanout=2)
        assert tree.report.num_sinks == 8
        assert tree.report.num_buffers >= 4


class TestInsertionDelayAndDomains:
    def test_insertion_delays_positive_and_bounded(self, lib):
        d = make_flop_row(lib, n_flops=16, spacing=2.0, name="ins")
        tree = synthesize_clock_tree(d, max_fanout=4)
        delays = tree.insertion_delays()
        assert len(delays) == 16
        assert all(v > 0 for v in delays.values())
        assert tree.global_skew() >= 0.0
        # Every leaf passes through the same number of levels here, so the
        # skew is bounded by per-stage load differences, not level count.
        assert tree.global_skew() < max(delays.values())

    def test_single_sink_zero_insertion(self, lib):
        d = make_flop_row(lib, n_flops=1, name="ins1")
        tree = synthesize_clock_tree(d)
        assert tree.global_skew() == 0.0

    def test_per_domain_network(self, lib):
        from repro.bench import generate_design, preset
        from repro.clocktree import synthesize_clock_network

        b = generate_design(preset("D1", scale=0.1), lib)
        network = synthesize_clock_network(b.design)
        # One subtree per clock net (root + each gated domain).
        assert set(network) == {n.name for n in b.design.clock_nets()}
        total_sinks = sum(t.report.num_sinks for t in network.values())
        flat = synthesize_clock_tree(b.design)
        assert total_sinks == flat.report.num_sinks

    def test_domain_tree_only_sees_its_net(self, lib):
        from repro.bench import generate_design, preset
        from repro.clocktree import synthesize_clock_network

        b = generate_design(preset("D1", scale=0.1), lib)
        network = synthesize_clock_network(b.design)
        for net_name, tree in network.items():
            net = b.design.net(net_name)
            # Gated subtrees carry exactly the net's register/ICG sinks.
            expected = sum(
                1 for t in net.sinks
                if getattr(t, "cell", None) is not None and t.name in ("CK", "CKN")
            )
            assert tree.report.num_sinks == expected
