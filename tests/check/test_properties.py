"""Property-based correctness: differential oracles under Hypothesis.

Every fast path in the repo promises bit-identical results to a slow
reference; these properties hammer that promise over generated designs
and edit sequences instead of hand-picked fixtures:

* parallel per-subgraph ILP solving == the serial path;
* incremental (dirty-cone) STA == a fresh timer rebuild;
* ``EcoSession.recompose`` == from-scratch ``compose_design``;
* compose then decompose preserves per-bit register connectivity;
* the placement-aware ILP objective is invariant under rigid
  translation of the whole placement.

Example budgets come from the profiles in ``tests/conftest.py``
(``dev`` 6 examples by default, ``HYPOTHESIS_PROFILE=ci`` 30,
derandomized).  Strategies draw plain data (spec fields, ``(kind,
seed)`` edit pairs) so shrunk counterexamples stay small and replayable.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.check import (  # noqa: E402
    assert_clean,
    bit_connectivity_signature,
    compare_session_to_reference,
    diff_serial_vs_parallel,
    diff_timer_vs_fresh,
    scratch_compose,
)
from repro.check.fuzz import EditWorld  # noqa: E402
from repro.check.strategies import (  # noqa: E402
    apply_edit_sequence,
    build_bundle,
    design_specs,
    edit_sequences,
)
from repro.core.candidates import enumerate_candidates  # noqa: E402
from repro.core.compatibility import analyze_registers  # noqa: E402
from repro.core.composer import compose_design  # noqa: E402
from repro.core.decompose import decompose_mbr  # noqa: E402
from repro.core.graph import build_compatibility_graph  # noqa: E402
from repro.core.partition import partition_graph  # noqa: E402
from repro.core.subproblem import make_spec, solve_subproblem  # noqa: E402
from repro.core.weights import RegisterField  # noqa: E402
from repro.flow.session import EcoSession  # noqa: E402
from repro.geometry import Point, Rect  # noqa: E402
from repro.geometry.region import FeasibleRegion  # noqa: E402


def _session_world(spec) -> EditWorld:
    """A primed EcoSession over a generated bundle, ready for edits."""
    bundle = build_bundle(spec)
    session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
    session.recompose()
    return EditWorld(session)


@given(spec=design_specs())
def test_parallel_compose_matches_serial(spec):
    """Fanning subproblems over a process pool changes nothing."""

    def make_world():
        bundle = build_bundle(spec)
        return bundle.design, bundle.timer, bundle.scan_model

    assert_clean(diff_serial_vs_parallel(make_world, workers=2))


@given(spec=design_specs(), edits=edit_sequences(max_size=6))
def test_incremental_sta_matches_fresh_rebuild(spec, edits):
    """Dirty-cone retiming after arbitrary edits == cold full rebuild."""
    world = _session_world(spec)
    apply_edit_sequence(world, edits)
    assert_clean(diff_timer_vs_fresh(world.timer))


@given(spec=design_specs(), edits=edit_sequences(max_size=6))
def test_eco_recompose_matches_scratch_compose(spec, edits):
    """Incremental recompose lands exactly where a from-scratch run does."""
    world = _session_world(spec)
    apply_edit_sequence(world, edits)
    ref_result, ref_design, ref_timer = scratch_compose(world.session)
    stats = world.session.recompose()
    assert_clean(
        compare_session_to_reference(
            world.session, stats.result, ref_result, ref_design, ref_timer
        )
    )


@given(spec=design_specs())
def test_compose_decompose_round_trip(spec):
    """Composing and then decomposing preserves every bit's connectivity.

    The signature is cell-name-free (d/q/clock/control *net* names per
    connected bit, scan excluded), so it survives both directions: merge
    into MBRs, then split every multi-bit register back out.
    """
    bundle = build_bundle(spec)
    design = bundle.design
    sig0 = bit_connectivity_signature(design)
    compose_design(design, bundle.timer, bundle.scan_model)
    assert bit_connectivity_signature(design) == sig0
    wide = [
        c
        for c in design.registers()
        if c.register_cell.width_bits > 1 and not (c.dont_touch or c.fixed)
    ]
    for cell in wide:
        decompose_mbr(design, cell, bundle.scan_model)
    assert bit_connectivity_signature(design) == sig0


def _translate_world(design, infos, dx: float, dy: float) -> None:
    """Rigidly shift the placement and the cached analysis geometry."""
    design.die = Rect(
        design.die.xlo + dx,
        design.die.ylo + dy,
        design.die.xhi + dx,
        design.die.yhi + dy,
    )
    for cell in design.cells.values():
        cell.move_to(Point(cell.origin.x + dx, cell.origin.y + dy))
    for port in design.ports.values():
        port.location = Point(port.location.x + dx, port.location.y + dy)
    for info in infos.values():
        info.center_xy = (info.center_xy[0] + dx, info.center_xy[1] + dy)
        r = info.region.rect
        info.region = FeasibleRegion(
            Rect(r.xlo + dx, r.ylo + dy, r.xhi + dx, r.yhi + dy),
            pinned=info.region.pinned,
        )


@given(
    spec=design_specs(),
    # Even offsets: the serpentine window order rounds center-y to a row
    # index, and banker's rounding of half-integer centers only commutes
    # with translation for even shifts.
    dx=st.integers(min_value=1, max_value=15).map(lambda k: 2.0 * k),
    dy=st.integers(min_value=0, max_value=15).map(lambda k: 2.0 * k),
)
def test_ilp_objective_translation_invariant(spec, dx, dy):
    """The placement-aware ILP objective only sees *relative* geometry.

    Candidate weights (test-polygon blockers), candidate sets, and the
    per-subgraph ILP solutions must be identical after rigidly shifting
    the entire placement — the analysis (slacks, graph, partitions) is
    computed once and its geometry shifted, isolating the objective layer
    from last-ulp float noise in recomputed wire delays.
    """
    bundle = build_bundle(spec)
    design, scan = bundle.design, bundle.scan_model
    infos = analyze_registers(design, bundle.timer, scan)
    graph = build_compatibility_graph(infos, scan)
    parts = partition_graph(graph)
    field = RegisterField(list(infos.values()))

    before = []
    for i, part in enumerate(parts):
        cands = enumerate_candidates(part, field, design.library, scan)
        result = solve_subproblem(make_spec(i, list(part.nodes), cands))
        before.append((cands, result))

    _translate_world(design, infos, dx, dy)
    shifted_field = RegisterField(list(infos.values()))

    for i, part in enumerate(parts):
        cands, result = before[i]
        shifted = enumerate_candidates(part, shifted_field, design.library, scan)
        assert [(c.members, c.bits, c.weight, c.blockers) for c in shifted] == [
            (c.members, c.bits, c.weight, c.blockers) for c in cands
        ]
        again = solve_subproblem(make_spec(i, list(part.nodes), shifted))
        assert again.chosen == result.chosen
        assert again.objective == result.objective
