"""``emit_bench.py --validate``: the CI gate on the trajectory artifact.

CI archives ``BENCH_flow.json`` per commit and diffs it across PRs; a
corrupted file (truncated upload, hand-edited entry, schema drift) must
fail validation loudly, not poison the perf history.  These tests drive
the real CLI entry point against deliberately corrupted payloads.
"""

from __future__ import annotations

import json

import pytest

import benchmarks.emit_bench as emit_bench
from benchmarks.emit_bench import append_history, history_record, main
from repro.obs.manifest import BENCH_HISTORY_SCHEMA, BENCH_SCHEMA


def _valid_payload() -> dict:
    entry = {
        "runtime_seconds": 3.5,
        "stage_seconds": {"analyze": 0.4, "compose": 2.0},
        "registers_before": 120,
        "registers_after": 70,
        "register_reduction": 0.4167,
        "wns": -0.05,
        "tns": -0.8,
        "eco": {
            "prime_seconds": 0.5,
            "recompose_seconds": 0.1,
            "incremental": True,
            "warmstart_hits": 4,
        },
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }
    return {
        "schema": BENCH_SCHEMA,
        "generated_unix": 1754000000.0,
        "git_sha": "0123456789ab",
        "scale": 0.25,
        "designs": {"D1": entry},
    }


def _write(tmp_path, payload) -> str:
    path = tmp_path / "BENCH_flow.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


class TestValidateCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, _valid_payload())
        assert main(["--validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_missing_design_key_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        del payload["designs"]["D1"]["tns"]
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "'tns'" in out

    def test_missing_top_level_key_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        del payload["scale"]
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        assert "'scale'" in capsys.readouterr().out

    def test_wrong_typed_value_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        payload["designs"]["D1"]["runtime_seconds"] = "3.5s"
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "'runtime_seconds'" in out and "number" in out

    def test_wrong_schema_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        payload["schema"] = "repro.bench.flow/99"
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        assert "schema mismatch" in capsys.readouterr().out

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["--validate", str(tmp_path / "missing.json")])


class TestValidateHistoryCli:
    def _record(self) -> dict:
        return history_record(_valid_payload())

    def _write(self, tmp_path, records) -> str:
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        return str(path)

    def test_history_record_matches_schema(self):
        record = self._record()
        assert record["schema"] == BENCH_HISTORY_SCHEMA
        assert record["git_sha"] == "0123456789ab"
        assert record["designs"]["D1"]["compose_seconds"] == 2.0
        assert record["designs"]["D1"]["warmstart_hits"] == 4

    def test_valid_history_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [self._record(), self._record()])
        assert main(["--validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_corrupt_line_reported_with_line_number(self, tmp_path, capsys):
        path = self._write(tmp_path, [self._record()])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "line 2" in out and "not JSON" in out

    def test_bad_record_reported_with_line_number(self, tmp_path, capsys):
        bad = self._record()
        del bad["git_sha"]
        path = self._write(tmp_path, [self._record(), bad])
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "line 2" in out and "'git_sha'" in out

    def test_empty_history_rejected(self, tmp_path, capsys):
        path = self._write(tmp_path, [])
        assert main(["--validate", path]) == 1
        assert "empty history" in capsys.readouterr().out


class TestProvenanceStamps:
    def test_history_record_carries_git_dirty(self):
        payload = _valid_payload()
        payload["git_dirty"] = True
        assert history_record(payload)["git_dirty"] is True
        # Pre-PR payloads without the stamp default to clean.
        assert history_record(_valid_payload())["git_dirty"] is False

    def test_git_dirty_reflects_porcelain_output(self, monkeypatch):
        class Done:
            def __init__(self, stdout, returncode=0):
                self.stdout = stdout
                self.returncode = returncode

        monkeypatch.setattr(
            emit_bench.subprocess, "run", lambda *a, **k: Done(" M file.py\n")
        )
        assert emit_bench.git_dirty() is True
        monkeypatch.setattr(
            emit_bench.subprocess, "run", lambda *a, **k: Done("")
        )
        assert emit_bench.git_dirty() is False


class TestAppendHistoryStaleGuard:
    def test_refuses_stale_sha(self, tmp_path, monkeypatch):
        # The payload was emitted at some older commit; appending it would
        # poison the sentinel baselines with unreproducible numbers.
        monkeypatch.setattr(emit_bench, "git_sha", lambda: "fffffffffff0")
        path = tmp_path / "h.jsonl"
        with pytest.raises(SystemExit, match="stale history line"):
            append_history(_valid_payload(), str(path))
        assert not path.exists()

    def test_force_overrides_guard(self, tmp_path, monkeypatch):
        monkeypatch.setattr(emit_bench, "git_sha", lambda: "fffffffffff0")
        path = tmp_path / "h.jsonl"
        record = append_history(_valid_payload(), str(path), force=True)
        assert record["git_sha"] == "0123456789ab"
        line = json.loads(path.read_text().strip())
        assert line["git_sha"] == "0123456789ab"

    def test_matching_sha_appends(self, tmp_path, monkeypatch):
        monkeypatch.setattr(emit_bench, "git_sha", lambda: "0123456789ab")
        path = tmp_path / "h.jsonl"
        append_history(_valid_payload(), str(path))
        assert len(path.read_text().splitlines()) == 1

    def test_outside_git_checkout_appends(self, tmp_path, monkeypatch):
        monkeypatch.setattr(emit_bench, "git_sha", lambda: "unknown")
        path = tmp_path / "h.jsonl"
        append_history(_valid_payload(), str(path))
        assert len(path.read_text().splitlines()) == 1
