"""``emit_bench.py --validate``: the CI gate on the trajectory artifact.

CI archives ``BENCH_flow.json`` per commit and diffs it across PRs; a
corrupted file (truncated upload, hand-edited entry, schema drift) must
fail validation loudly, not poison the perf history.  These tests drive
the real CLI entry point against deliberately corrupted payloads.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.emit_bench import main
from repro.obs.manifest import BENCH_SCHEMA


def _valid_payload() -> dict:
    entry = {
        "runtime_seconds": 3.5,
        "stage_seconds": {"analyze": 0.4, "solve": 2.0},
        "registers_before": 120,
        "registers_after": 70,
        "register_reduction": 0.4167,
        "wns": -0.05,
        "tns": -0.8,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }
    return {
        "schema": BENCH_SCHEMA,
        "generated_unix": 1754000000.0,
        "scale": 0.25,
        "designs": {"D1": entry},
    }


def _write(tmp_path, payload) -> str:
    path = tmp_path / "BENCH_flow.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return str(path)


class TestValidateCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = _write(tmp_path, _valid_payload())
        assert main(["--validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_missing_design_key_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        del payload["designs"]["D1"]["tns"]
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "'tns'" in out

    def test_missing_top_level_key_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        del payload["scale"]
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        assert "'scale'" in capsys.readouterr().out

    def test_wrong_typed_value_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        payload["designs"]["D1"]["runtime_seconds"] = "3.5s"
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        out = capsys.readouterr().out
        assert "'runtime_seconds'" in out and "number" in out

    def test_wrong_schema_exits_nonzero(self, tmp_path, capsys):
        payload = _valid_payload()
        payload["schema"] = "repro.bench.flow/99"
        path = _write(tmp_path, payload)
        assert main(["--validate", path]) == 1
        assert "schema mismatch" in capsys.readouterr().out

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["--validate", str(tmp_path / "missing.json")])
