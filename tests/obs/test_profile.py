"""Unit tests for the sampling profiler, resource sampler, and heartbeat."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.profile import (
    Heartbeat,
    Profiler,
    ResourceSampler,
    default_profile_path,
    profile_env_enabled,
    progress_env_enabled,
)
from repro.obs.trace import SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    prev_tracer = obs.set_tracer(None)
    prev_registry = obs.set_registry(obs.MetricsRegistry())
    prev_profiler = obs.set_profiler(None)
    prev_heartbeat = obs.set_heartbeat(None)
    yield
    obs.set_tracer(prev_tracer)
    obs.set_registry(prev_registry)
    for stale in (obs.set_profiler(prev_profiler), obs.set_heartbeat(prev_heartbeat)):
        if stale is not None:
            stale.stop()


def _rec(id, parent_id, name, dur_us, start_us=0.0):
    return SpanRecord(
        id=id, parent_id=parent_id, name=name, cat="x",
        start_us=start_us, dur_us=dur_us, pid=1, tid=1,
    )


class TestProfilerConstruction:
    def test_requires_enabled_tracer(self):
        with pytest.raises(ValueError, match="enabled tracer"):
            Profiler()
        with pytest.raises(ValueError, match="enabled tracer"):
            Profiler(tracer=Tracer(enabled=False))

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Profiler(tracer=Tracer(), interval_s=0)


class TestSampling:
    def test_sample_attributes_current_stack(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer)
        with obs.span("outer"):
            with obs.span("inner"):
                prof.sample_once()
        assert prof.samples == {("outer", "inner"): 1}
        assert prof.idle_samples == 0
        assert prof.total_samples == 1

    def test_idle_sample_counted_separately(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer)
        with obs.span("warmup"):
            pass
        prof.sample_once()  # the registered stack is now empty
        assert prof.samples == {}
        assert prof.idle_samples == 1

    def test_samples_other_threads_stacks(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer)
        ready, release = threading.Event(), threading.Event()

        def work():
            with obs.span("thread.work"):
                ready.set()
                release.wait(timeout=5)

        t = threading.Thread(target=work)
        t.start()
        assert ready.wait(timeout=5)
        prof.sample_once()
        release.set()
        t.join()
        assert prof.samples.get(("thread.work",)) == 1

    def test_background_thread_collects(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer, interval_s=0.001).start()
        try:
            with obs.span("busy"):
                deadline = threading.Event()
                deadline.wait(0.05)
        finally:
            prof.stop()
        assert prof.samples.get(("busy",), 0) >= 1


class TestIngestSpans:
    def test_self_time_quantized_to_interval(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer, interval_s=0.001)  # 1000 us/sample
        records = [
            _rec(1, None, "root", dur_us=5000.0),
            _rec(2, 1, "child", dur_us=2000.0),
        ]
        prof.ingest_spans(records)
        # root self = 5000-2000 = 3000us -> 3 samples; child = 2000us -> 2.
        assert prof.samples == {("root",): 3, ("root", "child"): 2}
        assert prof.total_samples == 5

    def test_sub_interval_span_floors_at_one_sample(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer, interval_s=0.001)
        prof.ingest_spans([_rec(1, None, "tiny", dur_us=3.0)])
        assert prof.samples == {("tiny",): 1}

    def test_prefix_nests_worker_under_fanout_site(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer, interval_s=0.001)
        prof.ingest_spans(
            [_rec(1, None, "ilp.solve", dur_us=1500.0)],
            prefix=("flow.run", "stage.solve"),
        )
        assert prof.samples == {("flow.run", "stage.solve", "ilp.solve"): 2}

    def test_zero_self_time_span_skipped(self):
        tracer = obs.install_tracer()
        prof = Profiler(tracer=tracer, interval_s=0.001)
        records = [
            _rec(1, None, "wrapper", dur_us=1000.0),
            _rec(2, 1, "all_of_it", dur_us=1000.0),
        ]
        prof.ingest_spans(records)
        assert ("wrapper",) not in prof.samples
        assert prof.samples[("wrapper", "all_of_it")] == 1

    def test_empty_records_noop(self):
        prof = Profiler(tracer=obs.install_tracer())
        prof.ingest_spans([])
        assert prof.total_samples == 0


class TestFoldedOutput:
    def test_folded_format_and_write(self, tmp_path):
        prof = Profiler(tracer=obs.install_tracer())
        prof.merge_folded({("a", "b"): 3, ("a",): 1})
        text = prof.folded()
        assert "a 1\n" in text and "a;b 3\n" in text
        out = tmp_path / "p.folded"
        assert prof.write_folded(str(out)) == 2
        assert out.read_text() == text


class TestModuleLevel:
    def test_install_and_clear(self):
        obs.install_tracer()
        prof = obs.install_profiler(interval_s=0.01)
        try:
            assert obs.get_profiler() is prof
        finally:
            prof.stop()
            obs.set_profiler(None)
        assert obs.get_profiler() is None

    def test_env_helpers(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profile_env_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profile_env_enabled()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_env_enabled()
        assert default_profile_path() == "repro_profile.folded"
        monkeypatch.setenv("REPRO_PROFILE", "custom.folded")
        assert profile_env_enabled()
        assert default_profile_path() == "custom.folded"
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert progress_env_enabled()
        monkeypatch.setenv("REPRO_PROGRESS", "")
        assert not progress_env_enabled()


class TestResourceSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceSampler(interval_s=-1)

    def test_sample_updates_gauges_and_timeline(self):
        reg = obs.MetricsRegistry()
        sampler = ResourceSampler(registry=reg)
        point = sampler.sample_once()
        assert point["rss_bytes"] > 0
        assert point["t_s"] >= 0
        snap = reg.snapshot()["gauges"]
        assert snap["proc.rss_bytes"] == point["rss_bytes"]
        assert snap["proc.rss_peak_bytes"] >= point["rss_bytes"]
        assert "proc.cpu_percent" in snap
        assert sampler.timeline == [point]

    def test_as_dict_shape(self):
        sampler = ResourceSampler(registry=obs.MetricsRegistry())
        sampler.sample_once()
        sampler.sample_once()
        d = sampler.as_dict()
        assert d["samples"] == 2 and len(d["timeline"]) == 2
        assert d["peak_rss_bytes"] > 0
        assert d["interval_s"] == sampler.interval_s

    def test_start_stop_collects(self):
        sampler = ResourceSampler(
            interval_s=0.005, registry=obs.MetricsRegistry()
        ).start()
        threading.Event().wait(0.02)
        sampler.stop()
        assert len(sampler.timeline) >= 2  # initial + final at minimum


class TestHeartbeat:
    def test_stage_lifecycle_records_events_and_history(self):
        hb = Heartbeat(interval_s=60)
        hb.run_started(["a", "b"])
        hb.stage_started("a")
        hb.stage_finished("a", 1.5)
        kinds = [e["event"] for e in hb.events]
        assert kinds == ["stage_started", "stage_finished"]
        assert hb.history["a"] == 1.5
        assert hb.beat() is None  # no stage running

    def test_eta_from_history_of_later_stages(self):
        hb = Heartbeat(interval_s=60, history={"a": 1.0, "b": 2.0})
        hb.run_started(["a", "b"])
        hb.stage_started("a")
        eta = hb.eta_s()
        # remainder of a (~1.0 just after start) + history of b (2.0)
        assert eta is not None and 2.0 <= eta <= 3.5

    def test_eta_none_without_any_signal(self):
        hb = Heartbeat(interval_s=60)
        hb.run_started(["x"])
        hb.stage_started("x")
        assert hb.eta_s() is None

    def test_eta_scales_by_work_progress(self):
        hb = Heartbeat(interval_s=60)
        hb.run_started(["x"])
        hb.stage_started("x")
        hb.advance(50, 100, unit="subproblems")
        assert hb.eta_s() is not None

    def test_beat_carries_progress_and_context(self):
        hb = Heartbeat(interval_s=60)
        hb.run_started(["x"])
        hb.stage_started("x")
        hb.advance(3, 10, unit="subproblems")
        hb.update(dirty_registers=42)
        event = hb.beat()
        assert event["stage"] == "x"
        assert event["done"] == 3 and event["total"] == 10
        assert event["unit"] == "subproblems"
        assert event["dirty_registers"] == 42
        assert event["elapsed_s"] >= 0

    def test_stream_output(self):
        import io

        stream = io.StringIO()
        hb = Heartbeat(interval_s=60, stream=stream)
        hb.run_started(["x"])
        hb.stage_started("x")
        assert "[progress]" in stream.getvalue()
        assert "stage=x" in stream.getvalue()

    def test_as_dict(self):
        hb = Heartbeat(interval_s=60)
        hb.run_started(["x"])
        hb.stage_started("x")
        d = hb.as_dict()
        assert d["interval_s"] == 60
        assert len(d["events"]) == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Heartbeat(interval_s=0)


class TestPipelineIntegration:
    def test_pipeline_drives_heartbeat(self):
        from repro.engine.pipeline import Pipeline
        from repro.engine.stage import FunctionStage

        hb = Heartbeat(interval_s=60)
        obs.set_heartbeat(hb)
        stages = (
            FunctionStage("one", lambda ctx: None),
            FunctionStage("two", lambda ctx: None),
        )
        Pipeline(stages=stages).run(object())
        kinds = [(e["event"], e["stage"]) for e in hb.events]
        assert kinds == [
            ("stage_started", "one"),
            ("stage_finished", "one"),
            ("stage_started", "two"),
            ("stage_finished", "two"),
        ]
        assert set(hb.history) == {"one", "two"}

    def test_solve_subproblems_ticks_heartbeat(self):
        from tests.core.test_subproblem import _spec

        from repro.core.subproblem import solve_subproblems

        hb = Heartbeat(interval_s=60)
        obs.set_heartbeat(hb)
        hb.run_started(["solve"])
        hb.stage_started("solve")
        solve_subproblems([_spec(index=i) for i in range(3)], workers=1)
        event = hb.beat()
        assert event["done"] == 3 and event["total"] == 3
        assert event["unit"] == "subproblems"
