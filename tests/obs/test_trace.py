"""Unit tests for the hierarchical span tracer."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    prev = obs.set_tracer(None)
    yield
    obs.set_tracer(prev)


class TestModuleSpan:
    def test_disabled_returns_shared_null_span(self):
        assert obs.get_tracer() is None
        s1 = obs.span("anything", cat="x", k=1)
        s2 = obs.span("else")
        assert s1 is NULL_SPAN and s2 is NULL_SPAN
        with s1 as sp:
            sp.set(ignored=True)  # no-op, no error
        assert not obs.tracing_enabled()

    def test_disabled_tracer_also_nulls(self):
        obs.set_tracer(Tracer(enabled=False))
        assert obs.span("x") is NULL_SPAN
        assert not obs.tracing_enabled()

    def test_enabled_records(self):
        tracer = obs.install_tracer()
        with obs.span("work", cat="test", size=3):
            pass
        recs = tracer.records()
        assert len(recs) == 1
        assert recs[0].name == "work"
        assert recs[0].cat == "test"
        assert recs[0].args == {"size": 3}
        assert recs[0].dur_us >= 0


class TestNesting:
    def test_parent_links(self):
        tracer = obs.install_tracer()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner2"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].id
        assert by_name["inner2"].parent_id == by_name["outer"].id

    def test_set_updates_args_mid_span(self):
        tracer = obs.install_tracer()
        with obs.span("s", a=1) as sp:
            sp.set(b=2)
            sp.set(a=3)
        assert tracer.records()[0].args == {"a": 3, "b": 2}

    def test_threads_nest_independently(self):
        tracer = obs.install_tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with obs.span(name):
                barrier.wait(timeout=5)
                with obs.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["t1.child"].parent_id == by_name["t1"].id
        assert by_name["t2.child"].parent_id == by_name["t2"].id
        assert by_name["t1"].parent_id is None
        assert by_name["t2"].parent_id is None


class TestAdopt:
    def _worker_records(self, epoch):
        worker = Tracer(epoch=epoch)
        prev = obs.set_tracer(worker)
        try:
            with worker.span("ilp.solve", cat="ilp", idx=0):
                with worker.span("inner", cat="ilp"):
                    pass
        finally:
            obs.set_tracer(prev)
        return worker.records()

    def test_adopt_remaps_and_reparents(self):
        tracer = obs.install_tracer()
        with obs.span("stage.solve", cat="stage") as _:
            stage_id = tracer.current_span_id()
            tracer.adopt(self._worker_records(tracer.epoch))
        by_name = {r.name: r for r in tracer.records()}
        # Worker root re-parented under the caller's current span; the
        # worker-internal link is preserved through the id remap.
        assert by_name["ilp.solve"].parent_id == stage_id
        assert by_name["inner"].parent_id == by_name["ilp.solve"].id
        ids = [r.id for r in tracer.records()]
        assert len(ids) == len(set(ids))

    def test_adopt_explicit_parent_and_empty(self):
        tracer = obs.install_tracer()
        tracer.adopt([])  # no-op
        recs = [
            SpanRecord(
                id=7, parent_id=None, name="w", cat="x",
                start_us=0.0, dur_us=1.0, pid=1, tid=1,
            )
        ]
        tracer.adopt(recs, parent_id=None)
        assert tracer.records()[0].parent_id is None


class TestChromeExport:
    def test_chrome_trace_shape(self, tmp_path):
        tracer = obs.install_tracer()
        with obs.span("outer", cat="flow", n=1):
            with obs.span("inner", cat="stage"):
                pass
        data = tracer.to_chrome_trace()
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["name"] == "process_name"
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for e in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)

        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        reloaded = json.loads(path.read_text())
        assert len(reloaded["traceEvents"]) == len(events)

    def test_foreign_pid_labelled_as_worker(self):
        tracer = obs.install_tracer()
        tracer.adopt(
            [
                SpanRecord(
                    id=1, parent_id=None, name="w", cat="ilp",
                    start_us=0.0, dur_us=1.0, pid=99999, tid=1,
                )
            ]
        )
        meta = [
            e for e in tracer.to_chrome_trace()["traceEvents"] if e["ph"] == "M"
        ]
        assert any(e["args"]["name"] == "repro worker 99999" for e in meta)


class TestRollup:
    def test_rollup_totals_by_name(self):
        tracer = obs.install_tracer()
        for _ in range(3):
            with obs.span("a"):
                pass
        with obs.span("b"):
            pass
        roll = tracer.rollup()
        assert roll["a"]["count"] == 3
        assert roll["b"]["count"] == 1
        assert roll["a"]["total_s"] >= 0
