"""Unit tests for the hierarchical span tracer."""

import json
import threading

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_tracer():
    prev = obs.set_tracer(None)
    yield
    obs.set_tracer(prev)


class TestModuleSpan:
    def test_disabled_returns_shared_null_span(self):
        assert obs.get_tracer() is None
        s1 = obs.span("anything", cat="x", k=1)
        s2 = obs.span("else")
        assert s1 is NULL_SPAN and s2 is NULL_SPAN
        with s1 as sp:
            sp.set(ignored=True)  # no-op, no error
        assert not obs.tracing_enabled()

    def test_disabled_tracer_also_nulls(self):
        obs.set_tracer(Tracer(enabled=False))
        assert obs.span("x") is NULL_SPAN
        assert not obs.tracing_enabled()

    def test_enabled_records(self):
        tracer = obs.install_tracer()
        with obs.span("work", cat="test", size=3):
            pass
        recs = tracer.records()
        assert len(recs) == 1
        assert recs[0].name == "work"
        assert recs[0].cat == "test"
        assert recs[0].args == {"size": 3}
        assert recs[0].dur_us >= 0


class TestNesting:
    def test_parent_links(self):
        tracer = obs.install_tracer()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner2"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].id
        assert by_name["inner2"].parent_id == by_name["outer"].id

    def test_set_updates_args_mid_span(self):
        tracer = obs.install_tracer()
        with obs.span("s", a=1) as sp:
            sp.set(b=2)
            sp.set(a=3)
        assert tracer.records()[0].args == {"a": 3, "b": 2}

    def test_threads_nest_independently(self):
        tracer = obs.install_tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with obs.span(name):
                barrier.wait(timeout=5)
                with obs.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["t1.child"].parent_id == by_name["t1"].id
        assert by_name["t2.child"].parent_id == by_name["t2"].id
        assert by_name["t1"].parent_id is None
        assert by_name["t2"].parent_id is None


class TestAdopt:
    def _worker_records(self, epoch):
        worker = Tracer(epoch=epoch)
        prev = obs.set_tracer(worker)
        try:
            with worker.span("ilp.solve", cat="ilp", idx=0):
                with worker.span("inner", cat="ilp"):
                    pass
        finally:
            obs.set_tracer(prev)
        return worker.records()

    def test_adopt_remaps_and_reparents(self):
        tracer = obs.install_tracer()
        with obs.span("stage.solve", cat="stage") as _:
            stage_id = tracer.current_span_id()
            tracer.adopt(self._worker_records(tracer.epoch))
        by_name = {r.name: r for r in tracer.records()}
        # Worker root re-parented under the caller's current span; the
        # worker-internal link is preserved through the id remap.
        assert by_name["ilp.solve"].parent_id == stage_id
        assert by_name["inner"].parent_id == by_name["ilp.solve"].id
        ids = [r.id for r in tracer.records()]
        assert len(ids) == len(set(ids))

    def test_adopt_explicit_parent_and_empty(self):
        tracer = obs.install_tracer()
        tracer.adopt([])  # no-op
        recs = [
            SpanRecord(
                id=7, parent_id=None, name="w", cat="x",
                start_us=0.0, dur_us=1.0, pid=1, tid=1,
            )
        ]
        tracer.adopt(recs, parent_id=None)
        assert tracer.records()[0].parent_id is None

    def test_out_of_order_adoption_preserves_epoch_and_ids(self):
        # Workers complete in any order; the fan-in adopts whichever
        # finishes first.  Adopting the later-spawned worker's records
        # before the earlier one's must not disturb timestamps (all
        # workers share the parent's epoch) nor collide remapped ids.
        tracer = obs.install_tracer()

        def worker(idx, t0_us):
            rec = SpanRecord(
                id=1, parent_id=None, name=f"ilp.solve.{idx}", cat="ilp",
                start_us=t0_us, dur_us=50.0, pid=1000 + idx, tid=1,
            )
            inner = SpanRecord(
                id=2, parent_id=1, name="inner", cat="ilp",
                start_us=t0_us + 10.0, dur_us=20.0, pid=1000 + idx, tid=1,
            )
            return [rec, inner]

        batches = [worker(0, 100.0), worker(1, 200.0), worker(2, 300.0)]
        with obs.span("stage.solve", cat="stage"):
            stage_id = tracer.current_span_id()
            for records in (batches[2], batches[0], batches[1]):
                tracer.adopt(records)
        recs = tracer.records()
        ids = [r.id for r in recs]
        assert len(ids) == len(set(ids))
        by_name = {r.name: r for r in recs}
        for idx, start in ((0, 100.0), (1, 200.0), (2, 300.0)):
            root = by_name[f"ilp.solve.{idx}"]
            # Epoch-anchored timestamps survive adoption untouched.
            assert root.start_us == start
            assert root.parent_id == stage_id
        # Each worker root gets its own 'inner' child, correctly linked.
        inners = [r for r in recs if r.name == "inner"]
        assert sorted(r.parent_id for r in inners) == sorted(
            by_name[f"ilp.solve.{i}"].id for i in range(3)
        )

    def test_out_of_order_adoption_exports_valid_chrome_trace(self):
        from repro.obs.analyze import build_span_forest, validate_chrome_trace

        tracer = obs.install_tracer()
        late = [
            SpanRecord(
                id=1, parent_id=None, name="w.late", cat="ilp",
                start_us=500.0, dur_us=50.0, pid=222, tid=1,
            )
        ]
        early = [
            SpanRecord(
                id=1, parent_id=None, name="w.early", cat="ilp",
                start_us=100.0, dur_us=50.0, pid=111, tid=1,
            )
        ]
        with obs.span("stage.solve", cat="stage"):
            tracer.adopt(late)
            tracer.adopt(early)
        data = tracer.to_chrome_trace()
        assert validate_chrome_trace(data) == []
        roots = {r.name for r in build_span_forest(data)}
        # Worker spans live on their own (pid, tid) tracks, so each is a
        # root of its own tree next to the parent's stage span.
        assert roots == {"stage.solve", "w.late", "w.early"}


class TestActiveStacks:
    def test_current_stack_names(self):
        obs.install_tracer()
        tracer = obs.get_tracer()
        assert tracer.current_stack_names() == ()
        with obs.span("a"):
            with obs.span("b"):
                assert tracer.current_stack_names() == ("a", "b")
            assert tracer.current_stack_names() == ("a",)

    def test_active_stacks_sees_other_threads(self):
        tracer = obs.install_tracer()
        ready, release = threading.Event(), threading.Event()

        def work():
            with obs.span("bg"):
                ready.set()
                release.wait(timeout=5)

        t = threading.Thread(target=work)
        t.start()
        assert ready.wait(timeout=5)
        with obs.span("fg"):
            stacks = tracer.active_stacks()
        release.set()
        t.join()
        assert ("bg",) in stacks.values()
        assert ("fg",) in stacks.values()


class TestChromeExport:
    def test_chrome_trace_shape(self, tmp_path):
        tracer = obs.install_tracer()
        with obs.span("outer", cat="flow", n=1):
            with obs.span("inner", cat="stage"):
                pass
        data = tracer.to_chrome_trace()
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and meta[0]["name"] == "process_name"
        assert {e["name"] for e in spans} == {"outer", "inner"}
        for e in spans:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)

        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        reloaded = json.loads(path.read_text())
        assert len(reloaded["traceEvents"]) == len(events)

    def test_foreign_pid_labelled_as_worker(self):
        tracer = obs.install_tracer()
        tracer.adopt(
            [
                SpanRecord(
                    id=1, parent_id=None, name="w", cat="ilp",
                    start_us=0.0, dur_us=1.0, pid=99999, tid=1,
                )
            ]
        )
        meta = [
            e for e in tracer.to_chrome_trace()["traceEvents"] if e["ph"] == "M"
        ]
        assert any(e["args"]["name"] == "repro worker 99999" for e in meta)


class TestRollup:
    def test_rollup_totals_by_name(self):
        tracer = obs.install_tracer()
        for _ in range(3):
            with obs.span("a"):
                pass
        with obs.span("b"):
            pass
        roll = tracer.rollup()
        assert roll["a"]["count"] == 3
        assert roll["b"]["count"] == 1
        assert roll["a"]["total_s"] >= 0
