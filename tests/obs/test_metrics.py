"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    FRACTION_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_int_preserving(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert isinstance(c.value, int)

    def test_float_promotion(self):
        reg = MetricsRegistry()
        c = reg.counter("t")
        c.inc(0.5)
        c.inc(2)
        assert c.value == pytest.approx(2.5)

    def test_create_or_get(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.set(3)
        assert g.value == 3


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        h = Histogram("h", (1, 10, 100))
        for v in (0, 1, 5, 10, 50, 100, 101, 5000):
            h.observe(v)
        d = h.as_dict()
        # bisect_left: values equal to a bound land in that bound's slot,
        # so slot 0 holds {0, 1}, slot 1 {5, 10}, slot 2 {50, 100}, and the
        # overflow slot {101, 5000}.
        assert d["counts"] == [2, 2, 2, 2]
        assert d["count"] == 8
        assert d["sum"] == 5267
        assert d["buckets"] == [1.0, 10.0, 100.0]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", (5, 1))
        with pytest.raises(ValueError):
            Histogram("dup", (1, 1, 2))

    def test_default_bucket_sets_are_valid(self):
        Histogram("counts", COUNT_BUCKETS)
        Histogram("fracs", FRACTION_BUCKETS)


class TestRegistrySnapshotMerge:
    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(7)
        reg.histogram("h", (1, 2)).observe(1)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must not raise

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.histogram("h", (1, 10)).observe(5)
        b.histogram("h", (1, 10)).observe(50)
        b.gauge("g").set(9)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5
        assert isinstance(snap["counters"]["n"], int)
        assert snap["counters"]["only_b"] == 1
        assert snap["gauges"]["g"] == 9
        h = snap["histograms"]["h"]
        assert h["count"] == 2 and h["sum"] == 55

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1, 10)).observe(1)
        b.histogram("h", (1, 100)).observe(1)
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(b.snapshot())

    def test_merge_is_deterministic_serial_vs_parallel(self):
        # The property solve_subproblems relies on: folding N worker
        # snapshots equals counting everything in one registry.
        whole = MetricsRegistry()
        merged = MetricsRegistry()
        for chunk in ((1, 2), (3,), (4, 5, 6)):
            worker = MetricsRegistry()
            for v in chunk:
                whole.counter("solves").inc()
                whole.histogram("nodes", (2, 4)).observe(v)
                worker.counter("solves").inc()
                worker.histogram("nodes", (2, 4)).observe(v)
            merged.merge(worker.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_merge_preserves_int_counter_type(self):
        # Worker snapshots of int counters must not float-promote on the
        # way through merge — the manifest's effort counters stay ints.
        parent = MetricsRegistry()
        parent.counter("ilp.nodes").inc(10)
        for _ in range(3):
            worker = MetricsRegistry()
            worker.counter("ilp.nodes").inc(7)
            parent.merge(worker.snapshot())
        value = parent.snapshot()["counters"]["ilp.nodes"]
        assert value == 31
        assert isinstance(value, int) and not isinstance(value, bool)

    def test_merge_promotes_float_counters(self):
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        worker.counter("seconds").inc(0.25)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        value = parent.snapshot()["counters"]["seconds"]
        assert value == pytest.approx(0.5)
        assert isinstance(value, float)

    def test_merge_type_fidelity_field_by_field(self):
        # Serial counting and merged worker snapshots must agree not just
        # numerically but on the Python types of every field.
        whole, merged = MetricsRegistry(), MetricsRegistry()
        for chunk in ((1, 2), (3,)):
            worker = MetricsRegistry()
            for v in chunk:
                for reg in (whole, worker):
                    reg.counter("ints").inc(v)
                    reg.counter("floats").inc(v / 2)
                    reg.gauge("last").set(v)
            merged.merge(worker.snapshot())
        a, b = whole.snapshot(), merged.snapshot()
        assert a == b
        for section in ("counters", "gauges"):
            for name in a[section]:
                assert type(a[section][name]) is type(b[section][name]), name

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
