"""Unit tests for the bench-trajectory regression sentinel."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.sentinel import (
    STATUS_IMPROVED,
    STATUS_INSUFFICIENT,
    STATUS_OK,
    STATUS_REGRESSION,
    STATUS_SKIPPED,
    MetricPolicy,
    Point,
    Policy,
    default_policy_path,
    evaluate_history,
    evaluate_series,
    load_history,
    load_policy,
    series_from_history,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def flow_line(compose=1.0, sha="aaaaaaaaaaaa", when=1000.0, design="D1"):
    """One valid ``repro.bench.history/1`` line."""
    return {
        "schema": "repro.bench.history/1",
        "generated_unix": when,
        "git_sha": sha,
        "scale": 1.0,
        "designs": {
            design: {
                "runtime_seconds": compose * 2,
                "compose_seconds": compose,
                "registers_after": 500,
                "tns": -1.5,
                "warmstart_hits": 10,
            }
        },
    }


def mem_line(peak=1e8, sha="bbbbbbbbbbbb", when=2000.0, n=100000):
    """One valid ``repro.bench.mem/1`` line."""
    return {
        "schema": "repro.bench.mem/1",
        "generated_unix": when,
        "git_sha": sha,
        "n_registers": n,
        "baseline_registers": n // 5,
        "peak_rss_bytes": peak,
        "bytes_per_register": peak / n,
        "marginal_bytes_per_register": 1200.0,
        "budget_bytes_per_register": 1536,
        "phase_seconds": {"generate": 1.0},
    }


def _points(*values):
    return [Point(float(v), "c" * 12, 100.0 + i) for i, v in enumerate(values)]


class TestMetricPolicy:
    def test_defaults(self):
        p = MetricPolicy()
        assert p.direction == "lower_better"
        assert p.max_regress == 0.35
        assert p.window == 8

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            MetricPolicy(direction="sideways")

    def test_rejects_negative_bands(self):
        with pytest.raises(ValueError, match="non-negative"):
            MetricPolicy(max_regress=-0.1)

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError, match=">= 1"):
            MetricPolicy(window=0)


class TestPolicyOverlay:
    def test_defaults_when_no_pattern_matches(self):
        policy = Policy(patterns=(("mem.*", {"max_regress": 0.1}),))
        assert policy.for_metric("flow.D1.compose_seconds").max_regress == 0.35

    def test_matching_pattern_overrides(self):
        policy = Policy(patterns=(("mem.*", {"max_regress": 0.1}),))
        assert policy.for_metric("mem.100000.peak_rss_bytes").max_regress == 0.1

    def test_later_patterns_win(self):
        policy = Policy(
            patterns=(
                ("flow.*", {"max_regress": 0.2}),
                ("flow.D1.*", {"max_regress": 0.05}),
            )
        )
        assert policy.for_metric("flow.D1.tns").max_regress == 0.05
        assert policy.for_metric("flow.D2.tns").max_regress == 0.2


class TestLoadPolicy:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.bench.policy/1",
                    "defaults": {"max_regress": 0.5},
                    "metrics": {"flow.*.tns": {"direction": "higher_better"}},
                    "perf_smoke": {"max_regress": 0.25},
                }
            )
        )
        policy = load_policy(str(path))
        assert policy.defaults.max_regress == 0.5
        assert policy.for_metric("flow.D1.tns").direction == "higher_better"
        assert policy.perf_smoke == {"max_regress": 0.25}

    def test_rejects_unknown_defaults_key(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"defaults": {"max_regres": 0.5}}))
        with pytest.raises(ValueError, match="unknown defaults keys"):
            load_policy(str(path))

    def test_rejects_unknown_metric_key(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"metrics": {"flow.*": {"bogus": 1}}}))
        with pytest.raises(ValueError, match="unknown keys"):
            load_policy(str(path))

    def test_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError, match="schema mismatch"):
            load_policy(str(path))

    def test_shipped_policy_loads(self):
        path = default_policy_path()
        assert os.path.abspath(path) == os.path.join(REPO_ROOT, "bench_policy.json")
        policy = load_policy(path)
        # The repo policy flips direction for throughput-style metrics.
        assert policy.for_metric("flow.D1.warmstart_hits").direction == "higher_better"
        assert policy.for_metric("flow.D1.compose_seconds").direction == "lower_better"
        assert "max_regress" in policy.perf_smoke


class TestLoadHistory:
    def test_loads_mixed_schemas(self, tmp_path):
        path = tmp_path / "h.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(flow_line()) + "\n")
            fh.write("\n")  # blank lines are fine
            fh.write(json.dumps(mem_line()) + "\n")
        records = load_history(str(path))
        assert len(records) == 2

    def test_collects_every_problem_with_line_numbers(self, tmp_path):
        path = tmp_path / "h.jsonl"
        bad_flow = flow_line()
        del bad_flow["designs"]
        with open(path, "w") as fh:
            fh.write("not json\n")
            fh.write(json.dumps(bad_flow) + "\n")
        with pytest.raises(ValueError) as exc:
            load_history(str(path))
        message = str(exc.value)
        assert "line 1: not JSON" in message
        assert "line 2:" in message and "designs" in message


class TestSeries:
    def test_flow_lines_fan_out_per_design(self):
        records = [flow_line(compose=1.0), flow_line(compose=1.1, design="D2")]
        series = series_from_history(records)
        assert [p.value for p in series["flow.D1.compose_seconds"]] == [1.0]
        assert [p.value for p in series["flow.D2.compose_seconds"]] == [1.1]
        assert "flow.D1.tns" in series and "flow.D1.warmstart_hits" in series

    def test_mem_lines_fan_out_per_size(self):
        records = [mem_line(n=100000), mem_line(n=1000000)]
        series = series_from_history(records)
        assert "mem.100000.peak_rss_bytes" in series
        assert "mem.1000000.peak_rss_bytes" in series
        assert len(series["mem.100000.peak_rss_bytes"]) == 1

    def test_points_keep_log_order(self):
        records = [flow_line(compose=v) for v in (1.0, 2.0, 3.0)]
        series = series_from_history(records)
        assert [p.value for p in series["flow.D1.compose_seconds"]] == [1.0, 2.0, 3.0]


class TestEvaluateSeries:
    def test_ok_within_band(self):
        v = evaluate_series("m", _points(1.0, 1.0, 1.05), MetricPolicy())
        assert v.status == STATUS_OK
        assert v.baseline == 1.0
        assert v.prior_samples == 2

    def test_regression_lower_better(self):
        v = evaluate_series("m", _points(1.0, 1.0, 3.0), MetricPolicy())
        assert v.status == STATUS_REGRESSION
        assert v.delta == pytest.approx(2.0)

    def test_improvement_flagged(self):
        v = evaluate_series("m", _points(1.0, 1.0, 0.3), MetricPolicy())
        assert v.status == STATUS_IMPROVED

    def test_higher_better_flips_direction(self):
        policy = MetricPolicy(direction="higher_better")
        assert evaluate_series("m", _points(10, 10, 3), policy).status == (
            STATUS_REGRESSION
        )
        assert evaluate_series("m", _points(10, 10, 30), policy).status == (
            STATUS_IMPROVED
        )

    def test_ignore_direction_skips(self):
        policy = MetricPolicy(direction="ignore")
        v = evaluate_series("m", _points(1.0, 99.0), policy)
        assert v.status == STATUS_SKIPPED

    def test_insufficient_history(self):
        v = evaluate_series("m", _points(1.0), MetricPolicy(min_samples=1))
        assert v.status == STATUS_INSUFFICIENT
        assert v.prior_samples == 0

    def test_flat_history_uses_relative_band_floor(self):
        # MAD = 0, so the band is max_regress * |median| — a +20% move on
        # a 35% floor stays ok; a +50% move regresses.
        policy = MetricPolicy(max_regress=0.35, mad_scale=4.0)
        assert evaluate_series("m", _points(2.0, 2.0, 2.0, 2.4), policy).status == (
            STATUS_OK
        )
        assert evaluate_series("m", _points(2.0, 2.0, 2.0, 3.0), policy).status == (
            STATUS_REGRESSION
        )

    def test_noisy_history_widens_band(self):
        # Scatter 1..9 (MAD=2, median=5): +80% on the 35% floor would
        # regress, but 4*MAD=8 covers it.
        policy = MetricPolicy(max_regress=0.35, mad_scale=4.0)
        v = evaluate_series("m", _points(1, 3, 5, 7, 9, 9.0), policy)
        assert v.status == STATUS_OK
        assert v.band == pytest.approx(8.0)

    def test_window_limits_baseline(self):
        # Old cheap points age out of a window of 2; baseline is the
        # recent expensive regime, so the latest point is unremarkable.
        policy = MetricPolicy(window=2)
        v = evaluate_series("m", _points(1.0, 1.0, 10.0, 10.0, 10.0), policy)
        assert v.status == STATUS_OK
        assert v.baseline == 10.0


class TestEvaluateHistory:
    def test_stable_history_is_ok(self):
        records = [flow_line(compose=1.0, when=float(i)) for i in range(4)]
        report = evaluate_history(records, Policy())
        assert report.ok
        assert report.history_lines == 4
        assert all(v.status == STATUS_OK for v in report.verdicts)

    def test_injected_3x_compose_regression_fails(self):
        # The acceptance scenario: a 3x compose_seconds spike on the
        # latest line must flip the report to not-ok.
        records = [flow_line(compose=1.0, when=float(i)) for i in range(4)]
        records.append(flow_line(compose=3.0, sha="dddddddddddd", when=99.0))
        report = evaluate_history(records, Policy())
        assert not report.ok
        names = [v.name for v in report.regressions]
        assert "flow.D1.compose_seconds" in names
        assert "flow.D1.runtime_seconds" in names

    def test_real_repo_history_is_clean(self):
        records = load_history(os.path.join(REPO_ROOT, "BENCH_history.jsonl"))
        policy = load_policy(default_policy_path())
        report = evaluate_history(records, policy)
        assert report.ok, report.format()

    def test_report_format_and_dict(self):
        records = [flow_line(compose=1.0, when=float(i)) for i in range(3)]
        records.append(flow_line(compose=5.0, when=99.0))
        report = evaluate_history(records, Policy())
        text = report.format()
        assert "REGRESSION" in text.splitlines()[-1]
        # Regressions sort to the top of the table.
        assert "regression" in text.splitlines()[2]
        data = report.to_dict()
        assert data["schema"] == "repro.bench.report/1"
        assert data["ok"] is False
        assert data["regressions"] >= 1
        assert {m["name"] for m in data["metrics"]} >= {
            "flow.D1.compose_seconds",
            "flow.D1.tns",
        }

    def test_ok_report_format(self):
        report = evaluate_history([flow_line()], Policy())
        assert report.format().splitlines()[-1] == "OK — no regressions"
