"""Unit tests for trace analytics: critical paths and manifest diffs."""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import (
    build_span_forest,
    critical_path,
    diff_manifests,
    format_critical_path,
    format_manifest_diff,
    load_chrome_trace,
    load_manifest,
    validate_chrome_trace,
)


def _x(name, ts, dur, pid=1, tid=1):
    return {"ph": "X", "name": name, "ts": ts, "dur": dur, "pid": pid, "tid": tid}


def _trace(*events):
    return {"traceEvents": list(events)}


class TestValidateChromeTrace:
    def test_valid_trace(self):
        data = _trace(
            _x("a", 0, 100),
            {"ph": "M", "name": "process_name", "pid": 1},
            {"ph": "C", "name": "ctr", "ts": 5, "pid": 1, "tid": 1},
        )
        assert validate_chrome_trace(data) == []

    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) == ["trace must be an object, got list"]

    def test_rejects_missing_events_list(self):
        assert validate_chrome_trace({"traceEvents": "nope"}) == [
            "'traceEvents' must be a list"
        ]

    def test_flags_bad_complete_events(self):
        data = _trace(
            {"ph": "X", "name": 7, "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            {"ph": "X", "name": "a", "ts": "zero", "dur": -1, "pid": 1},
            {"ph": "?", "name": "b"},
        )
        problems = validate_chrome_trace(data)
        assert any("'name' must be a string" in p for p in problems)
        assert any("'ts' must be a number" in p for p in problems)
        assert any("'dur' must be non-negative" in p for p in problems)
        assert any("missing 'tid'" in p for p in problems)
        assert any("unknown phase '?'" in p for p in problems)

    def test_bool_is_not_a_number(self):
        data = _trace({"ph": "X", "name": "a", "ts": True, "dur": 1, "pid": 1, "tid": 1})
        assert any("'ts' must be a number" in p for p in validate_chrome_trace(data))

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(_trace(_x("a", 0, 10))))
        assert load_chrome_trace(str(path))["traceEvents"][0]["name"] == "a"

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(ValueError, match="not a usable Chrome trace"):
            load_chrome_trace(str(path))


class TestSpanForest:
    def test_containment_nesting(self):
        data = _trace(_x("root", 0, 100), _x("a", 10, 30), _x("b", 50, 40))
        roots = build_span_forest(data)
        assert [r.name for r in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["a", "b"]
        assert roots[0].self_us == 30.0  # 100 - 30 - 40

    def test_same_start_longer_span_encloses(self):
        data = _trace(_x("inner", 0, 50), _x("outer", 0, 100))
        roots = build_span_forest(data)
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]

    def test_separate_tracks_get_separate_roots(self):
        data = _trace(_x("parent", 0, 100, pid=1), _x("worker", 10, 20, pid=2))
        roots = build_span_forest(data)
        assert sorted(r.name for r in roots) == ["parent", "worker"]

    def test_sequential_siblings_both_root(self):
        data = _trace(_x("first", 0, 10), _x("second", 20, 10))
        assert [r.name for r in build_span_forest(data)] == ["first", "second"]


class TestCriticalPath:
    def test_maximizes_self_time_not_duration(self):
        # A: 0-100, children B (10-40) and C (50-90); C holds D (55-85).
        # Self times: A=30, B=30, C=10, D=30.  Chain A->C->D = 70 beats
        # A->B = 60 even though B alone outweighs C alone.
        data = _trace(
            _x("A", 0, 100),
            _x("B", 10, 30),
            _x("C", 50, 40),
            _x("D", 55, 30),
        )
        steps = critical_path(data)
        assert [s.name for s in steps] == ["A", "C", "D"]
        assert sum(s.self_us for s in steps) == 70.0

    def test_picks_best_tree_of_forest(self):
        data = _trace(_x("small", 0, 10), _x("big", 100, 500, pid=2))
        assert [s.name for s in critical_path(data)] == ["big"]

    def test_empty_trace(self):
        assert critical_path(_trace()) == []
        assert "empty trace" in format_critical_path([])

    def test_format_table(self):
        text = format_critical_path(critical_path(_trace(_x("root", 0, 100))))
        assert "critical path: 1 spans" in text
        assert "root" in text and "100.0%" in text


def _manifest(spans=None, counters=None, flow=None):
    """A minimal manifest-shaped dict for diffing (not schema-validated)."""
    return {
        "spans": {
            name: {"count": 1, "total_s": total}
            for name, total in (spans or {}).items()
        },
        "metrics": {"counters": dict(counters or {}), "gauges": {}},
        "flow": dict(flow or {}),
    }


class TestDiffManifests:
    def test_span_and_counter_deltas(self):
        a = _manifest(
            spans={"stage.compose": 2.0},
            counters={"ilp.nodes": 100},
            flow={"tns": -5.0},
        )
        b = _manifest(
            spans={"stage.compose": 3.0},
            counters={"ilp.nodes": 150},
            flow={"tns": -2.0},
        )
        diff = diff_manifests(a, b)
        (span_row,) = diff["spans"]
        assert span_row == {
            "name": "stage.compose",
            "a": 2.0,
            "b": 3.0,
            "delta": 1.0,
            "ratio": 1.5,
        }
        (counter_row,) = diff["counters"]
        assert counter_row["delta"] == 50.0
        (flow_row,) = diff["flow"]
        assert flow_row["delta"] == 3.0

    def test_one_sided_entries_have_no_delta(self):
        a = _manifest(spans={"stage.old": 1.0})
        b = _manifest(spans={"stage.new": 1.0})
        rows = {r["name"]: r for r in diff_manifests(a, b)["spans"]}
        assert rows["stage.old"]["b"] is None and "delta" not in rows["stage.old"]
        assert rows["stage.new"]["a"] is None and "delta" not in rows["stage.new"]

    def test_non_numeric_flow_entries_skipped(self):
        a = _manifest(flow={"preset": "D1", "tns": -1.0})
        b = _manifest(flow={"preset": "D2", "tns": -1.0})
        names = [r["name"] for r in diff_manifests(a, b)["flow"]]
        assert names == ["tns"]


class TestFormatManifestDiff:
    def test_sorted_by_impact_and_capped(self):
        spans_a = {f"stage.s{i}": 1.0 for i in range(5)}
        spans_b = {f"stage.s{i}": 1.0 + (i + 1) * 0.1 for i in range(5)}
        diff = diff_manifests(_manifest(spans=spans_a), _manifest(spans=spans_b))
        text = format_manifest_diff(diff, top=2)
        assert "spans (5 changed):" in text
        # Largest delta first; the cap is announced, never silent.
        assert text.index("stage.s4") < text.index("stage.s3")
        assert "... 3 more (use --top to widen)" in text
        assert "stage.s0" not in text

    def test_no_changes(self):
        diff = diff_manifests(_manifest(spans={"a": 1.0}), _manifest(spans={"a": 1.0}))
        assert format_manifest_diff(diff) == (
            "no differences in comparable numeric entries"
        )


class TestLoadManifest:
    def test_round_trips_a_real_manifest(self, tmp_path):
        from repro import obs
        from repro.obs.manifest import build_manifest

        prev_tracer = obs.set_tracer(None)
        prev_registry = obs.set_registry(obs.MetricsRegistry())
        try:
            tracer = obs.install_tracer()
            with obs.span("stage.work"):
                pass
            manifest = build_manifest(
                design={"name": "unit"},
                config={"k": 1},
                flow={"tns": -1.0},
                tracer=tracer,
            )
        finally:
            obs.set_tracer(prev_tracer)
            obs.set_registry(prev_registry)
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest))
        loaded = load_manifest(str(path))
        assert "stage.work" in loaded["spans"]

    def test_rejects_invalid(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": "repro.obs.manifest/1"}))
        with pytest.raises(ValueError, match="invalid manifest"):
            load_manifest(str(path))
