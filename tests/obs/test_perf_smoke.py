"""``perf_smoke.py``: the CI gate on stage-time regressions.

The gate compares a fresh bench emit against the committed baseline and
must (a) pass within the band, (b) fail loudly past it, and (c) refuse
to compare snapshots that do not validate — a corrupted baseline must
not silently wave a regression through.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.perf_smoke import (
    FALLBACK_MAX_REGRESS,
    compare,
    load_bench,
    main,
    policy_max_regress,
)
from repro.obs.manifest import BENCH_SCHEMA


def _payload(compose: float, sha: str = "abc123abc123") -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "generated_unix": 1754000000.0,
        "git_sha": sha,
        "scale": 0.25,
        "designs": {
            "D1": {
                "runtime_seconds": compose + 0.1,
                "stage_seconds": {"analyze": 0.05, "compose": compose},
                "registers_before": 120,
                "registers_after": 70,
                "register_reduction": 0.4167,
                "wns": -0.05,
                "tns": -0.8,
                "eco": {
                    "prime_seconds": 0.5,
                    "recompose_seconds": 0.1,
                    "incremental": True,
                    "warmstart_hits": 4,
                },
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }
        },
    }


def _write(tmp_path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload) + "\n")
    return str(path)


class TestCompare:
    def test_within_band_passes(self):
        code, msg = compare(_payload(1.0), _payload(1.2), "D1", "compose", 0.25)
        assert code == 0
        assert "ok" in msg and "ratio 1.200" in msg

    def test_past_band_fails(self):
        code, msg = compare(_payload(1.0), _payload(1.3), "D1", "compose", 0.25)
        assert code == 1
        assert "REGRESSION" in msg

    def test_speedup_passes(self):
        code, _ = compare(_payload(1.0), _payload(0.5), "D1", "compose", 0.25)
        assert code == 0

    def test_zero_baseline_is_not_gated(self):
        code, msg = compare(_payload(0.0), _payload(9.9), "D1", "compose", 0.25)
        assert code == 0
        assert "nothing to gate" in msg

    def test_missing_design_errors(self):
        with pytest.raises(SystemExit, match="design 'D9'"):
            compare(_payload(1.0), _payload(1.0), "D9", "compose", 0.25)

    def test_missing_stage_errors(self):
        with pytest.raises(SystemExit, match="stage 'route'"):
            compare(_payload(1.0), _payload(1.0), "D1", "route", 0.25)


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload(1.0, "aaa111aaa111"))
        good = _write(tmp_path, "good.json", _payload(1.1, "bbb222bbb222"))
        bad = _write(tmp_path, "bad.json", _payload(2.0, "ccc333ccc333"))
        assert main([base, good]) == 0
        assert "aaa111aaa111" in capsys.readouterr().out
        assert main([base, bad]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_band(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(1.0))
        cand = _write(tmp_path, "cand.json", _payload(1.4))
        assert main([base, cand, "--max-regress", "0.5"]) == 0
        assert main([base, cand, "--max-regress", "0.1"]) == 1

    def test_invalid_snapshot_refused(self, tmp_path):
        broken = _payload(1.0)
        del broken["git_sha"]
        base = _write(tmp_path, "base.json", broken)
        cand = _write(tmp_path, "cand.json", _payload(1.0))
        with pytest.raises(SystemExit, match="INVALID"):
            load_bench(base)
        with pytest.raises(SystemExit, match="INVALID"):
            main([base, cand])


class TestPolicyBand:
    def _policy(self, tmp_path, perf_smoke) -> str:
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"perf_smoke": perf_smoke}))
        return str(path)

    def test_band_read_from_policy_file(self, tmp_path):
        path = self._policy(tmp_path, {"max_regress": 0.1})
        assert policy_max_regress(path) == 0.1

    def test_missing_policy_falls_back(self, tmp_path):
        assert policy_max_regress(str(tmp_path / "nope.json")) == (
            FALLBACK_MAX_REGRESS
        )

    def test_policy_without_block_falls_back(self, tmp_path):
        path = self._policy(tmp_path, {})
        assert policy_max_regress(path) == FALLBACK_MAX_REGRESS

    def test_bad_band_value_refused(self, tmp_path):
        for bogus in ("wide", -0.5, True):
            path = self._policy(tmp_path, {"max_regress": bogus})
            with pytest.raises(SystemExit, match="non-negative number"):
                policy_max_regress(path)

    def test_shipped_policy_drives_default_band(self):
        # The repo's checked-in policy owns the CI band.
        assert policy_max_regress() == 0.25

    def test_cli_uses_policy_band(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(1.0))
        cand = _write(tmp_path, "cand.json", _payload(1.4))
        loose = self._policy(tmp_path, {"max_regress": 0.5})
        assert main([base, cand, "--policy", loose]) == 0
        tight = self._policy(tmp_path, {"max_regress": 0.1})
        assert main([base, cand, "--policy", tight]) == 1

    def test_explicit_flag_overrides_policy(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(1.0))
        cand = _write(tmp_path, "cand.json", _payload(1.4))
        tight = self._policy(tmp_path, {"max_regress": 0.1})
        assert main([base, cand, "--policy", tight, "--max-regress", "0.5"]) == 0
