"""``perf_smoke.py``: the CI gate on stage-time regressions.

The gate compares a fresh bench emit against the committed baseline and
must (a) pass within the band, (b) fail loudly past it, and (c) refuse
to compare snapshots that do not validate — a corrupted baseline must
not silently wave a regression through.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.perf_smoke import compare, load_bench, main
from repro.obs.manifest import BENCH_SCHEMA


def _payload(compose: float, sha: str = "abc123abc123") -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "generated_unix": 1754000000.0,
        "git_sha": sha,
        "scale": 0.25,
        "designs": {
            "D1": {
                "runtime_seconds": compose + 0.1,
                "stage_seconds": {"analyze": 0.05, "compose": compose},
                "registers_before": 120,
                "registers_after": 70,
                "register_reduction": 0.4167,
                "wns": -0.05,
                "tns": -0.8,
                "eco": {
                    "prime_seconds": 0.5,
                    "recompose_seconds": 0.1,
                    "incremental": True,
                    "warmstart_hits": 4,
                },
                "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            }
        },
    }


def _write(tmp_path, name: str, payload: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload) + "\n")
    return str(path)


class TestCompare:
    def test_within_band_passes(self):
        code, msg = compare(_payload(1.0), _payload(1.2), "D1", "compose", 0.25)
        assert code == 0
        assert "ok" in msg and "ratio 1.200" in msg

    def test_past_band_fails(self):
        code, msg = compare(_payload(1.0), _payload(1.3), "D1", "compose", 0.25)
        assert code == 1
        assert "REGRESSION" in msg

    def test_speedup_passes(self):
        code, _ = compare(_payload(1.0), _payload(0.5), "D1", "compose", 0.25)
        assert code == 0

    def test_zero_baseline_is_not_gated(self):
        code, msg = compare(_payload(0.0), _payload(9.9), "D1", "compose", 0.25)
        assert code == 0
        assert "nothing to gate" in msg

    def test_missing_design_errors(self):
        with pytest.raises(SystemExit, match="design 'D9'"):
            compare(_payload(1.0), _payload(1.0), "D9", "compose", 0.25)

    def test_missing_stage_errors(self):
        with pytest.raises(SystemExit, match="stage 'route'"):
            compare(_payload(1.0), _payload(1.0), "D1", "route", 0.25)


class TestCli:
    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _payload(1.0, "aaa111aaa111"))
        good = _write(tmp_path, "good.json", _payload(1.1, "bbb222bbb222"))
        bad = _write(tmp_path, "bad.json", _payload(2.0, "ccc333ccc333"))
        assert main([base, good]) == 0
        assert "aaa111aaa111" in capsys.readouterr().out
        assert main([base, bad]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_band(self, tmp_path):
        base = _write(tmp_path, "base.json", _payload(1.0))
        cand = _write(tmp_path, "cand.json", _payload(1.4))
        assert main([base, cand, "--max-regress", "0.5"]) == 0
        assert main([base, cand, "--max-regress", "0.1"]) == 1

    def test_invalid_snapshot_refused(self, tmp_path):
        broken = _payload(1.0)
        del broken["git_sha"]
        base = _write(tmp_path, "base.json", broken)
        cand = _write(tmp_path, "cand.json", _payload(1.0))
        with pytest.raises(SystemExit, match="INVALID"):
            load_bench(base)
        with pytest.raises(SystemExit, match="INVALID"):
            main([base, cand])
