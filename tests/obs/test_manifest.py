"""Unit tests for the run-manifest writer and schema validation."""

import json
from dataclasses import dataclass

import pytest

from repro import obs
from repro.obs.manifest import (
    BENCH_DESIGN_KEYS,
    BENCH_SCHEMA,
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA,
    build_manifest,
    validate_bench,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@dataclass
class _Cfg:
    passes: int = 2
    solver: str = "exact"


class TestBuildManifest:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("ilp.setpart.solves").inc(4)
        tracer = Tracer()
        with tracer.span("stage.solve", cat="stage"):
            pass
        return build_manifest(
            {"name": "D1"},
            config=_Cfg(),
            flow={"runtime_seconds": 1.5},
            registry=reg,
            tracer=tracer,
        )

    def test_has_required_keys_and_validates(self):
        manifest = self._populated()
        assert set(MANIFEST_REQUIRED_KEYS) <= set(manifest)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert validate_manifest(manifest) == []

    def test_sections_carry_the_payloads(self):
        manifest = self._populated()
        assert manifest["design"] == {"name": "D1"}
        assert manifest["config"]["passes"] == 2
        assert manifest["metrics"]["counters"]["ilp.setpart.solves"] == 4
        assert manifest["spans"]["stage.solve"]["count"] == 1
        assert manifest["flow"]["runtime_seconds"] == 1.5
        json.dumps(manifest)  # JSON-ready

    def test_defaults_to_process_registry(self):
        obs.get_registry().counter("manifest.test.marker").inc()
        manifest = build_manifest({"name": "x"}, tracer=Tracer())
        assert "manifest.test.marker" in manifest["metrics"]["counters"]


class TestValidateManifest:
    def test_reports_missing_keys(self):
        errors = validate_manifest({"schema": MANIFEST_SCHEMA})
        missing = {k for k in MANIFEST_REQUIRED_KEYS if k != "schema"}
        assert len(errors) >= len(missing)
        assert any("metrics" in e for e in errors)

    def test_rejects_wrong_schema_and_non_dict(self):
        assert validate_manifest([]) != []
        errors = validate_manifest({"schema": "other/9"})
        assert any("schema mismatch" in e for e in errors)


class TestWriteManifest:
    def test_writes_valid_and_refuses_invalid(self, tmp_path):
        manifest = build_manifest(
            {"name": "D1"}, registry=MetricsRegistry(), tracer=Tracer()
        )
        path = tmp_path / "m.json"
        write_manifest(str(path), manifest)
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA
        with pytest.raises(ValueError, match="invalid manifest"):
            write_manifest(str(tmp_path / "bad.json"), {"schema": MANIFEST_SCHEMA})
        assert not (tmp_path / "bad.json").exists()


class TestValidateBench:
    def _entry(self):
        return {k: 0 for k in BENCH_DESIGN_KEYS}

    def test_good_payload(self):
        data = {
            "schema": BENCH_SCHEMA,
            "generated_unix": 0,
            "scale": 0.25,
            "designs": {"D1": self._entry()},
        }
        assert validate_bench(data) == []

    def test_missing_design_key_reported_by_name(self):
        entry = self._entry()
        del entry["wns"]
        data = {
            "schema": BENCH_SCHEMA,
            "generated_unix": 0,
            "scale": 0.25,
            "designs": {"D1": entry},
        }
        errors = validate_bench(data)
        assert any("'wns'" in e and "D1" in e for e in errors)

    def test_empty_designs_rejected(self):
        data = {"schema": BENCH_SCHEMA, "generated_unix": 0, "scale": 1.0, "designs": {}}
        assert any("non-empty" in e for e in validate_bench(data))
