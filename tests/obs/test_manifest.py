"""Unit tests for the run-manifest writer and schema validation."""

import json
from dataclasses import dataclass

import pytest

from repro import obs
from repro.obs.manifest import (
    BENCH_DESIGN_KEYS,
    BENCH_HISTORY_SCHEMA,
    BENCH_SCHEMA,
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA,
    build_manifest,
    validate_bench,
    validate_bench_history,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@dataclass
class _Cfg:
    passes: int = 2
    solver: str = "exact"


class TestBuildManifest:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("ilp.setpart.solves").inc(4)
        tracer = Tracer()
        with tracer.span("stage.solve", cat="stage"):
            pass
        return build_manifest(
            {"name": "D1"},
            config=_Cfg(),
            flow={"runtime_seconds": 1.5},
            registry=reg,
            tracer=tracer,
        )

    def test_has_required_keys_and_validates(self):
        manifest = self._populated()
        assert set(MANIFEST_REQUIRED_KEYS) <= set(manifest)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert validate_manifest(manifest) == []

    def test_sections_carry_the_payloads(self):
        manifest = self._populated()
        assert manifest["design"] == {"name": "D1"}
        assert manifest["config"]["passes"] == 2
        assert manifest["metrics"]["counters"]["ilp.setpart.solves"] == 4
        assert manifest["spans"]["stage.solve"]["count"] == 1
        assert manifest["flow"]["runtime_seconds"] == 1.5
        json.dumps(manifest)  # JSON-ready

    def test_defaults_to_process_registry(self):
        obs.get_registry().counter("manifest.test.marker").inc()
        manifest = build_manifest({"name": "x"}, tracer=Tracer())
        assert "manifest.test.marker" in manifest["metrics"]["counters"]


class TestValidateManifest:
    def test_reports_missing_keys(self):
        errors = validate_manifest({"schema": MANIFEST_SCHEMA})
        missing = {k for k in MANIFEST_REQUIRED_KEYS if k != "schema"}
        assert len(errors) >= len(missing)
        assert any("metrics" in e for e in errors)

    def test_rejects_wrong_schema_and_non_dict(self):
        assert validate_manifest([]) != []
        errors = validate_manifest({"schema": "other/9"})
        assert any("schema mismatch" in e for e in errors)


class TestWriteManifest:
    def test_writes_valid_and_refuses_invalid(self, tmp_path):
        manifest = build_manifest(
            {"name": "D1"}, registry=MetricsRegistry(), tracer=Tracer()
        )
        path = tmp_path / "m.json"
        write_manifest(str(path), manifest)
        assert json.loads(path.read_text())["schema"] == MANIFEST_SCHEMA
        with pytest.raises(ValueError, match="invalid manifest"):
            write_manifest(str(tmp_path / "bad.json"), {"schema": MANIFEST_SCHEMA})
        assert not (tmp_path / "bad.json").exists()


class TestManifestRoundTrip:
    def test_write_then_load_is_lossless_and_valid(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("compose.components_reused").inc(3)
        reg.gauge("check.violations_total").set(0.0)
        tracer = Tracer()
        with tracer.span("stage.solve", cat="stage"):
            with tracer.span("ilp.solve", cat="ilp"):
                pass
        manifest = build_manifest(
            {"name": "D1", "scale": 0.25},
            config=_Cfg(passes=3),
            flow={"runtime_seconds": 2.25, "wns": -0.125},
            registry=reg,
            tracer=tracer,
        )
        path = tmp_path / "manifest.json"
        write_manifest(str(path), manifest)

        loaded = json.loads(path.read_text())
        assert validate_manifest(loaded) == []
        # JSON round-trip must not lose or reshape anything: every value
        # the builder put in is a plain JSON value already.
        assert loaded == manifest

    def test_round_trip_survives_a_second_write(self, tmp_path):
        manifest = build_manifest(
            {"name": "x"}, registry=MetricsRegistry(), tracer=Tracer()
        )
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_manifest(str(first), manifest)
        write_manifest(str(second), json.loads(first.read_text()))
        assert json.loads(second.read_text()) == json.loads(first.read_text())


class TestValidateBench:
    def _entry(self):
        return {
            "runtime_seconds": 1.25,
            "stage_seconds": {"solve": 0.5},
            "registers_before": 100,
            "registers_after": 60,
            "register_reduction": 0.4,
            "wns": -0.1,
            "tns": -1.0,
            "eco": {"warmstart_hits": 3, "recompose_seconds": 0.1},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }

    def _payload(self, **overrides):
        data = {
            "schema": BENCH_SCHEMA,
            "generated_unix": 0,
            "git_sha": "abc123",
            "scale": 0.25,
            "designs": {"D1": self._entry()},
        }
        data.update(overrides)
        return data

    def test_good_payload(self):
        assert validate_bench(self._payload()) == []

    def test_missing_design_key_reported_by_name(self):
        entry = self._entry()
        del entry["wns"]
        errors = validate_bench(self._payload(designs={"D1": entry}))
        assert any("'wns'" in e and "D1" in e for e in errors)

    def test_missing_eco_block_rejected(self):
        entry = self._entry()
        del entry["eco"]
        errors = validate_bench(self._payload(designs={"D1": entry}))
        assert any("'eco'" in e and "D1" in e for e in errors)

    def test_missing_git_sha_rejected(self):
        data = self._payload()
        del data["git_sha"]
        assert any("'git_sha'" in e for e in validate_bench(data))

    def test_old_schema_version_rejected(self):
        errors = validate_bench(self._payload(schema="repro.bench.flow/1"))
        assert any("schema mismatch" in e for e in errors)

    def test_empty_designs_rejected(self):
        errors = validate_bench(self._payload(designs={}))
        assert any("non-empty" in e for e in errors)

    def test_wrong_typed_design_values_rejected(self):
        entry = self._entry()
        entry["runtime_seconds"] = "1.25"  # stringified number
        entry["registers_before"] = 99.5  # float where an int belongs
        entry["metrics"] = []  # list where the snapshot object belongs
        errors = validate_bench(self._payload(designs={"D1": entry}))
        assert any("'runtime_seconds'" in e and "number" in e for e in errors)
        assert any("'registers_before'" in e and "integer" in e for e in errors)
        assert any("'metrics'" in e and "object" in e for e in errors)

    def test_wrong_typed_top_level_values_rejected(self):
        errors = validate_bench(
            self._payload(generated_unix="now", scale="quarter")
        )
        assert any("'generated_unix'" in e for e in errors)
        assert any("'scale'" in e for e in errors)

    def test_non_object_design_entry_rejected(self):
        errors = validate_bench(self._payload(designs={"D1": [1, 2, 3]}))
        assert any("must be an object" in e for e in errors)


class TestValidateBenchHistory:
    def _record(self, **overrides):
        record = {
            "schema": BENCH_HISTORY_SCHEMA,
            "generated_unix": 0,
            "git_sha": "abc123",
            "scale": 0.25,
            "designs": {
                "D1": {
                    "runtime_seconds": 0.5,
                    "compose_seconds": 0.4,
                    "registers_after": 97,
                    "tns": -4.7,
                    "warmstart_hits": 5,
                }
            },
        }
        record.update(overrides)
        return record

    def test_good_record(self):
        assert validate_bench_history(self._record()) == []

    def test_missing_keys_reported(self):
        record = self._record()
        del record["git_sha"]
        assert any("'git_sha'" in e for e in validate_bench_history(record))

    def test_schema_mismatch_reported(self):
        errors = validate_bench_history(self._record(schema="repro.bench.flow/2"))
        assert any("schema mismatch" in e for e in errors)

    def test_non_numeric_design_values_rejected(self):
        record = self._record()
        record["designs"]["D1"]["warmstart_hits"] = "many"
        errors = validate_bench_history(record)
        assert any("'warmstart_hits'" in e and "number" in e for e in errors)

    def test_missing_design_summary_key_rejected(self):
        record = self._record()
        del record["designs"]["D1"]["compose_seconds"]
        errors = validate_bench_history(record)
        assert any("'compose_seconds'" in e and "D1" in e for e in errors)

    def test_non_object_record_rejected(self):
        assert validate_bench_history([1, 2]) != []
