"""Unit tests for the structured run logs."""

import io
import json
import logging

import pytest

from repro import obs
from repro.obs import logs as obs_logs


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    root = logging.getLogger("repro")
    for h in list(root.handlers):
        root.removeHandler(h)
    obs_logs._configured = False
    obs_logs.configure_logging(force=True)


def _capture_handler(formatter):
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(formatter)
    return stream, handler


class TestJsonLines:
    def test_record_is_one_json_object(self):
        obs_logs.configure_logging(json_mode=True, force=True)
        root = logging.getLogger("repro")
        stream, handler = _capture_handler(obs_logs.JsonLinesFormatter())
        root.addHandler(handler)
        obs.log("eco.recompose", dirty=12, composed=3)
        line = stream.getvalue().strip()
        payload = json.loads(line)
        assert payload["event"] == "eco.recompose"
        assert payload["dirty"] == 12 and payload["composed"] == 3
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro"
        assert isinstance(payload["ts"], float)

    def test_sub_logger_name_is_namespaced(self):
        lg = obs.get_logger("ilp")
        assert lg.name == "repro.ilp"
        assert obs.get_logger("repro.ilp").name == "repro.ilp"


class TestTextMode:
    def test_fields_appended_as_kv(self):
        obs_logs.configure_logging(json_mode=False, force=True)
        root = logging.getLogger("repro")
        root.setLevel(logging.INFO)
        stream, handler = _capture_handler(obs_logs.TextFormatter())
        root.addHandler(handler)
        obs.log("flow.start", design="D1")
        out = stream.getvalue()
        assert "flow.start" in out and "design=D1" in out


class TestDefaults:
    def test_silent_by_default(self, capsys, monkeypatch):
        monkeypatch.delenv(obs_logs.JSON_ENV, raising=False)
        monkeypatch.delenv(obs_logs.TEXT_ENV, raising=False)
        obs_logs.configure_logging(force=True)
        obs.log("quiet.event", x=1)
        captured = capsys.readouterr()
        assert "quiet.event" not in captured.out + captured.err

    def test_env_enables_json(self, monkeypatch):
        monkeypatch.setenv(obs_logs.JSON_ENV, "1")
        obs_logs.configure_logging(force=True)
        root = logging.getLogger("repro")
        assert any(
            isinstance(h.formatter, obs_logs.JsonLinesFormatter)
            for h in root.handlers
        )

    def test_level_filter(self):
        obs_logs.configure_logging(json_mode=True, level="WARNING", force=True)
        root = logging.getLogger("repro")
        stream, handler = _capture_handler(obs_logs.JsonLinesFormatter())
        root.addHandler(handler)
        obs.log("info.event")
        obs.log("warn.event", level=logging.WARNING)
        out = stream.getvalue()
        assert "info.event" not in out and "warn.event" in out
