"""Tests for the scan-chain model: partitions, ordering, re-stitching."""

import pytest

from repro.geometry import Point
from repro.library.functional import DFF_R_S, ScanStyle
from repro.netlist import compose_mbr
from repro.netlist.validate import validate_design
from repro.scan import ScanChain, ScanModel


@pytest.fixture
def model() -> ScanModel:
    m = ScanModel()
    m.add_chain(ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"]))
    m.add_chain(ScanChain("c1", partition="P1", cells=["g0", "g1"], ordered=True))
    return m


class TestQueries:
    def test_partition_lookup(self, model):
        assert model.partition_of("ff0") == "P0"
        assert model.partition_of("g1") == "P1"
        assert model.partition_of("unknown") is None

    def test_same_partition(self, model):
        assert model.same_partition("ff0", "ff3")
        assert not model.same_partition("ff0", "g0")
        assert model.same_partition("nope1", "nope2")  # both unscanned

    def test_duplicate_chain_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_chain(ScanChain("c0", partition="P0"))

    def test_cell_on_two_chains_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_chain(ScanChain("c2", partition="P0", cells=["ff0"]))

    def test_consecutive_in_order(self, model):
        assert model.consecutive_in_order(["g0", "g1"])
        assert model.consecutive_in_order(["ff0", "ff2"])  # unordered chain: free
        assert model.consecutive_in_order(["g0"])

    def test_nonconsecutive_ordered_rejected(self):
        m = ScanModel()
        m.add_chain(ScanChain("c", partition="P", cells=["a", "b", "c", "d"], ordered=True))
        assert m.consecutive_in_order(["a", "b"])
        assert m.consecutive_in_order(["b", "d"]) is False
        assert m.consecutive_in_order(["d", "c", "b"])  # order-insensitive input

    def test_members_of_two_ordered_chains_rejected(self):
        m = ScanModel()
        m.add_chain(ScanChain("c1", partition="P", cells=["a", "b"], ordered=True))
        m.add_chain(ScanChain("c2", partition="P", cells=["x", "y"], ordered=True))
        assert m.ordered_positions(["a", "x"]) is None
        assert not m.consecutive_in_order(["a", "x"])


class TestReplaceGroup:
    def test_group_collapses_to_first_position(self, model):
        model.replace_group(["ff1", "ff2"], "mbr0")
        assert model.chains["c0"].cells == ["ff0", "mbr0", "ff3"]
        assert model.chain_of("mbr0").name == "c0"
        assert model.chain_of("ff1") is None

    def test_cross_chain_group_lands_on_one_chain(self):
        m = ScanModel()
        m.add_chain(ScanChain("c1", partition="P", cells=["a", "b"]))
        m.add_chain(ScanChain("c2", partition="P", cells=["x", "y"]))
        m.replace_group(["b", "x"], "mbr")
        assert m.chains["c1"].cells == ["a", "mbr"]
        assert m.chains["c2"].cells == ["y"]

    def test_unscanned_group_noop(self, model):
        model.replace_group(["nfa", "nfb"], "mbr")
        assert model.chain_of("mbr") is None

    def test_ordered_chain_wins_as_host(self):
        # A non-multi MBR occupies exactly one hop; when the group spans an
        # ordered and an unordered chain, it must inherit the ordered
        # section's slot (its internal chain preserves the member order).
        m = ScanModel()
        m.add_chain(ScanChain("u", partition="P", cells=["a", "b"]))
        m.add_chain(ScanChain("o", partition="P", cells=["x", "y"], ordered=True))
        m.replace_group(["b", "x"], "mbr")
        assert m.chains["o"].cells == ["mbr", "y"]
        assert m.chains["u"].cells == ["a"]
        assert m.chain_of("mbr").name == "o"

    def test_non_multi_never_lands_on_two_chains(self):
        # Regression: the pre-``multi`` code inserted the new cell on every
        # affected chain, so a single-SI/SO MBR appeared twice — breaking
        # the one-chain invariant and double-visiting its scan bits.
        from repro.check import check_scan

        m = ScanModel()
        m.add_chain(ScanChain("c1", partition="P", cells=["a", "b"]))
        m.add_chain(ScanChain("c2", partition="P", cells=["x", "y"]))
        m.replace_group(["b", "x"], "mbr")
        carrying = [c.name for c in m.chains.values() if "mbr" in c.cells]
        assert len(carrying) == 1
        assert check_scan(m) == []

    def test_multi_replaces_in_place_on_every_chain(self):
        # multi=True: each affected chain keeps its relative order by
        # visiting the new cell's bits where its members used to sit.
        from repro.check import check_scan

        m = ScanModel()
        m.add_chain(ScanChain("c1", partition="P", cells=["a", "b", "c"]))
        m.add_chain(ScanChain("c2", partition="P", cells=["x", "y"]))
        m.replace_group(
            ["b", "x"], "mbr", bit_map={"b": (0,), "x": (1,)}, multi=True
        )
        assert m.chains["c1"].cells == ["a", "mbr", "c"]
        assert m.chains["c1"].hop_bits[1] == (0,)
        assert m.chains["c2"].cells == ["mbr", "y"]
        assert m.chains["c2"].hop_bits[0] == (1,)
        assert m.chain_of("mbr") is not None
        assert check_scan(m) == []

    def test_multi_merges_adjacent_visits(self):
        m = ScanModel()
        m.add_chain(ScanChain("c", partition="P", cells=["a", "b", "z"]))
        m.replace_group(["a", "b"], "mbr", bit_map={"a": (0,), "b": (1,)}, multi=True)
        assert m.chains["c"].cells == ["mbr", "z"]
        assert m.chains["c"].hop_bits[0] == (0, 1)


class TestRestitch:
    def test_restitch_after_scattered_merge(self, lib, scan_row):
        # Merge ff0 and ff2 (NOT consecutive) into an internal-scan MBR; the
        # netlist-local stitch cannot fix the chain, but the model rebuild can.
        model = ScanModel()
        model.add_chain(
            ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"])
        )
        target = next(
            c
            for c in lib.register_cells(DFF_R_S, 2)
            if c.scan_style is ScanStyle.INTERNAL
        )
        group = [scan_row.cell("ff0"), scan_row.cell("ff2")]
        mbr = compose_mbr(scan_row, group, target, Point(12, 50), name="mbr0").new_cell
        model.replace_group(["ff0", "ff2"], "mbr0")
        assert model.chains["c0"].cells == ["mbr0", "ff1", "ff3"]

        model.restitch(scan_row)
        # Chain must now be connected: mbr0.SO -> ff1.SI, ff1.SO -> ff3.SI.
        assert mbr.pin("SO").net is scan_row.cell("ff1").pin("SI").net
        assert scan_row.cell("ff1").pin("SO").net is scan_row.cell("ff3").pin("SI").net
        errors = [i for i in validate_design(scan_row) if i.is_error]
        assert not errors

    def test_restitch_idempotent(self, lib, scan_row):
        model = ScanModel()
        model.add_chain(
            ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"])
        )
        created_first = model.restitch(scan_row)  # already stitched correctly
        created_second = model.restitch(scan_row)
        assert created_first == 0 and created_second == 0

    def test_restitch_threads_multi_scan_mbr(self, lib, scan_row):
        model = ScanModel()
        model.add_chain(
            ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"])
        )
        target = next(
            c for c in lib.register_cells(DFF_R_S, 2) if c.scan_style is ScanStyle.MULTI
        )
        group = [scan_row.cell("ff1"), scan_row.cell("ff2")]
        mbr = compose_mbr(scan_row, group, target, Point(12, 50), name="mbr0").new_cell
        model.replace_group(["ff1", "ff2"], "mbr0")
        model.restitch(scan_row)
        # The external chain passes through both bits.
        assert scan_row.cell("ff0").pin("SO").net is mbr.pin("SI0").net
        assert mbr.pin("SO0").net is mbr.pin("SI1").net
        assert mbr.pin("SO1").net is scan_row.cell("ff3").pin("SI").net


class TestReorderChains:
    def test_dropped_dead_cells_leave_the_index(self, lib, scan_row):
        # A chain hop whose cell is gone from the design is dropped by
        # reorder_chains; the chain index must drop it too, or chain_of()
        # keeps answering for a dead cell and clone() copies the dangling
        # entry into the ECO audit's reference model.
        from repro.check import check_scan

        model = ScanModel()
        model.add_chain(
            ScanChain("c0", partition="P0", cells=["ff0", "ghost", "ff1", "ff2", "ff3"])
        )
        assert model.chain_of("ghost") is not None
        assert model.reorder_chains(scan_row) == 1
        assert "ghost" not in model.chains["c0"].cells
        assert model.chain_of("ghost") is None
        assert check_scan(model) == []
        assert check_scan(model.clone()) == []


class TestCheckScanStitch:
    def test_broken_stitch_on_non_last_chain_reported(self, lib):
        # Regression: the stitch check once ran off a leaked loop variable,
        # so only the last-iterated chain was ever verified and breaks on
        # every earlier chain passed silently.
        from repro.check import check_scan
        from tests.conftest import make_flop_row

        design = make_flop_row(lib, n_flops=8, func_class=DFF_R_S, name="two_chains")
        model = ScanModel()
        model.add_chain(
            ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"])
        )
        model.add_chain(
            ScanChain("c1", partition="P1", cells=["ff4", "ff5", "ff6", "ff7"])
        )
        model.restitch(design)
        assert check_scan(model, design) == []

        design.disconnect(design.cell("ff1").pin("SI"))
        broken = [
            v
            for v in check_scan(model, design)
            if v.check == "scan-chain-broken-stitch"
        ]
        assert len(broken) == 1
        assert "chain c0" in broken[0].subject

    def test_clean_two_chain_design_has_no_stitch_violations(self, lib):
        from repro.check import check_scan
        from tests.conftest import make_flop_row

        design = make_flop_row(lib, n_flops=6, func_class=DFF_R_S, name="clean2")
        model = ScanModel()
        model.add_chain(ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2"]))
        model.add_chain(ScanChain("c1", partition="P1", cells=["ff3", "ff4", "ff5"]))
        model.restitch(design)
        assert check_scan(model, design) == []


class TestFromDesign:
    def test_extracts_generator_chains(self, lib):
        from repro.bench import generate_design, preset
        from repro.scan import ScanModel

        bundle = generate_design(preset("D1", scale=0.1), lib)
        extracted = ScanModel.from_design(bundle.design)
        # Same registers end up chained, in the same traversal order.
        original = {
            tuple(ch.cells) for ch in bundle.scan_model.chains.values() if ch.cells
        }
        recovered = {tuple(ch.cells) for ch in extracted.chains.values()}
        assert recovered == original

    def test_extracted_model_restitch_is_noop(self, lib, scan_row):
        from repro.scan import ScanModel

        model = ScanModel.from_design(scan_row)
        assert len(model.chains) == 1
        chain = next(iter(model.chains.values()))
        assert chain.cells == ["ff0", "ff1", "ff2", "ff3"]
        assert model.restitch(scan_row) == 0  # already physically stitched

    def test_extraction_on_scanless_design(self, lib, flop_row):
        from repro.scan import ScanModel

        model = ScanModel.from_design(flop_row)
        assert model.chains == {}
