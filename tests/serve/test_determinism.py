"""Serving concurrently must be bit-identical to serving serially.

The same deterministic global job list — a priming compose plus seeded
move storms per design — runs once through one client lane and once
through eight concurrent lanes, each time against fresh worlds.  The
per-design end states must match exactly: placement signatures (which
cell, which libcell, which coordinates — the grouping outcome) and
timing signatures (per-endpoint slacks), both via the
:mod:`repro.check.oracles` used by ``repro check``.
"""

from __future__ import annotations

import asyncio

from repro import obs
from repro.check.oracles import placement_signature, timing_signature
from repro.serve import ComposeServer, DesignRegistry, JobRequest, SharedComponentCache, drive

SCALE = 0.12
STORMS = 3


def job_list(names: list[str]) -> list[JobRequest]:
    jobs = [
        JobRequest(kind="compose", design=n, id=f"prime-{n}") for n in names
    ]
    for k in range(STORMS):
        for n in names:
            jobs.append(
                JobRequest(
                    kind="eco",
                    design=n,
                    params={
                        "seed": 40 + k,
                        "moves": 2,
                        "radius": 3.0,
                        # Last storm also reports wire-level digests.
                        "signatures": k == STORMS - 1,
                    },
                    id=f"eco-{n}-{k}",
                )
            )
    return jobs


def run_workload(clients: int) -> tuple[dict, dict]:
    """Fresh worlds, fresh metrics; returns (end states, responses)."""
    obs.set_registry(obs.MetricsRegistry())
    registry = DesignRegistry(shared_cache=SharedComponentCache())
    names = ["D1-a", "D1-b"]
    for n in names:
        registry.add_preset(n, "D1", scale=SCALE)
    server = ComposeServer(registry, queue_depth=64)

    async def main():
        await server.start()
        responses, _ = await drive(server, job_list(names), clients=clients)
        await server.aclose()
        return responses

    responses = asyncio.run(main())
    assert all(r.ok for r in responses.values()), [
        (r.id, r.error_code, r.error) for r in responses.values() if not r.ok
    ]
    states = {
        n: (
            sorted(placement_signature(registry.session(n).design).items()),
            sorted(timing_signature(registry.session(n).timer).items()),
        )
        for n in names
    }
    return states, responses


def test_concurrent_serving_is_bit_identical():
    serial_states, serial_responses = run_workload(clients=1)
    concurrent_states, concurrent_responses = run_workload(clients=8)

    for name in serial_states:
        assert serial_states[name] == concurrent_states[name], name

    # The wire-level digests of the final storm agree too — what a
    # remote client would use to assert bit-identity.
    for rid, serial in serial_responses.items():
        if "placement_digest" in serial.result:
            concurrent = concurrent_responses[rid]
            assert serial.result["placement_digest"] == concurrent.result["placement_digest"]
            assert serial.result["timing_digest"] == concurrent.result["timing_digest"]


def test_replicas_converge_to_the_same_state():
    """Identical worlds fed identical job sequences end identical — the
    cross-design shared-cache replay changes nothing observable."""
    states, _ = run_workload(clients=4)
    assert states["D1-a"] == states["D1-b"]
