"""Back-pressure and fault isolation.

A server with ``queue_depth=1`` and a deliberately slow job must reject
the next submission *immediately* with the typed ``queue_full`` error
(and the top-level ``rejected`` wire marker) while still answering
``status`` inline; once the slow job drains, submissions flow again.
A job that raises inside the session fails that job only — the session
stays ``check_all``-clean and subsequent jobs succeed.
"""

from __future__ import annotations

import asyncio

from repro import obs
from repro.serve import (
    ERR_BAD_REQUEST,
    ERR_JOB_FAILED,
    ERR_QUEUE_FULL,
    Client,
    ComposeServer,
    DesignRegistry,
)


def small_registry() -> DesignRegistry:
    registry = DesignRegistry()
    registry.add_preset("tiny", "D1", scale=0.06)
    return registry


def test_queue_full_rejection_is_typed_and_immediate():
    server = ComposeServer(small_registry(), queue_depth=1)
    client = Client(server)

    async def main():
        await server.start()
        slow = asyncio.get_running_loop().create_task(
            client.submit("check", "tiny", {"sleep_s": 0.6})
        )
        await asyncio.sleep(0.15)  # let the slow job occupy the only slot

        t0 = asyncio.get_running_loop().time()
        rejected = await client.submit("check", "tiny")
        elapsed = asyncio.get_running_loop().time() - t0
        assert not rejected.ok
        assert rejected.error_code == ERR_QUEUE_FULL
        assert rejected.rejected
        assert rejected.to_wire()["rejected"] == ERR_QUEUE_FULL
        assert elapsed < 0.2, "rejection must not wait for the queue"

        # status bypasses the queue: a saturated server stays observable.
        status = await client.submit("status")
        assert status.ok
        assert status.result["inflight"] == 1
        assert status.result["jobs_rejected"] == 1

        done = await slow
        assert done.ok
        # Capacity freed: the next job is admitted and completes.
        after = await client.submit("check", "tiny")
        assert after.ok
        await server.aclose()

    asyncio.run(main())
    counters = obs.get_registry().snapshot()["counters"]
    assert counters["serve.jobs.rejected"] == 1


def test_fault_in_job_spares_session_and_successors():
    server = ComposeServer(small_registry(), queue_depth=8)
    client = Client(server)

    async def main():
        await server.start()
        prime = await client.submit("compose", "tiny")
        assert prime.ok

        failed = await client.submit(
            "eco", "tiny", {"seed": 3, "moves": 1, "inject_fault": True}
        )
        assert not failed.ok
        assert failed.error_code == ERR_JOB_FAILED
        assert "injected fault" in failed.error

        # The session's committed world is still invariant-clean...
        check = await client.submit("check", "tiny")
        assert check.ok
        assert check.result["clean"], check.result["report"]

        # ...and the next jobs run as if nothing happened.
        eco = await client.submit("eco", "tiny", {"seed": 3, "moves": 1})
        assert eco.ok
        assert eco.result["moves_applied"] == 1
        status = await client.submit("status", "tiny")
        assert status.ok
        assert status.result["jobs_failed"] == 1
        await server.aclose()

    asyncio.run(main())
    counters = obs.get_registry().snapshot()["counters"]
    assert counters["serve.jobs.failed"] == 1
    assert counters["serve.design.tiny.jobs_failed"] == 1


def test_bad_eco_move_is_a_typed_request_error():
    server = ComposeServer(small_registry(), queue_depth=8)
    client = Client(server)

    async def main():
        await server.start()
        bad = await client.submit(
            "eco", "tiny", {"cells": [{"cell": "no_such_cell", "x": 1, "y": 1}]}
        )
        assert not bad.ok
        assert bad.error_code == ERR_BAD_REQUEST
        # A typed request error is not a server fault; the design still works.
        good = await client.submit("check", "tiny")
        assert good.ok
        await server.aclose()

    asyncio.run(main())
