"""Fixtures and helpers for the service-layer suite.

``fresh_metrics`` gives every test a clean counter slate (the serve
layer reports into the process-global registry).  ``make_entry`` builds
synthetic :class:`~repro.core.composer.ComponentCache` entries with a
controllable encoded size (``pad``) for the cache-budget tests, and
``tcp_server`` runs a :class:`~repro.serve.ComposeServer` with its TCP
listener on a background event-loop thread for the wire-protocol tests.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

import pytest

from repro import obs
from repro.core.candidates import CandidateMBR
from repro.core.composer import ComponentCache
from repro.core.mapping import MappingChoice
from repro.geometry import Rect
from repro.geometry.region import FeasibleRegion
from repro.serve import ComposeServer


@pytest.fixture(autouse=True)
def fresh_metrics():
    obs.set_registry(obs.MetricsRegistry())
    yield


def make_entry(digest: str, library=None, pad: int = 0) -> ComponentCache:
    """A synthetic cache entry; pass ``library`` to give it a real mapped
    candidate (exercises the by-name cell rebinding of the codec), ``pad``
    to inflate its encoded size for byte-budget tests."""
    chosen = ()
    if library is not None:
        chosen = (
            CandidateMBR(
                members=("r0", "r1"),
                bits=2,
                weight=1.25,
                blockers=1,
                mapping=MappingChoice(
                    cell=library.cell("BUF_X1"), incomplete=False, spare_bits=1
                ),
                region=FeasibleRegion(Rect(1.0, 2.0, 9.0, 8.0), pinned=False),
            ),
        )
    return ComponentCache(
        digest=digest,
        nodes=("r0", "r1", "x" * pad),
        subgraphs=1,
        candidates=3,
        ilp_nodes=2,
        chosen=chosen,
    )


@contextlib.contextmanager
def tcp_server(registry, queue_depth: int = 8):
    """A live TCP-serving ComposeServer on a background loop; yields the
    bound ``(host, port)``."""
    loop = asyncio.new_event_loop()
    server = ComposeServer(registry, queue_depth=queue_depth)
    ready = threading.Event()
    box: dict = {}

    async def main():
        box["stop"] = asyncio.Event()
        box["addr"] = await server.serve("127.0.0.1", 0)
        ready.set()
        await box["stop"].wait()
        await server.aclose()

    thread = threading.Thread(target=lambda: loop.run_until_complete(main()))
    thread.start()
    assert ready.wait(30), "TCP server failed to start"
    try:
        yield box["addr"]
    finally:
        loop.call_soon_threadsafe(box["stop"].set)
        thread.join(30)
        loop.close()
