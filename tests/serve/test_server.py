"""Wire protocol and server admission: JSON-lines framing, typed errors.

Exercises the real TCP path (:class:`~repro.serve.TcpClient` against a
listener on an ephemeral port) plus the in-process admission rules:
unknown kinds and designs answer typed failures, malformed frames answer
``bad_request`` without dropping the connection, and a full compose/eco/
check conversation round-trips with its result payload intact.
"""

from __future__ import annotations

import asyncio

from repro.serve import (
    ERR_UNKNOWN_DESIGN,
    ERR_UNKNOWN_KIND,
    PROTOCOL_SCHEMA,
    Client,
    ComposeServer,
    DesignRegistry,
    JobRequest,
    JobResponse,
    TcpClient,
)
from repro.serve.protocol import encode_line

from tests.serve.conftest import tcp_server


def small_registry() -> DesignRegistry:
    registry = DesignRegistry()
    registry.add_preset("tiny", "D1", scale=0.06)
    return registry


def test_request_response_wire_round_trip():
    request = JobRequest(
        kind="eco", design="d", params={"seed": 1, "moves": 2}, id="j7"
    )
    assert JobRequest.from_wire(request.to_wire()) == request
    response = JobResponse.success(request, {"moves_applied": 2})
    wire = response.to_wire()
    assert wire["schema"] == PROTOCOL_SCHEMA
    back = JobResponse.from_wire(wire)
    assert back.ok and back.result == {"moves_applied": 2} and back.id == "j7"


def test_unknown_kind_and_design_are_typed():
    server = ComposeServer(small_registry())
    client = Client(server)

    async def main():
        r1 = await client.submit("explode", "tiny")
        assert not r1.ok and r1.error_code == ERR_UNKNOWN_KIND
        r2 = await client.submit("compose", "missing")
        assert not r2.ok and r2.error_code == ERR_UNKNOWN_DESIGN
        assert "tiny" in r2.error  # the registered names are named
        await server.aclose()

    asyncio.run(main())


def test_tcp_conversation():
    with tcp_server(small_registry()) as (host, port):
        with TcpClient(host, port) as client:
            status = client.submit("status")
            assert status.ok
            assert status.result["queue_depth"] == 8
            assert "tiny" in status.result["designs"]

            prime = client.submit("compose", "tiny")
            assert prime.ok
            assert prime.result["registers_after"] <= prime.result["registers_before"]

            eco = client.submit(
                "eco", "tiny", {"seed": 9, "moves": 1, "signatures": True}
            )
            assert eco.ok
            assert eco.result["moves_applied"] == 1
            assert len(eco.result["placement_digest"]) == 64

            check = client.submit("check", "tiny")
            assert check.ok and check.result["clean"]


def test_tcp_malformed_frames_answer_bad_request():
    with tcp_server(small_registry()) as (host, port):
        with TcpClient(host, port) as client:
            # Not JSON at all.
            reply = client.send_raw(b"{this is not json\n")
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
            assert reply["id"] == ""

            # Valid JSON, wrong schema tag.
            reply = client.send_raw(
                encode_line({"schema": "nope/9", "kind": "status", "id": "x"})
            )
            assert reply["error"]["code"] == "bad_request"

            # Valid JSON, no kind.
            reply = client.send_raw(encode_line({"schema": PROTOCOL_SCHEMA}))
            assert reply["error"]["code"] == "bad_request"

            # The connection survived all three: a real request still works.
            assert client.submit("status").ok


def test_tcp_unknown_design_over_the_wire():
    with tcp_server(small_registry()) as (host, port):
        with TcpClient(host, port) as client:
            reply = client.submit("compose", "missing")
            assert not reply.ok
            assert reply.error_code == ERR_UNKNOWN_DESIGN


def test_per_design_status_inline():
    server = ComposeServer(small_registry())
    client = Client(server)

    async def main():
        r = await client.submit("status", "tiny")
        assert r.ok
        assert r.result["design"] == "tiny"
        assert r.result["primed"] is False
        assert r.result["registers"] > 0
        await server.aclose()

    asyncio.run(main())
