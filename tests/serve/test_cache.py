"""Cache correctness: shared-tier LRU/bytes/spill, local-tier budget.

Covers the satellite battery: LRU eviction order, byte-budget
accounting, disk-spill round trip, corrupt/truncated/mismatched spill
files discarded (never trusted), cross-session replay, and the
regression guard for the session-local :class:`CompositionCache` budget
(it was unbounded before the service layer landed).
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.core.composer import (
    ComposerConfig,
    CompositionCache,
    entry_blob,
    entry_payload,
)
from repro.flow.session import cache_namespace
from repro.serve import SharedComponentCache
from repro.serve.cache import SPILL_SUFFIX

from tests.serve.conftest import make_entry


def counters() -> dict:
    return obs.get_registry().snapshot()["counters"]


# -- shared tier: LRU + byte budget ------------------------------------------


def test_shared_lru_eviction_order():
    cache = SharedComponentCache(max_entries=3)
    for d in ("d1", "d2", "d3"):
        cache.put(make_entry(d))
    assert cache.keys() == ["|d1", "|d2", "|d3"]

    # A hit refreshes recency: d1 moves to the MRU end, d2 becomes LRU.
    assert cache.get("d1") is not None
    cache.put(make_entry("d4"))
    assert cache.keys() == ["|d3", "|d1", "|d4"]
    assert counters()["serve.shared_cache.evictions"] == 1


def test_shared_byte_budget_accounting():
    one = len(entry_blob(make_entry("da", pad=2000)))
    cache = SharedComponentCache(max_entries=100, max_bytes=2 * one + 16)
    cache.put(make_entry("da", pad=2000))
    cache.put(make_entry("db", pad=2000))
    assert len(cache) == 2
    assert cache.total_bytes == 2 * one

    cache.put(make_entry("dc", pad=2000))
    assert len(cache) == 2
    assert cache.keys() == ["|db", "|dc"]
    assert cache.total_bytes <= cache.max_bytes

    # Refreshing an existing digest replaces, never double-counts.
    cache.put(make_entry("dc", pad=2000))
    assert len(cache) == 2
    assert cache.total_bytes == 2 * one


def test_shared_keeps_one_oversized_entry():
    cache = SharedComponentCache(max_bytes=1)
    cache.put(make_entry("dx", pad=500))
    assert len(cache) == 1  # a single over-budget entry must not thrash


# -- shared tier: disk spill -------------------------------------------------


def test_spill_round_trip(tmp_path, lib):
    ns = "libX/abcd"
    writer = SharedComponentCache(spill_dir=str(tmp_path))
    entry = make_entry("deadbeef", library=lib)
    writer.put(entry, namespace=ns)
    files = list(tmp_path.glob(f"*{SPILL_SUFFIX}"))
    assert len(files) == 1
    assert counters()["serve.shared_cache.spill_writes"] == 1

    # A fresh cache over the same spill_dir = a server restart.
    obs.set_registry(obs.MetricsRegistry())
    reader = SharedComponentCache(spill_dir=str(tmp_path))
    got = reader.get("deadbeef", namespace=ns, library=lib)
    assert got is not None
    assert entry_payload(got) == entry_payload(entry)
    assert counters()["serve.shared_cache.spill_loads"] == 1

    # The load adopted it into memory: the next get never touches disk.
    assert reader.get("deadbeef", namespace=ns, library=lib) is not None
    assert counters()["serve.shared_cache.spill_loads"] == 1
    # A different namespace never sees it.
    assert reader.get("deadbeef", namespace="other", library=lib) is None


@pytest.mark.parametrize(
    "content",
    [
        b"not a pickle at all",
        pickle.dumps({"schema": "repro.compose.component/0", "payload": {}}),
    ],
    ids=["garbage", "stale-schema"],
)
def test_damaged_spill_discarded(tmp_path, lib, content):
    cache = SharedComponentCache(spill_dir=str(tmp_path))
    path = cache._spill_path("ns", "feedface")
    with open(path, "wb") as fh:
        fh.write(content)
    assert cache.get("feedface", namespace="ns", library=lib) is None
    assert not os.path.exists(path)
    assert counters()["serve.shared_cache.spill_discards"] == 1


def test_truncated_spill_discarded(tmp_path, lib):
    cache = SharedComponentCache(spill_dir=str(tmp_path))
    blob = entry_blob(make_entry("cafe", library=lib))
    path = cache._spill_path("ns", "cafe")
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    assert cache.get("cafe", namespace="ns", library=lib) is None
    assert not os.path.exists(path)


def test_digest_mismatch_spill_discarded(tmp_path, lib):
    """A valid blob under the wrong file name is foreign content: drop it."""
    cache = SharedComponentCache(spill_dir=str(tmp_path))
    blob = entry_blob(make_entry("aaaa", library=lib))
    path = cache._spill_path("ns", "bbbb")
    with open(path, "wb") as fh:
        fh.write(blob)
    assert cache.get("bbbb", namespace="ns", library=lib) is None
    assert not os.path.exists(path)
    assert counters()["serve.shared_cache.spill_discards"] == 1


def test_unknown_cell_spill_discarded(tmp_path, lib):
    """An entry naming a cell the live library lacks decodes to nothing."""
    entry = make_entry("beef", library=lib)
    blob = entry_blob(entry)
    wrapper = pickle.loads(blob)
    wrapper["payload"]["chosen"][0]["cell"] = "NO_SUCH_CELL"
    cache = SharedComponentCache(spill_dir=str(tmp_path))
    path = cache._spill_path("ns", "beef")
    with open(path, "wb") as fh:
        fh.write(pickle.dumps(wrapper))
    assert cache.get("beef", namespace="ns", library=lib) is None
    assert not os.path.exists(path)


# -- cross-session replay ----------------------------------------------------


def test_cross_session_hit(lib):
    """A component solved under session A replays for session B."""
    shared = SharedComponentCache()
    a = CompositionCache(shared=shared, namespace="ns", library=lib)
    b = CompositionCache(shared=shared, namespace="ns", library=lib)
    entry = make_entry("d1", library=lib)
    a.put(entry)

    got = b.get("d1")
    assert got is entry
    assert counters()["serve.shared_cache.hits"] == 1

    # B adopted the entry locally: the repeat lookup never leaves B.
    assert b.get("d1") is entry
    assert counters()["serve.shared_cache.hits"] == 1
    assert counters()["compose.cache.hits"] == 1

    # A different namespace (library/die/config fingerprint) is isolated.
    c = CompositionCache(shared=shared, namespace="other", library=lib)
    assert c.get("d1") is None


def test_cache_namespace_partitions_by_config():
    from repro.bench import generate_design, preset
    from repro.library import default_library

    bundle = generate_design(preset("D1", scale=0.05), default_library())
    again = generate_design(preset("D1", scale=0.05), default_library())
    cfg = ComposerConfig()
    ns = cache_namespace(bundle.design, cfg)
    assert ns == cache_namespace(again.design, cfg)
    assert ns.startswith(bundle.design.library.name + "/")

    other = ComposerConfig()
    other.passes = cfg.passes + 1
    assert cache_namespace(bundle.design, other) != ns

    bigger = generate_design(preset("D1", scale=0.5), default_library())
    assert cache_namespace(bigger.design, cfg) != ns  # different die


# -- local tier: the CompositionCache budget regression ----------------------


def test_composition_cache_byte_budget(lib):
    one = len(entry_blob(make_entry("e0", pad=500)))
    cache = CompositionCache(max_components=100, max_bytes=3 * one + 16)
    for i in range(6):
        cache.put(make_entry(f"e{i}", pad=500))
    assert cache.total_bytes <= cache.max_bytes
    assert len(cache.components) == 3
    # LRU discipline: the newest entries survive, in insertion order.
    assert list(cache.components) == ["e3", "e4", "e5"]
    # The byte ledger matches the surviving entries exactly.
    assert cache.total_bytes == sum(
        cache._entry_bytes[d] for d in cache.components
    )
    assert counters()["compose.cache.evictions"] == 3


def test_composition_cache_entry_budget():
    cache = CompositionCache(max_components=2)
    for i in range(4):
        cache.put(make_entry(f"e{i}"))
    assert list(cache.components) == ["e2", "e3"]


def test_composition_cache_refresh_keeps_hot_entries():
    cache = CompositionCache(max_components=2)
    cache.put(make_entry("cold"))
    cache.put(make_entry("hot"))
    assert cache.get("cold") is not None  # refresh: "hot" is now LRU
    cache.put(make_entry("new"))
    assert list(cache.components) == ["cold", "new"]


def test_composition_cache_bounded_by_default():
    cache = CompositionCache()
    assert 0 < cache.max_components < 10**9
    assert 0 < cache.max_bytes < 10**12
