"""Tests for the congestion grid and overflow-edge counting."""

import pytest

from repro.congestion import CongestionGrid
from repro.geometry import Rect


class TestDemandModel:
    def test_empty_grid_no_overflow(self):
        grid = CongestionGrid(Rect(0, 0, 24, 24), bins_x=4, bins_y=4)
        rep = grid.report()
        assert rep.overflow_edges == 0
        assert rep.total_edges == 3 * 4 + 4 * 3
        assert rep.max_usage_ratio == 0.0

    def test_net_spanning_one_boundary(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        # Box crosses the x=4 boundary, confined to the lower row.
        grid.add_net_box(Rect(2, 0, 6, 1))
        assert grid.usage_v[0, 0] > 0
        assert grid.usage_v[0, 1] == pytest.approx(0.0)

    def test_net_inside_one_bin_adds_nothing(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(0.5, 0.5, 3.0, 3.0))
        assert grid.usage_v.sum() == pytest.approx(0.0)
        assert grid.usage_h.sum() == pytest.approx(0.0)

    def test_vertical_span_adds_horizontal_edge_demand(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(1, 1, 2, 7))  # crosses y=4 boundary
        assert grid.usage_h.sum() > 0
        assert grid.usage_v.sum() == pytest.approx(0.0)

    def test_y_fractions_sum_to_weight(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=4)
        grid.add_net_box(Rect(0, 0, 8, 8), weight=3.0)
        # The single vertical boundary column carries total weight 3.
        assert grid.usage_v.sum() == pytest.approx(3.0)

    def test_degenerate_box_is_noop(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(3, 3, 3, 3))
        assert grid.usage_v.sum() + grid.usage_h.sum() == pytest.approx(0.0)

    def test_overflow_detected_under_heavy_load(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2, tracks_per_um=0.5)
        for _ in range(20):
            grid.add_net_box(Rect(1, 0.5, 7, 1.5))
        rep = grid.report()
        assert rep.overflow_edges >= 1
        assert rep.max_usage_ratio > 1.0

    def test_min_grid_size_enforced(self):
        with pytest.raises(ValueError):
            CongestionGrid(Rect(0, 0, 8, 8), bins_x=1, bins_y=2)


class TestOfDesign:
    def test_fixture_design_analyzable(self, flop_row):
        grid = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        rep = grid.report()
        assert rep.total_edges > 0
        assert rep.mean_usage_ratio >= 0.0

    def test_more_wires_more_demand(self, lib, flop_row):
        base = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        # Add a long net crossing the die.
        from repro.geometry import Point

        a = flop_row.add_cell("xa", "BUF_X1", Point(5, 5))
        b = flop_row.add_cell("xb", "INV_X1", Point(95, 95))
        n = flop_row.add_net("xn")
        flop_row.connect(a.pin("Z"), n)
        flop_row.connect(b.pin("A"), n)
        after = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        assert after.usage_v.sum() > base.usage_v.sum()
        assert after.usage_h.sum() > base.usage_h.sum()


class TestBatchedAccumulation:
    """``_add_boxes`` must equal the sequential ``add_net_box`` loop bit
    for bit — same fractions, same addition order (net-major)."""

    def _random_boxes(self, rng, n, die):
        import random as _random

        assert isinstance(rng, _random.Random)
        boxes = []
        for _ in range(n):
            x0 = rng.uniform(die.xlo, die.xhi)
            y0 = rng.uniform(die.ylo, die.yhi)
            if rng.random() < 0.2:  # degenerate in one axis
                x1 = x0
            else:
                x1 = min(die.xhi, x0 + rng.uniform(0.0, die.width))
            if rng.random() < 0.2:
                y1 = y0
            else:
                y1 = min(die.yhi, y0 + rng.uniform(0.0, die.height))
            if x1 == x0 and y1 == y0:
                x1 = min(die.xhi, x0 + 1.0)
            boxes.append((x0, y0, x1, y1))
        return boxes

    def test_batch_matches_sequential_loop_bitwise(self):
        import random

        import numpy as np

        from repro.geometry import Rect as R

        die = R(0, 0, 30, 20)
        rng = random.Random(17)
        boxes = self._random_boxes(rng, 60, die)
        weights = [rng.choice([1.0, 0.5, 2.0]) for _ in boxes]

        ref = CongestionGrid(die, bins_x=6, bins_y=5)
        for (x0, y0, x1, y1), w in zip(boxes, weights):
            ref.add_net_box(R(x0, y0, x1, y1), weight=w)

        batch = CongestionGrid(die, bins_x=6, bins_y=5)
        batch._add_boxes(np.array(boxes, dtype=float), np.array(weights))

        assert np.array_equal(ref.usage_v, batch.usage_v)
        assert np.array_equal(ref.usage_h, batch.usage_h)

    def test_empty_batch_is_noop(self):
        import numpy as np

        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid._add_boxes(np.zeros((0, 4)), np.zeros(0))
        assert grid.usage_v.sum() == 0.0
        assert grid.usage_h.sum() == 0.0

    def test_of_design_matches_per_net_loop(self, flop_row):
        import numpy as np

        batch = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        loop = CongestionGrid(flop_row.die, bins_x=4, bins_y=4)
        for net in flop_row.nets.values():
            box = net.bbox()
            if (
                box is not None
                and net.num_pins >= 2
                and (box.width > 0 or box.height > 0)
            ):
                loop.add_net_box(box)
        assert np.array_equal(batch.usage_v, loop.usage_v)
        assert np.array_equal(batch.usage_h, loop.usage_h)
