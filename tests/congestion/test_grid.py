"""Tests for the congestion grid and overflow-edge counting."""

import pytest

from repro.congestion import CongestionGrid
from repro.geometry import Rect


class TestDemandModel:
    def test_empty_grid_no_overflow(self):
        grid = CongestionGrid(Rect(0, 0, 24, 24), bins_x=4, bins_y=4)
        rep = grid.report()
        assert rep.overflow_edges == 0
        assert rep.total_edges == 3 * 4 + 4 * 3
        assert rep.max_usage_ratio == 0.0

    def test_net_spanning_one_boundary(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        # Box crosses the x=4 boundary, confined to the lower row.
        grid.add_net_box(Rect(2, 0, 6, 1))
        assert grid.usage_v[0, 0] > 0
        assert grid.usage_v[0, 1] == pytest.approx(0.0)

    def test_net_inside_one_bin_adds_nothing(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(0.5, 0.5, 3.0, 3.0))
        assert grid.usage_v.sum() == pytest.approx(0.0)
        assert grid.usage_h.sum() == pytest.approx(0.0)

    def test_vertical_span_adds_horizontal_edge_demand(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(1, 1, 2, 7))  # crosses y=4 boundary
        assert grid.usage_h.sum() > 0
        assert grid.usage_v.sum() == pytest.approx(0.0)

    def test_y_fractions_sum_to_weight(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=4)
        grid.add_net_box(Rect(0, 0, 8, 8), weight=3.0)
        # The single vertical boundary column carries total weight 3.
        assert grid.usage_v.sum() == pytest.approx(3.0)

    def test_degenerate_box_is_noop(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2)
        grid.add_net_box(Rect(3, 3, 3, 3))
        assert grid.usage_v.sum() + grid.usage_h.sum() == pytest.approx(0.0)

    def test_overflow_detected_under_heavy_load(self):
        grid = CongestionGrid(Rect(0, 0, 8, 8), bins_x=2, bins_y=2, tracks_per_um=0.5)
        for _ in range(20):
            grid.add_net_box(Rect(1, 0.5, 7, 1.5))
        rep = grid.report()
        assert rep.overflow_edges >= 1
        assert rep.max_usage_ratio > 1.0

    def test_min_grid_size_enforced(self):
        with pytest.raises(ValueError):
            CongestionGrid(Rect(0, 0, 8, 8), bins_x=1, bins_y=2)


class TestOfDesign:
    def test_fixture_design_analyzable(self, flop_row):
        grid = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        rep = grid.report()
        assert rep.total_edges > 0
        assert rep.mean_usage_ratio >= 0.0

    def test_more_wires_more_demand(self, lib, flop_row):
        base = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        # Add a long net crossing the die.
        from repro.geometry import Point

        a = flop_row.add_cell("xa", "BUF_X1", Point(5, 5))
        b = flop_row.add_cell("xb", "INV_X1", Point(95, 95))
        n = flop_row.add_net("xn")
        flop_row.connect(a.pin("Z"), n)
        flop_row.connect(b.pin("A"), n)
        after = CongestionGrid.of_design(flop_row, bins_x=4, bins_y=4)
        assert after.usage_v.sum() > base.usage_v.sum()
        assert after.usage_h.sum() > base.usage_h.sum()
