"""Tests for the NLDM table model and slew-aware analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sta import Timer
from repro.sta.nldm import (
    DEFAULT_LOAD_AXIS,
    DEFAULT_SLEW_AXIS,
    LookupTable2D,
    nldm_arrivals,
    synthesize_tables,
)

from tests.conftest import make_flop_row


class TestLookupTable:
    TABLE = LookupTable2D(
        slews=(0.01, 0.1),
        loads=(0.001, 0.01),
        values=((1.0, 2.0), (3.0, 4.0)),
    )

    def test_exact_corners(self):
        assert self.TABLE.lookup(0.01, 0.001) == 1.0
        assert self.TABLE.lookup(0.1, 0.01) == 4.0

    def test_bilinear_center(self):
        mid = self.TABLE.lookup(0.055, 0.0055)
        assert mid == pytest.approx(2.5)

    def test_clamped_extrapolation(self):
        assert self.TABLE.lookup(0.0, 0.0) == 1.0
        assert self.TABLE.lookup(1.0, 1.0) == 4.0

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            LookupTable2D((0.1, 0.01), (0.001,), ((1.0,), (2.0,)))
        with pytest.raises(ValueError):
            LookupTable2D((0.01,), (0.001,), ((1.0,), (2.0,)))

    @given(
        st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
    )
    def test_interpolation_within_value_range(self, slew, load):
        v = self.TABLE.lookup(slew, load)
        assert 1.0 <= v <= 4.0


class TestSynthesizedTables:
    def test_zero_sensitivity_matches_linear_model(self, lib):
        cell = lib.cell("BUF_X2")
        tables = synthesize_tables(cell, slew_sensitivity=0.0)
        for load in (0.0005, 0.004, 0.03, 0.2):
            expected = cell.delay(load)
            for slew in (0.001, 0.05, 0.5):
                got = tables.delay.lookup(slew, load)
                # Exact inside the table's load span (the model is linear in
                # load, so interpolation is exact there); clamped outside.
                if DEFAULT_LOAD_AXIS[0] <= load <= DEFAULT_LOAD_AXIS[-1]:
                    assert got == pytest.approx(expected)

    def test_sensitivity_increases_delay_with_slew(self, lib):
        tables = synthesize_tables(lib.cell("BUF_X2"), slew_sensitivity=0.2)
        slow = tables.delay.lookup(DEFAULT_SLEW_AXIS[-1], 0.01)
        fast = tables.delay.lookup(DEFAULT_SLEW_AXIS[0], 0.01)
        assert slow > fast

    def test_register_tables_include_clk_to_q(self, lib):
        from repro.library.functional import DFF_R

        reg = lib.register_cells(DFF_R, 1)[0]
        tables = synthesize_tables(reg, slew_sensitivity=0.0)
        assert tables.delay.lookup(0.02, 0.01) == pytest.approx(
            reg.clk_to_q + reg.drive_resistance * 0.01
        )

    def test_out_slew_monotone_in_load(self, lib):
        tables = synthesize_tables(lib.cell("INV_X1"))
        assert tables.out_slew.lookup(0.02, 0.05) > tables.out_slew.lookup(0.02, 0.005)


class TestNldmAnalysis:
    def test_zero_sensitivity_matches_linear_timer(self, lib):
        d = make_flop_row(lib, n_flops=3, spacing=2.0, name="nldm0")
        timer = Timer(d, clock_period=1.0)
        state = nldm_arrivals(d, timer, slew_sensitivity=0.0, wire_slew_per_um=0.0)
        for i in range(3):
            dpin = d.cell(f"ff{i}").pin("D")
            linear = timer.arrival_at(dpin)
            table = state[id(dpin)][0]
            assert table == pytest.approx(linear, abs=1e-9)

    def test_sensitivity_slows_paths(self, lib):
        d = make_flop_row(lib, n_flops=2, spacing=2.0, name="nldm1")
        timer = Timer(d, clock_period=1.0)
        base = nldm_arrivals(d, timer, slew_sensitivity=0.0)
        slow = nldm_arrivals(d, timer, slew_sensitivity=0.3)
        dpin = d.cell("ff0").pin("D")
        assert slow[id(dpin)][0] > base[id(dpin)][0]

    def test_slew_degrades_along_wire(self, lib):
        from repro.geometry import Rect

        d = make_flop_row(lib, n_flops=1, spacing=2.0, die=Rect(0, 0, 300, 100), name="nldm2")
        timer = Timer(d, clock_period=1.0)
        state = nldm_arrivals(d, timer, wire_slew_per_um=0.001)
        # The wire from the input port degrades the edge before the buffer;
        # the buffer then restores it (its output slew is load-driven).
        apin = d.cell("ibuf0").pin("A")
        dpin = d.cell("ff0").pin("D")
        assert state[id(apin)][1] > 0.02  # degraded vs the 0.02 port slew
        assert state[id(dpin)][1] < state[id(apin)][1]  # buffer restored it

    def test_skew_offsets_respected(self, lib):
        d = make_flop_row(lib, n_flops=1, name="nldm3")
        timer = Timer(d, clock_period=1.0)
        base = nldm_arrivals(d, timer)
        timer.set_skew("ff0", 0.1)
        skewed = nldm_arrivals(d, timer)
        qpin = d.cell("ff0").pin("Q")
        assert skewed[id(qpin)][0] == pytest.approx(base[id(qpin)][0] + 0.1)
