"""Tests for the STA engine: arrivals, slacks, skew, and QoR summaries."""

import math

import pytest

from repro.geometry import Point, Rect
from repro.library.functional import DFF_R
from repro.netlist import Design
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture
def timer(flop_row) -> Timer:
    return Timer(flop_row, clock_period=1.0)


class TestArrivalPropagation:
    def test_d_arrival_includes_buffer_and_wires(self, flop_row, timer):
        ff = flop_row.cell("ff0")
        d = ff.pin("D")
        a = timer.arrival_at(d)
        assert a is not None and a > 0.0
        # Path: in0 -> wire -> ibuf0 -> wire -> D; must exceed the buffer's
        # intrinsic delay alone.
        buf = flop_row.cell("ibuf0").libcell
        assert a > buf.intrinsic_delay

    def test_q_launch_arrival(self, flop_row, timer):
        ff = flop_row.cell("ff0")
        q = ff.pin("Q")
        a = timer.arrival_at(q)
        lc = ff.register_cell
        assert a is not None
        assert a >= lc.clk_to_q  # clk->q plus drive delay

    def test_unconstrained_pin_has_no_slack(self, flop_row, timer):
        clk_pin = flop_row.cell("ff0").pin("CK")
        assert timer.slack_at(clk_pin) is None


class TestSlacks:
    def test_all_positive_at_relaxed_period(self, flop_row):
        timer = Timer(flop_row, clock_period=10.0)
        s = timer.summary()
        assert s.failing_endpoints == 0
        assert s.tns == 0.0
        assert s.wns > 0.0

    def test_failing_at_tight_period(self, flop_row):
        timer = Timer(flop_row, clock_period=0.01)
        s = timer.summary()
        assert s.failing_endpoints > 0
        assert s.tns < 0.0
        assert s.wns < 0.0

    def test_endpoint_count(self, flop_row, timer):
        s = timer.summary()
        # 4 register D bits + 4 output ports.
        assert s.total_endpoints == 8

    def test_register_slack_pair(self, flop_row, timer):
        rs = timer.register_slack(flop_row.cell("ff0"))
        assert math.isfinite(rs.d_slack)
        assert math.isfinite(rs.q_slack)

    def test_register_slacks_all(self, flop_row, timer):
        slacks = timer.register_slacks()
        assert set(slacks) == {"ff0", "ff1", "ff2", "ff3"}

    def test_non_register_rejected(self, flop_row, timer):
        with pytest.raises(TypeError):
            timer.register_slack(flop_row.cell("ibuf0"))

    def test_moving_register_away_degrades_d_slack(self, lib):
        d = make_flop_row(lib, n_flops=2, die=Rect(0, 0, 400, 400), name="mv")
        timer = Timer(d, clock_period=1.0)
        before = timer.register_slack(d.cell("ff0")).d_slack
        d.cell("ff0").move_to(Point(390.0, 390.0))
        timer.dirty()
        after = timer.register_slack(d.cell("ff0")).d_slack
        assert after < before

    def test_wns_is_min_endpoint_slack(self, flop_row, timer):
        slacks = timer.endpoint_slacks()
        assert timer.summary().wns == pytest.approx(min(e.slack for e in slacks))


class TestUsefulSkew:
    def test_positive_skew_trades_q_for_d(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        base = timer.register_slack(flop_row.cell("ff0"))
        timer.set_skew("ff0", 0.1)
        skewed = timer.register_slack(flop_row.cell("ff0"))
        assert skewed.d_slack == pytest.approx(base.d_slack + 0.1)
        assert skewed.q_slack == pytest.approx(base.q_slack - 0.1)

    def test_skew_on_one_register_does_not_move_others(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        base = timer.register_slack(flop_row.cell("ff1"))
        timer.set_skew("ff0", 0.2)
        after = timer.register_slack(flop_row.cell("ff1"))
        assert after.d_slack == pytest.approx(base.d_slack)
        assert after.q_slack == pytest.approx(base.q_slack)


class TestGraphStructure:
    def test_loop_detection(self, lib):
        d = Design("loop", lib, Rect(0, 0, 10, 10))
        a = d.add_cell("a", "INV_X1", Point(1, 1))
        b = d.add_cell("b", "INV_X1", Point(2, 2))
        n1, n2 = d.add_net("n1"), d.add_net("n2")
        d.connect(a.pin("Z"), n1)
        d.connect(b.pin("A"), n1)
        d.connect(b.pin("Z"), n2)
        d.connect(a.pin("A"), n2)
        timer = Timer(d, clock_period=1.0)
        with pytest.raises(ValueError, match="loop"):
            timer.summary()

    def test_dirty_invalidates_after_edit(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        before = timer.summary().total_endpoints
        from repro.netlist import compose_mbr

        target = lib.register_cells(DFF_R, 2)[0]
        compose_mbr(
            flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
        )
        timer.dirty()
        after = timer.summary().total_endpoints
        assert after == before  # same endpoints, new cells

    def test_reg_to_reg_path(self, lib):
        # ff0.Q -> inv -> ff1.D direct register-to-register path.
        d = Design("r2r", lib, Rect(0, 0, 50, 50))
        clk = d.add_net("clk", is_clock=True)
        from repro.library.cells import PinDirection

        d.connect(d.add_port("clk", PinDirection.INPUT, Point(0, 0)), clk)
        rst = d.add_net("rst")
        d.connect(d.add_port("rst", PinDirection.INPUT, Point(0, 1)), rst)
        ffc = lib.register_cells(DFF_R, 1)[0]
        f0 = d.add_cell("f0", ffc, Point(10, 10))
        f1 = d.add_cell("f1", ffc, Point(30, 10))
        inv = d.add_cell("inv", "INV_X1", Point(20, 10))
        for f in (f0, f1):
            d.connect(f.pin("CK"), clk)
            d.connect(f.pin("RN"), rst)
        n1, n2 = d.add_net("n1"), d.add_net("n2")
        d.connect(f0.pin("Q"), n1)
        d.connect(inv.pin("A"), n1)
        d.connect(inv.pin("Z"), n2)
        d.connect(f1.pin("D"), n2)
        # Tie f0.D so it isn't floating-but-constrained.
        nin = d.add_net("nin")
        d.connect(d.add_port("din", PinDirection.INPUT, Point(0, 10)), nin)
        d.connect(f0.pin("D"), nin)

        timer = Timer(d, clock_period=1.0)
        rs0 = timer.register_slack(f0)
        rs1 = timer.register_slack(f1)
        # f0's Q slack and f1's D slack describe the same path and match.
        assert rs0.q_slack == pytest.approx(rs1.d_slack)
