"""Property tests: ``LookupTable2D.lookup_batch`` == scalar ``lookup``.

The batched NLDM evaluation must be bit-identical to the scalar bilinear
path for every query regime — interior points, exactly-on-grid points, and
the clamped extrapolation corners — including degenerate one-row and
one-column tables, where every query collapses onto the axis.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sta.nldm import LookupTable2D

finite = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def tables(draw):
    n_slews = draw(st.integers(1, 5))
    n_loads = draw(st.integers(1, 5))
    slews = tuple(
        sorted(
            draw(
                st.lists(
                    st.floats(0.001, 2.0),
                    min_size=n_slews,
                    max_size=n_slews,
                    unique=True,
                )
            )
        )
    )
    loads = tuple(
        sorted(
            draw(
                st.lists(
                    st.floats(0.0, 5.0),
                    min_size=n_loads,
                    max_size=n_loads,
                    unique=True,
                )
            )
        )
    )
    values = tuple(
        tuple(draw(finite) for _ in loads) for _ in slews
    )
    return LookupTable2D(slews=slews, loads=loads, values=values)


@st.composite
def queries(draw, table):
    """Query points biased toward the interesting regimes: on-grid values,
    below-minimum and above-maximum clamps, and interior off-grid points."""

    def axis_point(axis):
        kind = draw(st.integers(0, 3))
        if kind == 0:  # exactly on a grid line
            return draw(st.sampled_from(axis))
        if kind == 1:  # below the axis: clamp to the first row/column
            return axis[0] - draw(st.floats(0.0, 3.0))
        if kind == 2:  # above the axis: clamp to the last row/column
            return axis[-1] + draw(st.floats(0.0, 3.0))
        return draw(st.floats(axis[0], axis[-1]))  # interior (maybe on-grid)

    n = draw(st.integers(1, 8))
    return (
        [axis_point(table.slews) for _ in range(n)],
        [axis_point(table.loads) for _ in range(n)],
    )


class TestLookupBatchEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_batch_matches_scalar_bit_for_bit(self, data):
        table = data.draw(tables())
        slews, loads = data.draw(queries(table))
        batch = table.lookup_batch(np.array(slews), np.array(loads))
        for k, (s, ld) in enumerate(zip(slews, loads)):
            assert batch[k] == table.lookup(s, ld)

    def test_one_row_table_clamps_every_slew(self):
        t = LookupTable2D(slews=(0.1,), loads=(0.0, 1.0), values=((2.0, 4.0),))
        slews = np.array([-5.0, 0.1, 0.05, 7.0])
        loads = np.array([0.0, 0.5, 1.0, 2.0])
        batch = t.lookup_batch(slews, loads)
        expected = [t.lookup(s, ld) for s, ld in zip(slews, loads)]
        assert batch.tolist() == expected
        # One slew row: the answer depends on load alone.
        assert batch[0] == 2.0 and batch[1] == 3.0
        assert batch[2] == 4.0 and batch[3] == 4.0  # load clamped high

    def test_one_column_table_clamps_every_load(self):
        t = LookupTable2D(slews=(0.1, 0.2), loads=(1.0,), values=((3.0,), (5.0,)))
        slews = np.array([0.1, 0.15, 0.2, 0.3, 0.0])
        loads = np.array([-1.0, 1.0, 9.0, 1.0, 1.0])
        batch = t.lookup_batch(slews, loads)
        expected = [t.lookup(s, ld) for s, ld in zip(slews, loads)]
        assert batch.tolist() == expected
        assert batch[1] == 4.0  # midpoint of the slew axis

    def test_one_by_one_table_is_constant(self):
        t = LookupTable2D(slews=(0.5,), loads=(2.0,), values=((7.25,),))
        slews = np.array([-1.0, 0.5, 3.0])
        loads = np.array([0.0, 2.0, 100.0])
        assert t.lookup_batch(slews, loads).tolist() == [7.25, 7.25, 7.25]

    def test_empty_batch(self):
        t = LookupTable2D(slews=(0.1, 0.2), loads=(0.0, 1.0), values=((0.0, 1.0), (2.0, 3.0)))
        out = t.lookup_batch(np.zeros(0), np.zeros(0))
        assert out.shape == (0,)
