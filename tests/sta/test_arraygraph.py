"""Array timing kernel vs the dict reference timer: bit-identical, always.

The CSR-backed :class:`~repro.sta.arraygraph.ArrayKernel` is the default
propagation engine (``REPRO_STA_KERNEL=array``); the per-node dict walk
stays as the reference implementation.  These tests pin the kernel's full
sweeps, graph patching, and masked dirty-cone retimes to the reference
semantics through the same oracle the edit-storm fuzzer uses.
"""

from __future__ import annotations

import random

import pytest

from repro.check import assert_clean, diff_arraytimer_vs_dict, diff_timer_vs_fresh
from repro.geometry import Point
from repro.library.functional import DFF_R
from repro.netlist import compose_mbr
from repro.sta import Timer
from repro.sta.timer import KERNEL_ENV


class TestKernelSelection:
    def test_array_is_the_default(self, flop_row, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert Timer(flop_row, clock_period=1.0).kernel == "array"

    def test_env_opt_out_selects_dict(self, flop_row, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "dict")
        assert Timer(flop_row, clock_period=1.0).kernel == "dict"

    def test_explicit_kernel_beats_env(self, flop_row, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "dict")
        assert Timer(flop_row, clock_period=1.0, kernel="array").kernel == "array"

    def test_unknown_kernel_rejected(self, flop_row):
        with pytest.raises(ValueError, match="unknown timing kernel"):
            Timer(flop_row, clock_period=1.0, kernel="csr")


class TestArrayVsDictEquivalence:
    def test_full_timing_matches(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0, kernel="array")
        timer.summary()
        assert_clean(diff_arraytimer_vs_dict(timer))

    def test_summary_values_match_exactly(self, flop_row):
        array = Timer(flop_row, clock_period=1.0, kernel="array")
        ref = Timer(flop_row.clone(), clock_period=1.0, kernel="dict")
        a, d = array.summary(), ref.summary()
        assert a.wns == d.wns
        assert a.tns == d.tns

    def test_incremental_retime_matches_after_compose(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0, kernel="array")
        timer.summary()
        target = lib.register_cells(DFF_R, 2)[0]
        record = compose_mbr(
            flop_row,
            [flop_row.cell("ff0"), flop_row.cell("ff1")],
            target,
            Point(11, 50),
        )
        timer.apply_change(record)
        assert_clean(diff_arraytimer_vs_dict(timer))
        assert_clean(diff_timer_vs_fresh(timer))
        assert timer.stats.incremental_timings == 1

    def test_move_storm_stays_identical(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0, kernel="array")
        timer.summary()
        rng = random.Random(3)
        cells = [c for c in flop_row.cells.values() if not c.is_register]
        for step in range(12):
            cell = rng.choice(cells)
            with flop_row.track() as tracker:
                flop_row.move_cell(
                    cell,
                    Point(
                        min(max(0.0, cell.origin.x + rng.uniform(-8, 8)), 90.0),
                        min(max(0.0, cell.origin.y + rng.uniform(-8, 8)), 90.0),
                    ),
                )
            timer.apply_change(tracker.record())
            if step % 4 == 0:
                timer.summary()
        assert_clean(diff_arraytimer_vs_dict(timer))
        assert_clean(diff_timer_vs_fresh(timer))
        assert timer.stats.kernel_sweeps > 0
