"""Tests for hold (min-delay) analysis."""

import pytest

from repro.sta import Timer

from tests.conftest import make_flop_row


class TestHoldAnalysis:
    def test_fixture_design_hold_clean(self, flop_row):
        # Input paths go through a buffer and real wire: comfortably slower
        # than any hold requirement.
        timer = Timer(flop_row, clock_period=1.0)
        s = timer.hold_summary()
        assert s.total_endpoints == 4
        assert s.failing_endpoints == 0
        assert s.wns > 0.0

    def test_hold_independent_of_period(self, flop_row):
        t1 = Timer(flop_row, clock_period=1.0)
        t2 = Timer(flop_row, clock_period=100.0)
        assert t1.hold_summary().wns == pytest.approx(t2.hold_summary().wns)

    def test_capture_skew_tightens_hold(self, lib):
        # Delaying a capture register's clock eats its hold margin 1:1.
        d = make_flop_row(lib, n_flops=1, name="hold")
        timer = Timer(d, clock_period=1.0)
        base = timer.hold_summary().wns
        timer.set_skew("ff0", 0.02)
        assert timer.hold_summary().wns == pytest.approx(base - 0.02)

    def test_min_arrival_not_greater_than_max(self, lib):
        # Reconvergent paths: min arrival <= max arrival at the endpoint.
        from repro.geometry import Point, Rect
        from repro.library.cells import PinDirection
        from repro.library.functional import DFF_R
        from repro.netlist import Design

        d = Design("reconv", lib, Rect(0, 0, 60, 60))
        clk = d.add_net("clk", is_clock=True)
        rst = d.add_net("rst")
        d.connect(d.add_port("clk", PinDirection.INPUT, Point(0, 0)), clk)
        d.connect(d.add_port("rst", PinDirection.INPUT, Point(0, 1)), rst)
        ffc = lib.register_cells(DFF_R, 1)[0]
        src = d.add_cell("src", ffc, Point(5, 30))
        dst = d.add_cell("dst", ffc, Point(50, 30))
        for f in (src, dst):
            d.connect(f.pin("CK"), clk)
            d.connect(f.pin("RN"), rst)
        d.connect(d.add_port("din", PinDirection.INPUT, Point(0, 30)), d.add_net("nin"))
        d.connect(src.pin("D"), d.net("nin"))
        nq = d.add_net("nq")
        d.connect(src.pin("Q"), nq)
        # Short path: direct inverter.  Long path: three inverters.
        short = d.add_cell("s0", "INV_X1", Point(25, 30))
        d.connect(short.pin("A"), nq)
        nshort = d.add_net("nshort")
        d.connect(short.pin("Z"), nshort)
        prev = nq
        for i in range(3):
            g = d.add_cell(f"l{i}", "INV_X1", Point(15 + 8 * i, 40))
            d.connect(g.pin("A"), prev)
            prev = d.add_net(f"nl{i}")
            d.connect(g.pin("Z"), prev)
        mux = d.add_cell("mx", "NAND2_X1", Point(45, 30))
        d.connect(mux.pin("A"), nshort)
        d.connect(mux.pin("B"), prev)
        nmux = d.add_net("nmux")
        d.connect(mux.pin("Z"), nmux)
        d.connect(dst.pin("D"), nmux)

        timer = Timer(d, clock_period=5.0)
        dpin = dst.pin("D")
        max_arr = timer.arrival_at(dpin)
        min_arr = timer._compute_min_arrivals()[id(dpin)]
        assert min_arr < max_arr

    def test_hold_survives_composition(self, lib):
        from repro.core.composer import compose_design

        d = make_flop_row(lib, n_flops=6, spacing=2.0, name="holdc")
        timer = Timer(d, clock_period=10.0)
        before = timer.hold_summary()
        compose_design(d, timer)
        after = timer.hold_summary()
        assert after.failing_endpoints == 0
        assert after.total_endpoints == before.total_endpoints
