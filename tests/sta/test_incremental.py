"""Incremental STA: change-driven graph patching and dirty-cone retiming.

Every test compares the incremental timer (warm state + ``apply_change``)
against a fresh full :class:`Timer` over the same design — the contract is
bit-identical results, not approximate ones, because the dirty-cone retime
recomputes each touched node with the same arithmetic as the batch pass.
"""

from __future__ import annotations

import random

import pytest

from repro.check import assert_clean, diff_timer_vs_fresh
from repro.geometry import Point
from repro.library.functional import DFF_R
from repro.netlist import compose_mbr
from repro.sta import Timer
from repro.sta.timer import TimingAuditError


def _assert_matches_fresh(timer: Timer, period: float) -> None:
    """The warm timer's every query equals a from-scratch timer's."""
    assert period == timer.clock_period
    assert_clean(diff_timer_vs_fresh(timer))


class TestApplyChange:
    def test_compose_retimes_incrementally(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()  # warm: one full propagation
        target = lib.register_cells(DFF_R, 2)[0]
        record = compose_mbr(
            flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
        )
        timer.apply_change(record)
        _assert_matches_fresh(timer, 1.0)
        assert timer.stats.full_timings == 1
        assert timer.stats.incremental_timings == 1
        assert timer.stats.changes_applied == 1
        # The merge's cone is strictly smaller than the whole graph.
        assert 0 < timer.stats.last_retimed_nodes < timer.stats.graph_nodes

    def test_chained_composes_stay_consistent(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()
        t2 = lib.register_cells(DFF_R, 2)[0]
        t4 = lib.register_cells(DFF_R, 4)[0]
        m1 = compose_mbr(flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], t2, Point(11, 50))
        timer.apply_change(m1)
        timer.summary()
        m2 = compose_mbr(flop_row, [flop_row.cell("ff2"), flop_row.cell("ff3")], t2, Point(19, 50))
        timer.apply_change(m2)
        timer.summary()
        m4 = compose_mbr(flop_row, [m1.new_cell, m2.new_cell], t4, Point(14, 50))
        timer.apply_change(m4)
        _assert_matches_fresh(timer, 1.0)
        assert timer.stats.incremental_timings == 3

    def test_change_before_first_query_costs_nothing(self, lib, flop_row):
        # No cached graph yet: apply_change must not build one just to patch it.
        timer = Timer(flop_row, clock_period=1.0)
        target = lib.register_cells(DFF_R, 2)[0]
        record = compose_mbr(
            flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
        )
        timer.apply_change(record)
        assert timer.stats.incremental_timings == 0
        _assert_matches_fresh(timer, 1.0)
        assert timer.stats.full_timings == 1
        assert timer.stats.incremental_timings == 0

    def test_resize_retimes_incrementally(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()
        ff = flop_row.cell("ff2")
        current = ff.register_cell
        options = [
            c
            for c in lib.register_cells(
                current.func_class, 1, scan_styles=(current.scan_style,)
            )
            if c.name != current.name
        ]
        if not options:
            pytest.skip("library has a single 1-bit drive for this class")
        with flop_row.track() as tracker:
            flop_row.swap_libcell(ff, options[0])
        timer.apply_change(tracker.record())
        _assert_matches_fresh(timer, 1.0)
        assert timer.stats.incremental_timings == 1

    def test_move_retimes_incrementally(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        before = timer.register_slack(flop_row.cell("ff0")).d_slack
        with flop_row.track() as tracker:
            flop_row.move_cell(flop_row.cell("ff0"), Point(90.0, 90.0))
        timer.apply_change(tracker.record())
        _assert_matches_fresh(timer, 1.0)
        assert timer.register_slack(flop_row.cell("ff0")).d_slack < before
        assert timer.stats.incremental_timings >= 1

    def test_empty_record_is_free(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()
        with flop_row.track() as tracker:
            pass
        timer.apply_change(tracker.record())
        assert timer.stats.changes_applied == 0
        timer.summary()
        assert timer.stats.incremental_timings == 0


class TestSkewLifecycle:
    def test_removed_cell_skew_purged(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.set_skew("ff0", 0.1)
        timer.set_skew("ff2", 0.05)
        target = lib.register_cells(DFF_R, 2)[0]
        record = compose_mbr(
            flop_row, [flop_row.cell("ff0"), flop_row.cell("ff1")], target, Point(11, 50)
        )
        timer.apply_change(record)
        # ff0 died with the merge; its offset must not lie in wait for a
        # future cell that reuses the name.  ff2 survives untouched.
        assert "ff0" not in timer.skew
        assert timer.skew == {"ff2": 0.05}
        _assert_matches_fresh(timer, 1.0)

    def test_zero_skew_on_unskewed_register_is_noop(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()
        timer.set_skew("ff0", 0.0)
        assert "ff0" not in timer.skew
        timer.summary()
        assert timer.stats.full_timings == 1
        assert timer.stats.incremental_timings == 0

    def test_repeated_skew_is_noop(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.set_skew("ff1", 0.07)
        timer.summary()
        timer.set_skews({"ff1": 0.07, "ff0": 0.0})
        timer.summary()
        assert timer.stats.incremental_timings == 0

    def test_skew_change_retimes_only_cones(self, flop_row):
        timer = Timer(flop_row, clock_period=1.0)
        timer.summary()
        timer.set_skew("ff0", 0.1)
        _assert_matches_fresh(timer, 1.0)
        assert timer.stats.incremental_timings == 1
        assert 0 < timer.stats.last_retimed_nodes < timer.stats.graph_nodes

    def test_skew_then_removal_then_reuse_of_name(self, lib, flop_row):
        # The sharpest version of the stale-skew hazard: merge ff0+ff1, then
        # name the *next* merge's cell "ff0".  Its timing must be skew-free.
        timer = Timer(flop_row, clock_period=1.0)
        timer.set_skew("ff0", 0.3)
        timer.summary()
        target = lib.register_cells(DFF_R, 2)[0]
        timer.apply_change(
            compose_mbr(
                flop_row,
                [flop_row.cell("ff0"), flop_row.cell("ff1")],
                target,
                Point(11, 50),
            )
        )
        timer.apply_change(
            compose_mbr(
                flop_row,
                [flop_row.cell("ff2"), flop_row.cell("ff3")],
                target,
                Point(19, 50),
                name="ff0",
            )
        )
        assert timer.skew == {}
        _assert_matches_fresh(timer, 1.0)


class TestAuditMode:
    def test_audit_passes_on_tracked_edits(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=1.0, audit_mode=True)
        timer.summary()
        target = lib.register_cells(DFF_R, 2)[0]
        timer.apply_change(
            compose_mbr(
                flop_row,
                [flop_row.cell("ff0"), flop_row.cell("ff1")],
                target,
                Point(11, 50),
            )
        )
        timer.set_skew("mbr_ff0" if "mbr_ff0" in flop_row.cells else "ff2", 0.05)
        timer.summary()  # audits silently when incremental == full

    def test_audit_catches_untracked_edit(self, flop_row):
        # Mutate the design behind the timer's back, then make a legitimate
        # tracked change: the audit's from-scratch rebuild sees the sneaky
        # move, the patched graph doesn't, and the divergence is reported.
        timer = Timer(flop_row, clock_period=1.0, audit_mode=True)
        timer.summary()
        flop_row.cell("ff3").move_to(Point(95.0, 95.0))  # untracked!
        timer.set_skew("ff0", 0.1)
        with pytest.raises(TimingAuditError):
            timer.summary()

    def test_env_var_enables_audit(self, flop_row, monkeypatch):
        monkeypatch.setenv("REPRO_STA_AUDIT", "1")
        assert Timer(flop_row, clock_period=1.0).audit_mode
        monkeypatch.setenv("REPRO_STA_AUDIT", "0")
        assert not Timer(flop_row, clock_period=1.0).audit_mode


class TestRandomizedEditSequence:
    """Satellite: a seeded D1 edit storm, equivalence-checked every step.

    The edits come from the shared :mod:`repro.check.fuzz` proposers (the
    same ops the ``repro check`` storm runner draws), applied through an
    :class:`~repro.flow.session.EcoSession` so the timer is patched the
    way the production flow patches it; after every op the shared
    incremental-vs-fresh oracle must report nothing.
    """

    def test_d1_edit_sequence_matches_fresh_timer(self, lib):
        from repro.bench import generate_design, preset
        from repro.check.fuzz import EditWorld, apply_op, propose_op
        from repro.flow.session import EcoSession

        bundle = generate_design(preset("D1", scale=0.1), lib)
        timer = bundle.timer
        world = EditWorld(
            EcoSession(bundle.design, timer, bundle.scan_model)
        )
        rng = random.Random(20170618)
        timer.summary()  # warm

        applied = 0
        for _ in range(14):
            op = propose_op(world, rng)
            if op is not None and apply_op(world, op):
                applied += 1
            _assert_matches_fresh(timer, bundle.clock_period)
        assert applied >= 10  # the storm actually exercised the edit paths
        # The whole sequence ran incrementally: one warm-up full propagation,
        # every edit absorbed by dirty-cone retimes.
        assert timer.stats.full_timings == 1
        assert timer.stats.incremental_timings >= applied // 2
