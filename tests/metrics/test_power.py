"""Tests for the power estimator."""

import pytest

from repro.bench import generate_design, preset
from repro.core.composer import compose_design
from repro.metrics.power import estimate_power


class TestPowerModel:
    def test_positive_components(self, flop_row):
        p = estimate_power(flop_row, clock_period_ns=1.0)
        assert p.clock_dynamic_mw > 0
        assert p.data_dynamic_mw > 0
        assert p.leakage_mw > 0
        assert p.total_mw == pytest.approx(
            p.clock_dynamic_mw + p.data_dynamic_mw + p.leakage_mw
        )

    def test_power_scales_with_frequency(self, flop_row):
        slow = estimate_power(flop_row, clock_period_ns=2.0)
        fast = estimate_power(flop_row, clock_period_ns=1.0)
        assert fast.clock_dynamic_mw == pytest.approx(2 * slow.clock_dynamic_mw)
        assert fast.leakage_mw == pytest.approx(slow.leakage_mw)  # static

    def test_power_scales_with_vdd_squared(self, flop_row):
        low = estimate_power(flop_row, clock_period_ns=1.0, vdd=0.8)
        high = estimate_power(flop_row, clock_period_ns=1.0, vdd=1.6)
        assert high.clock_dynamic_mw == pytest.approx(4 * low.clock_dynamic_mw)

    def test_activity_affects_only_data(self, flop_row):
        quiet = estimate_power(flop_row, clock_period_ns=1.0, data_activity=0.1)
        busy = estimate_power(flop_row, clock_period_ns=1.0, data_activity=0.2)
        assert busy.data_dynamic_mw == pytest.approx(2 * quiet.data_dynamic_mw)
        assert busy.clock_dynamic_mw == pytest.approx(quiet.clock_dynamic_mw)

    def test_invalid_period(self, flop_row):
        with pytest.raises(ValueError):
            estimate_power(flop_row, clock_period_ns=0.0)

    def test_clock_fraction_in_plausible_band(self, lib):
        # The paper: clock power is 20-40% of dynamic power for synchronous
        # designs.  Our register-rich benchmarks land in/near that band.
        b = generate_design(preset("D1", scale=0.15), lib)
        p = estimate_power(b.design, clock_period_ns=b.clock_period)
        assert 0.10 < p.clock_fraction < 0.70

    def test_composition_reduces_clock_power(self, lib):
        """The headline claim: MBR composition cuts clock power."""
        b = generate_design(preset("D2", scale=0.15), lib)
        before = estimate_power(b.design, clock_period_ns=b.clock_period)
        compose_design(b.design, b.timer, b.scan_model)
        after = estimate_power(b.design, clock_period_ns=b.clock_period)
        assert after.clock_dynamic_mw < before.clock_dynamic_mw
        assert after.total_mw < before.total_mw
