"""Shared fixtures: a default library and small hand-built designs.

Also registers the Hypothesis example-budget profiles used by the
property suite (``tests/check/test_properties.py``):

``dev`` (default)
    6 examples per property — keeps the tier-1 run fast locally.
``ci``
    30 examples, derandomized — the exhaustive, deterministic budget CI
    selects with ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # pragma: no cover - property tests skip without it
    pass
else:
    _suppress = [
        HealthCheck.too_slow,
        HealthCheck.filter_too_much,
        HealthCheck.data_too_large,
    ]
    settings.register_profile(
        "ci",
        max_examples=30,
        deadline=None,
        derandomize=True,
        suppress_health_check=_suppress,
    )
    settings.register_profile(
        "dev", max_examples=6, deadline=None, suppress_health_check=_suppress
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.geometry import Point, Rect
from repro.library import CellLibrary, default_library
from repro.library.cells import PinDirection
from repro.library.functional import DFF_R, DFF_R_S
from repro.netlist import Design


@pytest.fixture(scope="session")
def lib() -> CellLibrary:
    return default_library()


def make_flop_row(
    lib: CellLibrary,
    n_flops: int = 4,
    func_class=DFF_R,
    spacing: float = 4.0,
    die: Rect = Rect(0, 0, 100, 100),
    name: str = "row",
) -> Design:
    """A design with ``n_flops`` 1-bit registers on one row.

    Each register's D is driven from an input port through a buffer, and its
    Q drives a buffer to an output port; all share one clock and one reset
    net.  This is the minimal structure with real fan-in/fan-out for STA and
    placement-LP tests.
    """
    design = Design(name, lib, die)
    clk = design.add_net("clk", is_clock=True)
    rst = design.add_net("rst")
    clk_port = design.add_port("clk", PinDirection.INPUT, Point(0.0, die.yhi / 2))
    rst_port = design.add_port("rst", PinDirection.INPUT, Point(0.0, die.yhi / 2 - 2))
    design.connect(clk_port, clk)
    design.connect(rst_port, rst)

    ff_cell = lib.register_cells(func_class, 1)[0]
    for i in range(n_flops):
        x = 10.0 + i * spacing
        ff = design.add_cell(f"ff{i}", ff_cell, Point(x, 50.0))
        design.connect(ff.pin(ff_cell.clock_pin_name), clk)
        if "RN" in ff.pins:
            design.connect(ff.pin("RN"), rst)

        din = design.add_port(f"in{i}", PinDirection.INPUT, Point(0.0, 40.0 + i))
        dbuf = design.add_cell(f"ibuf{i}", lib.cell("BUF_X1"), Point(x - 2.0, 50.0))
        n_in = design.add_net(f"n_in{i}")
        n_d = design.add_net(f"n_d{i}")
        design.connect(din, n_in)
        design.connect(dbuf.pin("A"), n_in)
        design.connect(dbuf.pin("Z"), n_d)
        design.connect(ff.pin("D"), n_d)

        qbuf = design.add_cell(f"obuf{i}", lib.cell("BUF_X1"), Point(x + 2.0, 50.0))
        dout = design.add_port(f"out{i}", PinDirection.OUTPUT, Point(die.xhi, 40.0 + i))
        n_q = design.add_net(f"n_q{i}")
        n_out = design.add_net(f"n_out{i}")
        design.connect(ff.pin("Q"), n_q)
        design.connect(qbuf.pin("A"), n_q)
        design.connect(qbuf.pin("Z"), n_out)
        design.connect(dout, n_out)

        if func_class.is_scan:
            # Stitch a simple scan chain ff0 -> ff1 -> ... with SE from a port.
            pass
    if func_class.is_scan:
        se = design.add_net("se")
        se_port = design.add_port("se", PinDirection.INPUT, Point(0.0, 10.0))
        design.connect(se_port, se)
        si_port = design.add_port("si", PinDirection.INPUT, Point(0.0, 12.0))
        so_port = design.add_port("so", PinDirection.OUTPUT, Point(die.xhi, 12.0))
        prev = None
        for i in range(n_flops):
            ff = design.cell(f"ff{i}")
            design.connect(ff.pin("SE"), se)
            if prev is None:
                n_si = design.add_net("n_si")
                design.connect(si_port, n_si)
                design.connect(ff.pin("SI"), n_si)
            else:
                n = design.add_net(f"n_scan{i}")
                design.connect(prev.pin("SO"), n)
                design.connect(ff.pin("SI"), n)
            prev = ff
        n_so = design.add_net("n_so")
        design.connect(prev.pin("SO"), n_so)
        design.connect(so_port, n_so)
    return design


@pytest.fixture
def flop_row(lib) -> Design:
    return make_flop_row(lib)


@pytest.fixture
def scan_row(lib) -> Design:
    return make_flop_row(lib, func_class=DFF_R_S, name="scan_row")
