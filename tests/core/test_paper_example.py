"""Reproduction of the paper's worked example (Figs. 1-3).

These tests pin the behaviour of the weighting and ILP layers to the
numbers printed in the paper: the candidate weight table of Fig. 3 and the
two selected solutions (with and without incomplete MBRs).
"""

import math

import pytest

from repro.bench.paper_example import (
    PAPER_WIDTHS,
    build_paper_example,
    paper_example_graph,
)
from repro.core.candidates import CandidateConfig, enumerate_candidates
from repro.core.compatibility import analyze_registers
from repro.core.weights import candidate_weight
from repro.ilp import SetPartitionProblem, solve_set_partition
from repro.sta import Timer


@pytest.fixture(scope="module")
def example(lib):
    design = build_paper_example(lib)
    timer = Timer(design, clock_period=5.0)
    infos = analyze_registers(design, timer)
    graph = paper_example_graph(design, infos)
    return design, infos, graph


def _weight(infos, members):
    all_regs = list(infos.values())
    w, _ = candidate_weight([infos[m] for m in members], all_regs)
    return w


# Fig. 3's weight table.  BF and CF print 0.50 in the figure, but carry
# 3 bits (B=1, F=2), so the Section 3.2 formula gives 1/3; we follow the
# formula (see EXPERIMENTS.md).  CE (5 bits, blocked by A in our Fig. 2
# reconstruction) is absent from the figure; its weight is asserted
# separately as blocked.
FIG3_WEIGHTS = {
    ("A",): 1.0,
    ("B",): 1.0,
    ("C",): 1.0,
    ("D",): 1.0,
    ("E",): 1.0,
    ("F",): 1.0,
    ("A", "B"): 0.5,
    ("A", "D"): 0.5,
    ("A", "C"): 0.5,
    ("B", "D"): 0.5,
    ("C", "D"): 0.5,
    ("B", "C"): 4.0,
    ("A", "B", "D"): 1 / 3,
    ("B", "C", "D"): 1 / 3,
    ("A", "C", "D"): 1 / 3,
    ("A", "B", "C"): 6.0,
    ("A", "B", "C", "D"): 0.25,
    ("B", "F"): 1 / 3,
    ("C", "F"): 1 / 3,
    ("B", "C", "F"): 8.0,
    ("A", "E"): 0.2,
    ("A", "E", "C"): 1 / 6,
}


class TestFig3Weights:
    @pytest.mark.parametrize("members,expected", sorted(FIG3_WEIGHTS.items()))
    def test_candidate_weight(self, example, members, expected):
        _, infos, _ = example
        assert _weight(infos, list(members)) == pytest.approx(expected, rel=1e-9)

    def test_blocker_identities(self, example):
        """D is the register blocking {A,B,C}, {B,C}, and {B,C,F}."""
        from repro.core.weights import blocking_registers

        _, infos, _ = example
        all_regs = list(infos.values())
        for members in (["A", "B", "C"], ["B", "C"], ["B", "C", "F"]):
            blockers = blocking_registers([infos[m] for m in members], all_regs)
            assert [b.name for b in blockers] == ["D"]

    def test_ce_is_blocked_in_reconstruction(self, example):
        # CE spans from C up to E, and A sits between them.
        _, infos, _ = example
        assert _weight(infos, ["C", "E"]) == pytest.approx(5 * 2.0)  # b=5, n=1


class TestCandidateEnumeration:
    def test_all_fig3_candidates_enumerated_with_incomplete(self, example, lib):
        design, infos, graph = example
        cands = enumerate_candidates(
            graph,
            list(infos.values()),
            lib,
            config=CandidateConfig(
                allow_incomplete=True, max_incomplete_area_overhead=math.inf
            ),
        )
        by_members = {tuple(sorted(c.members)): c for c in cands}
        for members, expected in FIG3_WEIGHTS.items():
            key = tuple(sorted(members))
            assert key in by_members, f"candidate {members} missing"
            assert by_members[key].weight == pytest.approx(expected, rel=1e-9)

    def test_incomplete_candidates_excluded_without_flag(self, example, lib):
        design, infos, graph = example
        cands = enumerate_candidates(
            graph, list(infos.values()), lib, config=CandidateConfig(allow_incomplete=False)
        )
        members = {tuple(sorted(c.members)) for c in cands}
        # 5- and 6-bit groups need an 8-bit incomplete cell.
        assert ("A", "E") not in members
        assert ("A", "C", "E") not in members
        assert ("A", "B", "C", "D") in members

    def test_incomplete_mapped_to_8bit(self, example, lib):
        design, infos, graph = example
        cands = enumerate_candidates(
            graph,
            list(infos.values()),
            lib,
            config=CandidateConfig(
                allow_incomplete=True, max_incomplete_area_overhead=math.inf
            ),
        )
        ae = next(c for c in cands if tuple(sorted(c.members)) == ("A", "E"))
        assert ae.is_incomplete
        assert ae.mapping.cell.width_bits == 8
        assert ae.mapping.spare_bits == 3

    def test_area_rule_rejects_ae_at_5_percent(self, example, lib):
        # "In reality, incomplete register AE would have been rejected since
        # its area is significantly larger" — the flow's 5% overhead cap
        # rejects it.
        design, infos, graph = example
        cands = enumerate_candidates(
            graph,
            list(infos.values()),
            lib,
            config=CandidateConfig(allow_incomplete=True, max_incomplete_area_overhead=0.05),
        )
        members = {tuple(sorted(c.members)) for c in cands}
        assert ("A", "E") not in members


def _solve(infos, candidates):
    names = sorted(PAPER_WIDTHS)
    index = {n: i for i, n in enumerate(names)}
    problem = SetPartitionProblem(
        n_elements=len(names),
        subsets=tuple(frozenset(index[m] for m in c.members) for c in candidates),
        weights=tuple(c.weight for c in candidates),
    )
    sol = solve_set_partition(problem)
    chosen = [tuple(sorted(candidates[i].members)) for i in sol.chosen]
    return sol, sorted(chosen)


class TestILPSelection:
    def test_solution_without_incomplete(self, example, lib):
        """Fig. 3: {B,F} + {A,C,D} + E (or the symmetric {C,F} + {A,B,D})."""
        design, infos, graph = example
        cands = enumerate_candidates(
            graph, list(infos.values()), lib, config=CandidateConfig(allow_incomplete=False)
        )
        sol, chosen = _solve(infos, cands)
        assert sol.objective == pytest.approx(1.0 + 2 / 3)
        assert len(chosen) == 3  # six registers -> three
        assert chosen in (
            [("A", "C", "D"), ("B", "F"), ("E",)],
            [("A", "B", "D"), ("C", "F"), ("E",)],
        )

    def test_solution_with_incomplete(self, example, lib):
        """Fig. 3 with incomplete MBRs: {A,E} (8-bit incomplete) + {C,D} +
        {B,F} — same final register count, lower cost."""
        design, infos, graph = example
        cands = enumerate_candidates(
            graph,
            list(infos.values()),
            lib,
            config=CandidateConfig(
                allow_incomplete=True, max_incomplete_area_overhead=math.inf
            ),
        )
        sol, chosen = _solve(infos, cands)
        assert sol.objective == pytest.approx(0.2 + 0.5 + 1 / 3)
        assert len(chosen) == 3
        assert chosen in (
            [("A", "E"), ("B", "F"), ("C", "D")],
            [("A", "E"), ("B", "D"), ("C", "F")],
        )
