"""Parallel solve fan-out must be bit-identical to the serial path.

The solve stage's specs are pure functions of the design, and
``solve_subproblems`` preserves spec order, so any worker count must give
exactly the same composition — same groups, same weights, same final
register counts.  This locks the D1/D2 presets (the acceptance designs)
against nondeterministic scheduling artifacts.
"""

import pytest

from repro.bench import generate_design, preset
from repro.core.composer import ComposerConfig, compose_design


def _compose(lib, name: str, scale: float, workers: int):
    bundle = generate_design(preset(name, scale=scale), lib)
    result = compose_design(
        bundle.design, bundle.timer, bundle.scan_model, workers=workers
    )
    return bundle.design, result


@pytest.mark.parametrize("name,scale", [("D1", 0.12), ("D2", 0.1)])
def test_workers_4_bit_identical_to_serial(lib, name, scale):
    design1, serial = _compose(lib, name, scale, workers=1)
    design4, parallel = _compose(lib, name, scale, workers=4)

    def groups(result):
        return [
            (set(g.members), g.weight, g.bits, g.libcell, g.incomplete)
            for g in result.composed
        ]

    assert groups(serial) == groups(parallel)
    assert serial.registers_after == parallel.registers_after
    assert serial.registers_before == parallel.registers_before
    assert serial.ilp_nodes == parallel.ilp_nodes
    assert design1.total_register_count() == design4.total_register_count()
    assert design1.width_histogram() == design4.width_histogram()


def test_workers_override_beats_config(lib):
    bundle = generate_design(preset("D1", scale=0.08), lib)
    config = ComposerConfig(workers=1)
    result = compose_design(
        bundle.design, bundle.timer, bundle.scan_model, config, workers=2
    )
    # The solve stage records the worker count it actually used.
    solve_records = [r for r in result.trace.records if r.name == "solve"]
    assert solve_records
    assert all(r.counters["workers"] == 2 for r in solve_records)
