"""Parallel solve fan-out must be bit-identical to the serial path.

The solve stage's specs are pure functions of the design, and
``solve_subproblems`` preserves spec order, so any worker count must give
exactly the same composition — same groups, same weights, same final
register counts.  This locks the D1/D2 presets (the acceptance designs)
against nondeterministic scheduling artifacts.
"""

import pytest

from repro.bench import generate_design, preset
from repro.check import assert_clean, diff_serial_vs_parallel
from repro.core.composer import ComposerConfig, compose_design


@pytest.mark.parametrize("name,scale", [("D1", 0.12), ("D2", 0.1)])
def test_workers_4_bit_identical_to_serial(lib, name, scale):
    def make_world():
        bundle = generate_design(preset(name, scale=scale), lib)
        return bundle.design, bundle.timer, bundle.scan_model

    assert_clean(diff_serial_vs_parallel(make_world, workers=4))


def test_workers_override_beats_config(lib):
    bundle = generate_design(preset("D1", scale=0.08), lib)
    config = ComposerConfig(workers=1)
    result = compose_design(
        bundle.design, bundle.timer, bundle.scan_model, config, workers=2
    )
    # The solve stage records the worker count it actually used.
    solve_records = [r for r in result.trace.records if r.name == "solve"]
    assert solve_records
    assert all(r.counters["workers"] == 2 for r in solve_records)
