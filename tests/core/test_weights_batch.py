"""Equivalence: batched blocker counting vs the scalar field path."""

from hypothesis import given, settings, strategies as st

from repro.core.compatibility import RegisterInfo
from repro.core.weights import (
    RegisterField,
    candidate_weight,
    candidate_weights_batch,
)
from repro.geometry import Rect
from repro.library.functional import DFF_R


class _FakeCell:
    """Just enough of a Cell for the weighting code paths."""

    def __init__(self, name, x, y, w=2.0, h=1.0):
        self.name = name
        self._rect = Rect(x, y, x + w, y + h)

    @property
    def footprint(self):
        return self._rect


def _info(name, x, y, w=2.0, bits=1):
    cell = _FakeCell(name, x, y, w)
    center = cell.footprint.center
    return RegisterInfo(
        cell=cell,
        func_class=DFF_R,
        bits=bits,
        composable=True,
        reason="",
        center_xy=(center.x, center.y),
    )


coords = st.integers(min_value=0, max_value=40).map(float)


@st.composite
def group_batches(draw):
    """A field of registers plus several multi-member candidate groups."""
    n = draw(st.integers(4, 14))
    infos = [_info(f"r{i}", draw(coords), draw(coords)) for i in range(n)]
    n_groups = draw(st.integers(1, 6))
    groups = []
    for _ in range(n_groups):
        k = draw(st.integers(2, min(5, n)))
        idx = draw(
            st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
        )
        groups.append([infos[i] for i in idx])
    return infos, groups


class TestBlockersCountBatch:
    @settings(max_examples=60, deadline=None)
    @given(group_batches())
    def test_counts_match_scalar_blockers(self, data):
        infos, groups = data
        field = RegisterField(infos)
        bits = [sum(m.bits for m in g) for g in groups]
        batch = field.blockers_count_batch(groups, bits)
        for count, members, cap in zip(batch, groups, bits):
            assert count == min(len(field.blockers(members)), cap)

    @settings(max_examples=60, deadline=None)
    @given(group_batches())
    def test_weights_match_saturating_candidate_weight(self, data):
        infos, groups = data
        field = RegisterField(infos)
        bits = [sum(m.bits for m in g) for g in groups]
        batch = candidate_weights_batch(field, groups, bits)
        for pair, members in zip(batch, groups):
            assert pair == candidate_weight(members, field, saturate=True)

    def test_foreign_members_fall_back_to_scalar_path(self):
        infos = [_info(f"r{i}", 4.0 * i, 10.0) for i in range(8)]
        field = RegisterField(infos)
        # A member the field has never indexed: batch must still answer,
        # through the per-candidate scalar path.
        alien = _info("alien", 9.0, 10.0)
        alien.field_index = None
        groups = [[infos[0], alien, infos[5]], [infos[1], infos[6]]]
        bits = [sum(m.bits for m in g) for g in groups]
        batch = field.blockers_count_batch(groups, bits)
        for count, members, cap in zip(batch, groups, bits):
            assert count == min(len(field.blockers(members)), cap)

    def test_empty_batch(self):
        infos = [_info(f"r{i}", 4.0 * i, 10.0) for i in range(4)]
        field = RegisterField(infos)
        assert field.blockers_count_batch([], []) == []

    def test_collinear_single_row_groups(self):
        # All members on one placement row: the batch path must take the
        # same rectangle shortcut the scalar path does.
        infos = [_info(f"r{i}", 3.0 * i, 20.0) for i in range(10)]
        field = RegisterField(infos)
        groups = [[infos[0], infos[4]], [infos[2], infos[9]], [infos[1], infos[3]]]
        bits = [8, 8, 8]  # caps high enough to never saturate
        batch = field.blockers_count_batch(groups, bits)
        for count, members in zip(batch, groups):
            assert count == len(field.blockers(members))
