"""Tests for MBR mapping (Section 4.1) and MBR placement (Section 4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compatibility import analyze_registers
from repro.core.mapping import (
    area_overhead_fraction,
    incomplete_area_acceptable,
    required_scan_styles,
    select_library_cell,
)
from repro.core.mbr_placement import (
    PinConnection,
    pin_connections,
    place_mbr_lp,
    place_mbr_pwl,
    wirelength_at,
)
from repro.geometry import Point, Rect
from repro.library.functional import DFF_R, DFF_R_S, ScanStyle
from repro.netlist.registers import RegisterView
from repro.scan import ScanChain, ScanModel
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture
def members(lib, flop_row):
    timer = Timer(flop_row, clock_period=1.0)
    infos = analyze_registers(flop_row, timer)
    return [infos["ff0"], infos["ff1"]]


class TestMapping:
    def test_drive_resistance_floor(self, lib, flop_row, members):
        # Upgrade ff0 to the strongest drive: the MBR must match it.
        strongest = min(lib.register_cells(DFF_R, 1), key=lambda c: c.drive_resistance)
        flop_row.swap_libcell(flop_row.cell("ff0"), strongest)
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        choice = select_library_cell(lib, [infos["ff0"], infos["ff1"]], 2)
        assert choice is not None
        assert choice.cell.drive_resistance <= strongest.drive_resistance

    def test_lowest_clock_cap_among_qualifying(self, lib, members):
        choice = select_library_cell(lib, members, 2)
        qualifying = [
            c
            for c in lib.register_cells(DFF_R, 2)
            if c.drive_resistance <= choice.cell.drive_resistance + 1e-12
        ]
        assert choice.cell.clock_pin_cap == min(c.clock_pin_cap for c in qualifying)

    def test_exact_vs_incomplete(self, lib, members):
        exact = select_library_cell(lib, members, 2)
        incomplete = select_library_cell(lib, members, 4)
        assert not exact.incomplete and exact.spare_bits == 0
        assert incomplete.incomplete and incomplete.spare_bits == 2

    def test_width_too_small_rejected(self, lib, members):
        assert select_library_cell(lib, members, 1) is None

    def test_scan_styles_internal_preferred(self, lib):
        d = make_flop_row(lib, n_flops=2, func_class=DFF_R_S, name="sc")
        timer = Timer(d, clock_period=1.0)
        infos = analyze_registers(d, timer)
        model = ScanModel()
        model.add_chain(ScanChain("c", partition="P", cells=["ff0", "ff1"], ordered=True))
        group = [infos["ff0"], infos["ff1"]]
        assert required_scan_styles(group, model) == (ScanStyle.INTERNAL, ScanStyle.MULTI)
        choice = select_library_cell(lib, group, 2, model)
        assert choice.cell.scan_style is ScanStyle.INTERNAL

    def test_nonconsecutive_ordered_forces_multi_scan(self, lib):
        d = make_flop_row(lib, n_flops=3, func_class=DFF_R_S, name="sc2")
        timer = Timer(d, clock_period=1.0)
        infos = analyze_registers(d, timer)
        model = ScanModel()
        model.add_chain(
            ScanChain("c", partition="P", cells=["ff0", "ff1", "ff2"], ordered=True)
        )
        group = [infos["ff0"], infos["ff2"]]  # skips ff1 in an ordered section
        assert required_scan_styles(group, model) == (ScanStyle.MULTI,)
        choice = select_library_cell(lib, group, 2, model)
        assert choice.cell.scan_style is ScanStyle.MULTI

    def test_incomplete_area_rule(self, lib, members):
        choice = select_library_cell(lib, members, 8)
        # The default library's 8-bit cell is more area-efficient per bit
        # than two 1-bit flops, so the per-bit rule passes ...
        assert incomplete_area_acceptable(choice, members)
        # ... but replacing 2 bits with an 8-bit cell blows the area budget.
        assert area_overhead_fraction(choice, members) > 0.05


class TestPlacementLP:
    def _conns(self):
        return [
            PinConnection(0.0, 0.5, Rect(0, 0, 2, 2)),
            PinConnection(1.0, 0.5, Rect(8, 6, 10, 8)),
        ]

    def test_pwl_inside_region(self):
        region = Rect(0, 0, 20, 20)
        p = place_mbr_pwl(region, self._conns())
        assert region.contains_point(p)

    def test_lp_matches_pwl_objective(self):
        region = Rect(0, 0, 20, 20)
        conns = self._conns()
        p1 = place_mbr_pwl(region, conns)
        p2 = place_mbr_lp(region, conns)
        assert wirelength_at(p1, conns) == pytest.approx(wirelength_at(p2, conns), abs=1e-6)

    def test_empty_connections_center(self):
        region = Rect(2, 2, 6, 10)
        assert place_mbr_pwl(region, []) == region.center
        assert place_mbr_lp(region, []) == region.center

    def test_constrained_region_clamps(self):
        # Optimum outside the region: result lands on the boundary.
        region = Rect(0, 0, 1, 1)
        conns = [PinConnection(0.0, 0.0, Rect(50, 50, 60, 60))]
        p = place_mbr_pwl(region, conns)
        assert p == Point(1, 1)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_pwl_equals_lp_on_random_instances(self, data):
        k = data.draw(st.integers(1, 5))
        coord = st.floats(min_value=0, max_value=50, allow_nan=False)
        conns = []
        for _ in range(k):
            x1, x2 = sorted([data.draw(coord), data.draw(coord)])
            y1, y2 = sorted([data.draw(coord), data.draw(coord)])
            dx = data.draw(st.floats(min_value=0, max_value=3, allow_nan=False))
            dy = data.draw(st.floats(min_value=0, max_value=1, allow_nan=False))
            conns.append(PinConnection(dx, dy, Rect(x1, y1, x2, y2)))
        region = Rect(0, 0, 50, 50)
        p_pwl = place_mbr_pwl(region, conns)
        p_lp = place_mbr_lp(region, conns)
        assert wirelength_at(p_pwl, conns) == pytest.approx(
            wirelength_at(p_lp, conns), abs=1e-6
        )

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0, max_value=48, allow_nan=False),
           st.floats(min_value=0, max_value=48, allow_nan=False))
    def test_pwl_is_global_minimum(self, px, py):
        # No sampled point beats the PWL optimum.
        conns = [
            PinConnection(0.0, 0.0, Rect(10, 10, 20, 20)),
            PinConnection(2.0, 0.5, Rect(30, 5, 40, 15)),
        ]
        region = Rect(0, 0, 50, 50)
        best = place_mbr_pwl(region, conns)
        assert wirelength_at(best, conns) <= wirelength_at(Point(px, py), conns) + 1e-9

    def test_pin_connections_from_design(self, lib, flop_row):
        target = lib.register_cells(DFF_R, 2)[0]
        bits = [
            b
            for name in ("ff0", "ff1")
            for b in RegisterView(flop_row.cell(name)).connected_bits()
        ]
        conns = pin_connections(target, bits)
        assert len(conns) == 4  # 2 D boxes + 2 Q boxes
        assert all(c.box.area >= 0 for c in conns)
