"""Unit tests for the Section 2 compatibility predicates."""

import math

import pytest

from repro.core.compatibility import (
    CompatibilityConfig,
    analyze_registers,
    compatible,
    feasible_region,
    functionally_compatible,
    placement_compatible,
    scan_compatible,
    timing_compatible,
)
from repro.geometry import Point, Rect
from repro.library.functional import DFF, DFF_R
from repro.scan import ScanChain, ScanModel
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture
def analyzed(lib, flop_row):
    timer = Timer(flop_row, clock_period=1.0)
    return analyze_registers(flop_row, timer)


class TestAnalyzeRegisters:
    def test_all_registers_present(self, analyzed, flop_row):
        assert set(analyzed) == {c.name for c in flop_row.registers()}

    def test_fixture_flops_composable(self, analyzed):
        assert all(i.composable for i in analyzed.values())
        assert all(i.reason == "" for i in analyzed.values())

    def test_dont_touch_excluded(self, lib, flop_row):
        flop_row.cell("ff0").dont_touch = True
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        assert not infos["ff0"].composable
        assert "dont_touch" in infos["ff0"].reason

    def test_max_width_register_excluded(self, lib, flop_row):
        from repro.geometry import Point as P

        mbr8 = lib.register_cells(DFF_R, 8)[0]
        cell = flop_row.add_cell("big", mbr8, P(30, 50))
        flop_row.connect(cell.pin("CK"), flop_row.net("clk"))
        flop_row.connect(cell.pin("RN"), flop_row.net("rst"))
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        assert not infos["big"].composable
        assert "largest MBR" in infos["big"].reason

    def test_slacks_populated(self, analyzed):
        for info in analyzed.values():
            assert math.isfinite(info.d_slack)
            assert math.isfinite(info.q_slack)

    def test_control_key_includes_reset(self, analyzed, flop_row):
        assert analyzed["ff0"].control_key == (("RN", "rst"),)
        assert analyzed["ff0"].clock_net == "clk"


class TestFeasibleRegion:
    def test_positive_slack_region_scales_with_slack(self, lib):
        d_loose = make_flop_row(lib, n_flops=1, name="loose")
        timer_loose = Timer(d_loose, clock_period=10.0)
        timer_tight = Timer(d_loose, clock_period=0.4)
        cfg = CompatibilityConfig(max_region_distance=1000.0, min_region_margin=0.0)
        big = feasible_region(d_loose, d_loose.cell("ff0"), timer_loose, cfg)
        timer_tight.dirty()
        small = feasible_region(d_loose, d_loose.cell("ff0"), timer_tight, cfg)
        assert big.rect.area >= small.rect.area

    def test_region_clipped_to_die(self, lib, flop_row):
        timer = Timer(flop_row, clock_period=100.0)
        cfg = CompatibilityConfig(max_region_distance=10_000.0)
        region = feasible_region(flop_row, flop_row.cell("ff0"), timer, cfg)
        assert flop_row.die.contains_rect(region.rect)

    def test_fixed_cell_pinned_to_point(self, lib, flop_row):
        flop_row.cell("ff0").fixed = True
        timer = Timer(flop_row, clock_period=1.0)
        region = feasible_region(flop_row, flop_row.cell("ff0"), timer, CompatibilityConfig())
        assert region.pinned
        assert region.rect.area == 0.0

    def test_negative_slack_limits_to_net_bbox(self, lib):
        d = make_flop_row(lib, n_flops=1, name="neg")
        timer = Timer(d, clock_period=0.01)  # everything fails
        cfg = CompatibilityConfig(min_region_margin=0.0)
        region = feasible_region(d, d.cell("ff0"), timer, cfg)
        ff = d.cell("ff0")
        d_box = ff.pin("D").net.bbox()
        q_box = ff.pin("Q").net.bbox()
        limit = d_box.union_bbox(q_box).expanded(1e-6)
        # The origin region, translated back to pin space, stays within the
        # union of the two constraining net boxes.
        assert region.rect.width <= limit.width + 1e-6
        assert region.rect.height <= limit.height + 1e-6

    def test_margin_expands_region(self, lib):
        d = make_flop_row(lib, n_flops=1, name="margin")
        timer = Timer(d, clock_period=0.01)
        tight = feasible_region(d, d.cell("ff0"), timer, CompatibilityConfig(min_region_margin=0.0))
        wide = feasible_region(d, d.cell("ff0"), timer, CompatibilityConfig(min_region_margin=5.0))
        assert wide.rect.area > tight.rect.area


class TestPairwisePredicates:
    def test_functional_requires_same_class(self, lib):
        d1 = make_flop_row(lib, n_flops=1, func_class=DFF_R, name="fa")
        d2 = make_flop_row(lib, n_flops=1, func_class=DFF, name="fb")
        t1, t2 = Timer(d1, 1.0), Timer(d2, 1.0)
        a = analyze_registers(d1, t1)["ff0"]
        b = analyze_registers(d2, t2)["ff0"]
        assert not functionally_compatible(a, b)

    def test_functional_requires_same_control_nets(self, lib, flop_row):
        from repro.library.cells import PinDirection

        rst2 = flop_row.add_net("rst2")
        flop_row.connect(flop_row.add_port("rst2", PinDirection.INPUT, Point(0, 1)), rst2)
        flop_row.connect(flop_row.cell("ff1").pin("RN"), rst2)
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        assert not functionally_compatible(infos["ff0"], infos["ff1"])
        assert functionally_compatible(infos["ff0"], infos["ff2"])

    def test_scan_requires_same_partition(self, analyzed):
        model = ScanModel()
        model.add_chain(ScanChain("c1", partition="A", cells=["ff0"]))
        model.add_chain(ScanChain("c2", partition="B", cells=["ff1"]))
        model.add_chain(ScanChain("c3", partition="A", cells=["ff2"]))
        assert not scan_compatible(analyzed["ff0"], analyzed["ff1"], model)
        assert scan_compatible(analyzed["ff0"], analyzed["ff2"], model)

    def test_scan_rejects_two_ordered_sections(self, analyzed):
        model = ScanModel()
        model.add_chain(ScanChain("c1", partition="A", cells=["ff0"], ordered=True))
        model.add_chain(ScanChain("c2", partition="A", cells=["ff1"], ordered=True))
        assert not scan_compatible(analyzed["ff0"], analyzed["ff1"], model)

    def test_no_scan_model_is_permissive(self, analyzed):
        assert scan_compatible(analyzed["ff0"], analyzed["ff1"], None)

    def test_placement_needs_overlap(self, analyzed):
        a, b = analyzed["ff0"], analyzed["ff1"]
        assert placement_compatible(a, b)  # 4 um apart with big regions

    def test_timing_sign_rule(self):
        from repro.core.compatibility import RegisterInfo

        cfg = CompatibilityConfig(slack_similarity=10.0)
        base = dict(cell=None, func_class=DFF_R, bits=1, composable=True, reason="")
        wants_later = RegisterInfo(**base, d_slack=-0.1, q_slack=0.2)
        wants_earlier = RegisterInfo(**base, d_slack=0.2, q_slack=-0.1)
        neutral = RegisterInfo(**base, d_slack=0.1, q_slack=0.1)
        assert not timing_compatible(wants_later, wants_earlier, cfg)
        assert not timing_compatible(wants_earlier, wants_later, cfg)
        assert timing_compatible(wants_later, neutral, cfg)
        assert timing_compatible(neutral, wants_earlier, cfg)

    def test_timing_similarity_rule(self):
        from repro.core.compatibility import RegisterInfo

        cfg = CompatibilityConfig(slack_similarity=0.1, clip_similarity_at=1.0)
        base = dict(cell=None, func_class=DFF_R, bits=1, composable=True, reason="")
        a = RegisterInfo(**base, d_slack=0.05, q_slack=0.05)
        b = RegisterInfo(**base, d_slack=0.30, q_slack=0.05)
        c = RegisterInfo(**base, d_slack=0.10, q_slack=0.05)
        assert not timing_compatible(a, b, cfg)  # D slacks differ by 0.25
        assert timing_compatible(a, c, cfg)

    def test_clip_makes_large_slacks_equal(self):
        from repro.core.compatibility import RegisterInfo

        cfg = CompatibilityConfig(slack_similarity=0.1, clip_similarity_at=0.5)
        base = dict(cell=None, func_class=DFF_R, bits=1, composable=True, reason="")
        a = RegisterInfo(**base, d_slack=1.0, q_slack=0.9)
        b = RegisterInfo(**base, d_slack=5.0, q_slack=3.0)
        assert timing_compatible(a, b, cfg)

    def test_full_conjunction(self, analyzed):
        cfg = CompatibilityConfig()
        assert compatible(analyzed["ff0"], analyzed["ff1"], None, cfg)
