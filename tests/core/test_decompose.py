"""Tests for MBR decomposition (the paper's future-work extension)."""

import pytest

from repro.core.decompose import DecomposeError, decompose_mbr, decompose_registers
from repro.geometry import Point
from repro.library.functional import DFF_R, DFF_R_S, ScanStyle
from repro.netlist import compose_mbr
from repro.netlist.validate import validate_design
from repro.scan import ScanChain, ScanModel
from repro.sta import Timer

from tests.conftest import make_flop_row


def _errors(design):
    return [i for i in validate_design(design) if i.is_error]


@pytest.fixture
def mbr_design(lib):
    """A 4-bit MBR built by composing four 1-bit flops."""
    d = make_flop_row(lib, n_flops=4, spacing=2.0, name="dec")
    target = lib.register_cells(DFF_R, 4)[0]
    compose_mbr(d, [d.cell(f"ff{i}") for i in range(4)], target, Point(12, 50), name="mbr")
    return d


class TestDecomposeMbr:
    def test_splits_into_singles(self, lib, mbr_design):
        new = decompose_mbr(mbr_design, mbr_design.cell("mbr")).new_cells
        assert len(new) == 4
        assert "mbr" not in mbr_design.cells
        assert mbr_design.width_histogram() == {1: 4}
        assert not _errors(mbr_design)

    def test_data_connectivity_preserved(self, lib, mbr_design):
        d_nets = [mbr_design.cell("mbr").pin(f"D{i}").net for i in range(4)]
        q_nets = [mbr_design.cell("mbr").pin(f"Q{i}").net for i in range(4)]
        new = decompose_mbr(mbr_design, mbr_design.cell("mbr")).new_cells
        for cell, dn, qn in zip(new, d_nets, q_nets):
            assert cell.pin("D").net is dn
            assert cell.pin("Q").net is qn

    def test_control_nets_shared(self, lib, mbr_design):
        new = decompose_mbr(mbr_design, mbr_design.cell("mbr")).new_cells
        clk = mbr_design.net("clk")
        rst = mbr_design.net("rst")
        for cell in new:
            assert cell.pin("CK").net is clk
            assert cell.pin("RN").net is rst

    def test_bits_conserved(self, lib, mbr_design):
        before = mbr_design.total_register_bits()
        decompose_mbr(mbr_design, mbr_design.cell("mbr"))
        assert mbr_design.total_register_bits() == before

    def test_drive_resistance_not_degraded(self, lib, mbr_design):
        original_res = mbr_design.cell("mbr").register_cell.drive_resistance
        new = decompose_mbr(mbr_design, mbr_design.cell("mbr")).new_cells
        for cell in new:
            assert cell.register_cell.drive_resistance <= original_res + 1e-12

    def test_single_bit_rejected(self, lib, flop_row):
        with pytest.raises(DecomposeError, match="single-bit"):
            decompose_mbr(flop_row, flop_row.cell("ff0"))

    def test_dont_touch_rejected(self, lib, mbr_design):
        mbr_design.cell("mbr").dont_touch = True
        with pytest.raises(DecomposeError, match="excluded"):
            decompose_mbr(mbr_design, mbr_design.cell("mbr"))

    def test_scan_chain_expanded(self, lib, scan_row):
        # Compose a 4-bit internal-scan MBR from the scan chain, then split
        # it again: the chain must remain continuous through the singles.
        target = next(
            c for c in lib.register_cells(DFF_R_S, 4) if c.scan_style is ScanStyle.INTERNAL
        )
        model = ScanModel()
        model.add_chain(ScanChain("c0", partition="P0", cells=["ff0", "ff1", "ff2", "ff3"]))
        mbr = compose_mbr(
            scan_row, [scan_row.cell(f"ff{i}") for i in range(4)], target, Point(12, 50),
            name="mbr",
        ).new_cell
        model.replace_group(["ff0", "ff1", "ff2", "ff3"], "mbr")
        new = decompose_mbr(scan_row, mbr, model).new_cells
        assert len(new) == 4
        assert model.chains["c0"].cells == [c.name for c in new]
        # Physically continuous: si port net -> bit0 -> ... -> bit3 -> so net.
        assert new[0].pin("SI").net is scan_row.net("n_si")
        for a, b in zip(new[:-1], new[1:]):
            assert a.pin("SO").net is b.pin("SI").net
        assert new[-1].pin("SO").net is scan_row.net("n_so")
        assert not _errors(scan_row)

    def test_bit_row_stays_inside_die(self, lib, mbr_design):
        # The 1-bit row is wider than the MBR; flush against the right die
        # edge it must be anchored back on-die, not spilled past xhi.
        die = mbr_design.die
        mbr = mbr_design.cell("mbr")
        mbr.move_to(Point(die.xhi - mbr.register_cell.width, die.yhi - mbr.register_cell.height))
        new = decompose_mbr(mbr_design, mbr).new_cells
        for cell in new:
            c = cell.register_cell
            assert cell.origin.x >= die.xlo and cell.origin.y >= die.ylo
            assert cell.origin.x + c.width <= die.xhi + 1e-9
            assert cell.origin.y + c.height <= die.yhi + 1e-9

    def test_decompose_then_retime(self, lib, mbr_design):
        timer = Timer(mbr_design, clock_period=1.0)
        before = timer.summary()
        decompose_mbr(mbr_design, mbr_design.cell("mbr"))
        timer.dirty()
        after = timer.summary()
        assert after.total_endpoints == before.total_endpoints


class TestDecomposeRegisters:
    def test_width_filter(self, lib):
        from repro.bench import generate_design, preset

        b = generate_design(preset("D4", scale=0.1), lib)
        before_hist = b.design.width_histogram()
        res = decompose_registers(b.design, b.scan_model, widths=(8,))
        after_hist = b.design.width_histogram()
        assert after_hist.get(8, 0) < before_hist.get(8, 0)
        # dont_touch 8-bit cells survive.
        survivors = [
            c for c in b.design.registers() if c.width_bits == 8
        ]
        assert all(c.dont_touch or c.fixed for c in survivors)
        assert res.cells_created >= 8 * res.cells_removed - 8  # incomplete spares

    def test_roundtrip_compose_decompose_compose(self, lib):
        d = make_flop_row(lib, n_flops=8, spacing=2.0, name="rt")
        timer = Timer(d, clock_period=10.0)
        from repro.core.composer import compose_design

        compose_design(d, timer)
        assert d.total_register_count() == 1
        res = decompose_registers(d, widths=(8,))
        assert res.cells_removed == 1 and d.total_register_count() == 8
        timer.dirty()
        compose_design(d, timer)
        assert d.total_register_count() == 1
        assert not _errors(d)
