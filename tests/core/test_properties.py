"""Property-based invariants of the composition engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.composer import ComposerConfig, compose_design
from repro.ilp import scipy_available
from repro.geometry import Point, Rect
from repro.library import default_library
from repro.netlist.validate import validate_design
from repro.sta import Timer

from tests.conftest import make_flop_row

LIB = default_library()


def _errors(design):
    return [i for i in validate_design(design) if i.is_error]


class TestCompositionInvariants:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(2, 12),
        spacing=st.floats(min_value=2.0, max_value=8.0),
        period=st.floats(min_value=0.2, max_value=5.0),
    )
    def test_random_rows_compose_validly(self, n, spacing, period):
        d = make_flop_row(
            LIB, n_flops=n, spacing=spacing, die=Rect(0, 0, 150, 100), name="prop"
        )
        bits = d.total_register_bits()
        timer = Timer(d, clock_period=period)
        res = compose_design(d, timer)
        # Structural invariants hold for every seedable configuration:
        assert not _errors(d)
        assert d.total_register_bits() == bits
        assert res.registers_after <= res.registers_before
        assert res.registers_after == d.total_register_count()

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(2, 10))
    def test_composition_is_idempotent_at_fixed_point(self, n):
        d = make_flop_row(LIB, n_flops=n, spacing=2.0, die=Rect(0, 0, 150, 100), name="fp")
        timer = Timer(d, clock_period=10.0)
        compose_design(d, timer)
        first = d.total_register_count()
        res2 = compose_design(d, timer)
        # The incremental engine converges: a re-run finds nothing new.
        assert res2.registers_after == first

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(3, 10), dt=st.integers(0, 2))
    def test_dont_touch_subset_survives(self, n, dt):
        d = make_flop_row(LIB, n_flops=n, spacing=2.0, die=Rect(0, 0, 150, 100), name="dts")
        protected = [f"ff{i}" for i in range(min(dt, n))]
        for name in protected:
            d.cell(name).dont_touch = True
        timer = Timer(d, clock_period=10.0)
        compose_design(d, timer)
        for name in protected:
            assert name in d.cells

    @settings(max_examples=6, deadline=None)
    @given(n=st.integers(4, 10))
    @pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")
    def test_solver_backends_agree_on_count(self, n):
        d1 = make_flop_row(LIB, n_flops=n, spacing=2.0, die=Rect(0, 0, 150, 100), name="s1")
        d2 = make_flop_row(LIB, n_flops=n, spacing=2.0, die=Rect(0, 0, 150, 100), name="s2")
        r1 = compose_design(d1, Timer(d1, 10.0), config=ComposerConfig(solver="exact"))
        r2 = compose_design(d2, Timer(d2, 10.0), config=ComposerConfig(solver="scipy"))
        assert r1.registers_after == r2.registers_after


class TestTimerInvariants:
    @settings(max_examples=10, deadline=None)
    @given(dx=st.floats(min_value=0.0, max_value=80.0))
    def test_arrival_monotone_in_distance(self, dx):
        d = make_flop_row(LIB, n_flops=1, die=Rect(0, 0, 200, 100), name="mono")
        timer = Timer(d, clock_period=5.0)
        base = timer.arrival_at(d.cell("ff0").pin("D"))
        d.cell("obuf0").move_to(Point(12.0 + dx, 50.0))
        timer.dirty()
        # Moving the *output* buffer does not change the D arrival ...
        assert timer.arrival_at(d.cell("ff0").pin("D")) == pytest.approx(base)
        # ... but stretches the launch path monotonically.
        q_slack = timer.register_slack(d.cell("ff0")).q_slack
        d.cell("obuf0").move_to(Point(12.0 + dx + 10.0, 50.0))
        timer.dirty()
        assert timer.register_slack(d.cell("ff0")).q_slack <= q_slack + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(period=st.floats(min_value=0.1, max_value=10.0))
    def test_slack_shifts_linearly_with_period(self, period):
        d = make_flop_row(LIB, n_flops=2, die=Rect(0, 0, 100, 100), name="per")
        s1 = Timer(d, clock_period=period).summary()
        s2 = Timer(d, clock_period=period + 1.0).summary()
        assert s2.wns == pytest.approx(s1.wns + 1.0, abs=1e-9)
