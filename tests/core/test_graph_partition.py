"""Tests for compatibility-graph construction and K-partitioning."""

import networkx as nx
import pytest

from repro.core.compatibility import CompatibilityConfig, analyze_registers
from repro.core.graph import build_compatibility_graph
from repro.core.partition import partition_graph
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture
def row_graph(lib, flop_row):
    timer = Timer(flop_row, clock_period=1.0)
    infos = analyze_registers(flop_row, timer)
    return infos, build_compatibility_graph(infos)


class TestBuildGraph:
    def test_compatible_row_is_clique(self, row_graph):
        infos, graph = row_graph
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6  # K4

    def test_non_composable_not_in_graph(self, lib, flop_row):
        flop_row.cell("ff0").dont_touch = True
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        graph = build_compatibility_graph(infos)
        assert "ff0" not in graph.nodes

    def test_info_attached_to_nodes(self, row_graph):
        infos, graph = row_graph
        for n in graph.nodes:
            assert graph.nodes[n]["info"] is infos[n]

    def test_distant_registers_not_connected(self, lib):
        from repro.geometry import Rect

        d = make_flop_row(lib, n_flops=2, spacing=300.0, die=Rect(0, 0, 400, 100), name="far")
        timer = Timer(d, clock_period=1.0)
        infos = analyze_registers(
            d, timer, config=CompatibilityConfig(max_region_distance=20.0)
        )
        graph = build_compatibility_graph(
            infos, config=CompatibilityConfig(max_region_distance=20.0)
        )
        assert graph.number_of_edges() == 0

    def test_different_clock_groups_disconnected(self, lib, flop_row):
        from repro.geometry import Point
        from repro.library.cells import PinDirection

        clk2 = flop_row.add_net("clk2", is_clock=True)
        flop_row.connect(flop_row.add_port("clk2", PinDirection.INPUT, Point(0, 2)), clk2)
        flop_row.connect(flop_row.cell("ff0").pin("CK"), clk2)
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        graph = build_compatibility_graph(infos)
        assert graph.degree("ff0") == 0


class TestPartition:
    def _grid_graph(self, lib, n=60):
        """A big compatible design: one long row of flops."""
        d = make_flop_row(lib, n_flops=n, spacing=2.0, die=__import__("repro.geometry", fromlist=["Rect"]).Rect(0, 0, 200, 100), name="grid")
        timer = Timer(d, clock_period=10.0)
        infos = analyze_registers(d, timer)
        return build_compatibility_graph(infos)

    def test_bound_respected(self, lib):
        graph = self._grid_graph(lib)
        for part in partition_graph(graph, max_nodes=10):
            assert part.number_of_nodes() <= 10

    def test_all_nodes_covered_exactly_once(self, lib):
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        seen = [n for p in parts for n in p.nodes]
        assert sorted(seen) == sorted(graph.nodes)

    def test_small_components_kept_whole(self, row_graph):
        _, graph = row_graph
        parts = partition_graph(graph, max_nodes=30)
        assert len(parts) == 1
        assert parts[0].number_of_nodes() == 4

    def test_geometric_split_keeps_neighbors(self, lib):
        # A 60-flop row split into <=10-node parts: each part should span a
        # contiguous x range (median bisection on positions).
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        ranges = []
        for p in parts:
            xs = [p.nodes[n]["info"].center.x for n in p.nodes]
            ranges.append((min(xs), max(xs)))
        ranges.sort()
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2 + 1e-9  # disjoint x spans

    def test_invalid_bound_rejected(self, row_graph):
        _, graph = row_graph
        with pytest.raises(ValueError):
            partition_graph(graph, max_nodes=1)

    def test_edges_within_parts_preserved(self, lib):
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        for p in parts:
            for u, v in p.edges:
                assert graph.has_edge(u, v)
