"""Tests for compatibility-graph construction and K-partitioning."""

import networkx as nx
import pytest

from repro.core.compatibility import CompatibilityConfig, analyze_registers
from repro.core.graph import build_compatibility_graph
from repro.core.partition import partition_graph
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture
def row_graph(lib, flop_row):
    timer = Timer(flop_row, clock_period=1.0)
    infos = analyze_registers(flop_row, timer)
    return infos, build_compatibility_graph(infos)


class TestBuildGraph:
    def test_compatible_row_is_clique(self, row_graph):
        infos, graph = row_graph
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6  # K4

    def test_non_composable_not_in_graph(self, lib, flop_row):
        flop_row.cell("ff0").dont_touch = True
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        graph = build_compatibility_graph(infos)
        assert "ff0" not in graph.nodes

    def test_info_attached_to_nodes(self, row_graph):
        infos, graph = row_graph
        for n in graph.nodes:
            assert graph.nodes[n]["info"] is infos[n]

    def test_distant_registers_not_connected(self, lib):
        from repro.geometry import Rect

        d = make_flop_row(lib, n_flops=2, spacing=300.0, die=Rect(0, 0, 400, 100), name="far")
        timer = Timer(d, clock_period=1.0)
        infos = analyze_registers(
            d, timer, config=CompatibilityConfig(max_region_distance=20.0)
        )
        graph = build_compatibility_graph(
            infos, config=CompatibilityConfig(max_region_distance=20.0)
        )
        assert graph.number_of_edges() == 0

    def test_different_clock_groups_disconnected(self, lib, flop_row):
        from repro.geometry import Point
        from repro.library.cells import PinDirection

        clk2 = flop_row.add_net("clk2", is_clock=True)
        flop_row.connect(flop_row.add_port("clk2", PinDirection.INPUT, Point(0, 2)), clk2)
        flop_row.connect(flop_row.cell("ff0").pin("CK"), clk2)
        timer = Timer(flop_row, clock_period=1.0)
        infos = analyze_registers(flop_row, timer)
        graph = build_compatibility_graph(infos)
        assert graph.degree("ff0") == 0


class TestPartition:
    def _grid_graph(self, lib, n=60):
        """A big compatible design: one long row of flops."""
        d = make_flop_row(lib, n_flops=n, spacing=2.0, die=__import__("repro.geometry", fromlist=["Rect"]).Rect(0, 0, 200, 100), name="grid")
        timer = Timer(d, clock_period=10.0)
        infos = analyze_registers(d, timer)
        return build_compatibility_graph(infos)

    def test_bound_respected(self, lib):
        graph = self._grid_graph(lib)
        for part in partition_graph(graph, max_nodes=10):
            assert part.number_of_nodes() <= 10

    def test_all_nodes_covered_exactly_once(self, lib):
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        seen = [n for p in parts for n in p.nodes]
        assert sorted(seen) == sorted(graph.nodes)

    def test_small_components_kept_whole(self, row_graph):
        _, graph = row_graph
        parts = partition_graph(graph, max_nodes=30)
        assert len(parts) == 1
        assert parts[0].number_of_nodes() == 4

    def test_geometric_split_keeps_neighbors(self, lib):
        # A 60-flop row split into <=10-node parts: each part should span a
        # contiguous x range (median bisection on positions).
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        ranges = []
        for p in parts:
            xs = [p.nodes[n]["info"].center.x for n in p.nodes]
            ranges.append((min(xs), max(xs)))
        ranges.sort()
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2 + 1e-9  # disjoint x spans

    def test_invalid_bound_rejected(self, row_graph):
        _, graph = row_graph
        with pytest.raises(ValueError):
            partition_graph(graph, max_nodes=1)

    def test_edges_within_parts_preserved(self, lib):
        graph = self._grid_graph(lib)
        parts = partition_graph(graph, max_nodes=10)
        for p in parts:
            for u, v in p.edges:
                assert graph.has_edge(u, v)


class TestSpatialPairs:
    """The grid hash emits each maybe-overlapping pair exactly once, from
    the lowest-indexed bin the two rectangles share."""

    @staticmethod
    def _stub(rect):
        # The only surface _spatial_pairs touches is ``.region.rect``.
        from types import SimpleNamespace

        return SimpleNamespace(region=SimpleNamespace(rect=rect))

    def _pairs(self, rects, cell_size=4.0):
        from repro.core.graph import _spatial_pairs

        return list(_spatial_pairs([self._stub(r) for r in rects], cell_size))

    def test_pair_spanning_many_bins_emitted_once(self):
        from repro.geometry import Rect

        # Two big overlapping rectangles share a 6x6 block of 4.0-unit bins;
        # the pair must still come out exactly once.
        pairs = self._pairs([Rect(0, 0, 20, 20), Rect(1, 1, 21, 21)])
        assert pairs == [(0, 1)]

    def test_matches_bruteforce_bbox_overlap(self):
        import random

        from repro.geometry import Rect

        rng = random.Random(42)
        rects = []
        for _ in range(40):
            x, y = rng.uniform(0, 50), rng.uniform(0, 50)
            rects.append(Rect(x, y, x + rng.uniform(0.5, 15), y + rng.uniform(0.5, 15)))
        got = set(self._pairs(rects))
        assert len(got) == len(self._pairs(rects))  # no duplicates

        # Every genuinely overlapping bbox pair must be a candidate (the
        # hash may add near-miss pairs sharing a bin; compatible() culls
        # those later, so supersets are fine — misses are not).
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                a, b = rects[i], rects[j]
                overlaps = (
                    a.xlo <= b.xhi
                    and b.xlo <= a.xhi
                    and a.ylo <= b.yhi
                    and b.ylo <= a.yhi
                )
                if overlaps:
                    assert (i, j) in got

    def test_disjoint_far_rectangles_skipped(self):
        from repro.geometry import Rect

        assert self._pairs([Rect(0, 0, 1, 1), Rect(40, 40, 41, 41)]) == []
