"""Equivalence tests: vectorized RegisterField vs reference blocking path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compatibility import RegisterInfo
from repro.core.weights import RegisterField, blocking_registers, candidate_weight
from repro.geometry import Point, Rect
from repro.library.functional import DFF_R


class _FakeCell:
    """Just enough of a Cell for the weighting code paths."""

    def __init__(self, name, x, y, w=2.0, h=1.0):
        self.name = name
        self._rect = Rect(x, y, x + w, y + h)

    @property
    def footprint(self):
        return self._rect


def _info(name, x, y, w=2.0, bits=1):
    cell = _FakeCell(name, x, y, w)
    center = cell.footprint.center
    return RegisterInfo(
        cell=cell,
        func_class=DFF_R,
        bits=bits,
        composable=True,
        reason="",
        center_xy=(center.x, center.y),
    )


coords = st.integers(min_value=0, max_value=40).map(float)


@st.composite
def register_sets(draw):
    n = draw(st.integers(4, 16))
    infos = [
        _info(f"r{i}", draw(coords), draw(coords)) for i in range(n)
    ]
    k = draw(st.integers(2, min(5, n)))
    member_idx = draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    return infos, [infos[i] for i in member_idx]


class TestFieldEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(register_sets())
    def test_field_matches_reference(self, data):
        infos, members = data
        field = RegisterField(infos)
        ref = {b.name for b in blocking_registers(members, infos)}
        fast = {b.name for b in blocking_registers(members, field)}
        assert fast == ref

    @settings(max_examples=40, deadline=None)
    @given(register_sets())
    def test_weight_identical_via_field(self, data):
        infos, members = data
        field = RegisterField(infos)
        w_ref, n_ref = candidate_weight(members, infos)
        w_fast, n_fast = candidate_weight(members, field)
        assert n_fast == n_ref
        assert w_fast == pytest.approx(w_ref)

    def test_members_never_block_themselves(self):
        infos = [_info(f"r{i}", 4.0 * i, 0.0) for i in range(4)]
        field = RegisterField(infos)
        assert blocking_registers(infos, field) == []

    def test_known_blocking_configuration(self):
        # Register m sits dead-center between the four corner members.
        corners = [_info("a", 0, 0), _info("b", 10, 0), _info("c", 10, 10), _info("d", 0, 10)]
        mid = _info("m", 5, 5)
        field = RegisterField(corners + [mid])
        blockers = blocking_registers(corners, field)
        assert [b.name for b in blockers] == ["m"]

    def test_empty_field(self):
        field = RegisterField([])
        assert field.blockers([_info("a", 0, 0)]) == []


class TestWindowEnumeration:
    def test_windows_cover_adjacent_runs(self):
        from repro.core.candidates import _window_subcliques

        members = [_info(f"r{i}", 2.0 * i, 0.0, bits=1) for i in range(16)]
        bits_of = {m.name: 1 for m in members}
        subs = _window_subcliques(members, bits_of, {2, 4, 8}, 8, allow_incomplete=False)
        as_sets = {tuple(sorted(s, key=lambda n: int(n[1:]))) for s in subs}
        # Every adjacent pair, quad, and oct appears.
        assert ("r0", "r1") in as_sets
        assert tuple(f"r{i}" for i in range(4)) in as_sets
        assert tuple(f"r{i}" for i in range(8)) in as_sets
        # Non-contiguous groups do not (they would be blocked anyway).
        assert ("r0", "r2") not in as_sets

    def test_windows_respect_bit_sums(self):
        from repro.core.candidates import _window_subcliques

        members = [_info(f"r{i}", 2.0 * i, 0.0, bits=2) for i in range(6)]
        bits_of = {m.name: 2 for m in members}
        subs = _window_subcliques(members, bits_of, {2, 4, 8}, 8, allow_incomplete=False)
        sums = {sum(bits_of[n] for n in s) for s in subs}
        assert sums <= {4, 8}  # 6-bit windows have no exact cell

    def test_windows_incomplete_allowed(self):
        from repro.core.candidates import _window_subcliques

        members = [_info(f"r{i}", 2.0 * i, 0.0, bits=2) for i in range(4)]
        bits_of = {m.name: 2 for m in members}
        subs = _window_subcliques(members, bits_of, {2, 4, 8}, 8, allow_incomplete=True)
        sums = {sum(bits_of[n] for n in s) for s in subs}
        assert 6 in sums  # 6 bits -> incomplete 8

    def test_large_clique_candidates_stay_quadratic(self, lib):
        from repro.core.candidates import CandidateConfig, enumerate_candidates
        from repro.core.compatibility import analyze_registers
        from repro.core.graph import build_compatibility_graph
        from repro.sta import Timer

        from tests.conftest import make_flop_row
        from repro.geometry import Rect

        d = make_flop_row(lib, n_flops=26, spacing=2.0, die=Rect(0, 0, 200, 100), name="big")
        timer = Timer(d, clock_period=10.0)
        infos = analyze_registers(d, timer)
        graph = build_compatibility_graph(infos)
        cands = enumerate_candidates(graph, list(infos.values()), lib)
        # 26 singletons + O(k^2) windows, far below the subset explosion.
        assert len(cands) < 26 + 26 * 26
