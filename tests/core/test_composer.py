"""Integration tests for the composition engine and the greedy baseline."""

import pytest

from repro.bench import generate_design, preset
from repro.core.composer import ComposerConfig, compose_design
from repro.core.heuristic import compose_design_heuristic
from repro.core.sizing import size_registers
from repro.ilp import scipy_available
from repro.library.functional import DFF_R
from repro.netlist.validate import validate_design
from repro.sta import Timer

from tests.conftest import make_flop_row


@pytest.fixture(scope="module")
def small_bundle(lib):
    return generate_design(preset("D1", scale=0.12), lib)


def _errors(design):
    return [i for i in validate_design(design) if i.is_error]


class TestComposeRow:
    def test_row_of_eight_becomes_one_mbr(self, lib):
        d = make_flop_row(lib, n_flops=8, spacing=2.0, name="row8")
        timer = Timer(d, clock_period=10.0)
        res = compose_design(d, timer)
        assert d.total_register_count() == 1
        assert d.width_histogram() == {8: 1}
        assert res.register_reduction == 7
        assert not _errors(d)

    def test_bits_conserved(self, lib):
        d = make_flop_row(lib, n_flops=6, spacing=2.0, name="row6")
        bits = d.total_register_bits()
        timer = Timer(d, clock_period=10.0)
        compose_design(d, timer)
        assert d.total_register_bits() == bits

    def test_nothing_to_do_is_clean(self, lib):
        d = make_flop_row(lib, n_flops=1, name="single")
        timer = Timer(d, clock_period=10.0)
        res = compose_design(d, timer)
        assert res.registers_before == res.registers_after == 1
        assert res.composed == []

    def test_dont_touch_never_composed(self, lib):
        d = make_flop_row(lib, n_flops=4, spacing=2.0, name="dt")
        d.cell("ff1").dont_touch = True
        timer = Timer(d, clock_period=10.0)
        res = compose_design(d, timer)
        assert "ff1" in d.cells
        for group in res.composed:
            assert "ff1" not in group.members

    @pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")
    def test_scipy_solver_equivalent_objective(self, lib):
        d1 = make_flop_row(lib, n_flops=8, spacing=2.0, name="sa")
        d2 = make_flop_row(lib, n_flops=8, spacing=2.0, name="sb")
        r1 = compose_design(d1, Timer(d1, 10.0), config=ComposerConfig(solver="exact"))
        r2 = compose_design(d2, Timer(d2, 10.0), config=ComposerConfig(solver="scipy"))
        assert d1.total_register_count() == d2.total_register_count()
        assert r1.registers_after == r2.registers_after

    def test_unknown_solver_rejected(self, lib):
        d = make_flop_row(lib, n_flops=2, name="us")
        with pytest.raises(ValueError):
            compose_design(d, Timer(d, 10.0), config=ComposerConfig(solver="magic"))


class TestComposeBundle:
    """End-to-end on a generated 'industrial' design."""

    def test_netlist_stays_valid(self, lib, small_bundle):
        import copy

        b = generate_design(preset("D1", scale=0.12), lib)
        assert not _errors(b.design)
        compose_design(b.design, b.timer, b.scan_model)
        assert not _errors(b.design)

    def test_reduction_without_timing_collapse(self, lib):
        b = generate_design(preset("D2", scale=0.15), lib)
        before = b.timer.summary()
        res = compose_design(b.design, b.timer, b.scan_model)
        after = b.timer.summary()
        assert res.registers_after < res.registers_before
        # QoR guard: data endpoints are conserved (scan-bridge ports may
        # add a couple of trivially-met endpoints) and TNS stays in regime.
        assert abs(after.total_endpoints - before.total_endpoints) <= 5
        assert abs(after.tns) <= abs(before.tns) * 1.25 + 0.5

    def test_composed_groups_are_recorded(self, lib):
        b = generate_design(preset("D1", scale=0.12), lib)
        res = compose_design(b.design, b.timer, b.scan_model)
        absorbed = {m for g in res.composed for m in g.members}
        for group in res.composed:
            # A pass-1 MBR may itself have merged into a larger MBR during
            # the incremental pass 2; otherwise it must exist as recorded.
            if group.new_cell in b.design.cells:
                cell = b.design.cells[group.new_cell]
                assert cell.register_cell.name == group.libcell
            else:
                assert group.new_cell in absorbed
            for member in group.members:
                assert member not in b.design.cells

    def test_legalization_leaves_no_register_overlaps(self, lib):
        b = generate_design(preset("D1", scale=0.12), lib)
        compose_design(b.design, b.timer, b.scan_model)
        regs = b.design.registers()
        for i, a in enumerate(regs):
            for c in regs[i + 1 :]:
                inter = a.footprint.intersect(c.footprint)
                assert inter is None or inter.area < 1e-9, (a.name, c.name)

    def test_incomplete_mbrs_used_when_allowed(self, lib):
        b = generate_design(preset("D3", scale=0.2), lib)
        res = compose_design(b.design, b.timer, b.scan_model)
        # With {1,2,3,4,8} widths and 5% overhead budget, 7->8-bit merges
        # occur on MBR-rich designs; at least the mechanism must not crash
        # and any used incomplete cell must carry spare bits.
        for g in res.composed:
            if g.incomplete:
                cell = b.design.cells[g.new_cell]
                from repro.netlist import RegisterView

                assert RegisterView(cell).connected_bit_count < cell.width_bits


class TestHeuristicBaseline:
    def test_ilp_beats_or_ties_heuristic(self, lib):
        # Fig. 6: the ILP achieves fewer (or equal) registers on every design.
        b1 = generate_design(preset("D1", scale=0.15), lib)
        b2 = generate_design(preset("D1", scale=0.15), lib)
        r_ilp = compose_design(b1.design, b1.timer, b1.scan_model)
        r_heu = compose_design_heuristic(b2.design, b2.timer, b2.scan_model)
        assert r_ilp.registers_after <= r_heu.registers_after

    def test_heuristic_valid_netlist(self, lib):
        b = generate_design(preset("D2", scale=0.15), lib)
        compose_design_heuristic(b.design, b.timer, b.scan_model)
        assert not _errors(b.design)

    def test_heuristic_groups_disjoint(self, lib):
        b = generate_design(preset("D1", scale=0.15), lib)
        res = compose_design_heuristic(b.design, b.timer, b.scan_model)
        seen = set()
        for g in res.composed:
            for m in g.members:
                assert m not in seen
                seen.add(m)


class TestSizing:
    def test_sizing_reduces_area_and_cap(self, lib):
        d = make_flop_row(lib, n_flops=4, spacing=2.0, name="sz")
        # Force strongest drive so there is room to downsize.
        strongest = min(lib.register_cells(DFF_R, 1), key=lambda c: c.drive_resistance)
        for i in range(4):
            d.swap_libcell(d.cell(f"ff{i}"), strongest)
        timer = Timer(d, clock_period=10.0)  # huge slack: everything downsizes
        res = size_registers(d, timer)
        assert res.num_swapped == 4
        assert res.area_delta < 0
        assert res.clock_cap_delta < 0

    def test_sizing_respects_tight_timing(self, lib):
        d = make_flop_row(lib, n_flops=4, spacing=2.0, name="szt")
        strongest = min(lib.register_cells(DFF_R, 1), key=lambda c: c.drive_resistance)
        for i in range(4):
            d.swap_libcell(d.cell(f"ff{i}"), strongest)
        timer = Timer(d, clock_period=0.01)  # everything failing: no swaps
        res = size_registers(d, timer)
        assert res.num_swapped == 0

    def test_sizing_keeps_timing_above_margin(self, lib):
        d = make_flop_row(lib, n_flops=4, spacing=2.0, name="szm")
        timer = Timer(d, clock_period=10.0)
        before = timer.summary().wns
        size_registers(d, timer, margin=0.1)
        timer.dirty()
        assert timer.summary().wns >= min(before, 0.1) - 1e-6
