"""Tests for Bron-Kerbosch and sub-clique enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cliques import enumerate_maximal_cliques, enumerate_subcliques


def _graph(edges, nodes=()):
    g = nx.Graph()
    g.add_nodes_from(nodes)
    g.add_edges_from(edges)
    return g


class TestBronKerbosch:
    def test_triangle(self):
        g = _graph([("a", "b"), ("b", "c"), ("a", "c")])
        assert enumerate_maximal_cliques(g) == [frozenset("abc")]

    def test_paper_fig1_graph(self):
        from repro.bench.paper_example import PAPER_EDGES

        g = _graph(PAPER_EDGES)
        cliques = {tuple(sorted(c)) for c in enumerate_maximal_cliques(g)}
        assert cliques == {("A", "B", "C", "D"), ("B", "C", "F"), ("A", "C", "E")}

    def test_isolated_node_is_clique(self):
        g = _graph([("a", "b")], nodes=["z"])
        cliques = {tuple(sorted(c)) for c in enumerate_maximal_cliques(g)}
        assert ("z",) in cliques

    def test_empty_graph(self):
        assert enumerate_maximal_cliques(nx.Graph()) == []

    @settings(max_examples=40, deadline=None)
    @given(st.integers(4, 10), st.floats(0.1, 0.9), st.integers(0, 10_000))
    def test_matches_networkx(self, n, p, seed):
        g = nx.gnp_random_graph(n, p, seed=seed)
        g = nx.relabel_nodes(g, {i: f"n{i}" for i in g.nodes})
        ours = {frozenset(c) for c in enumerate_maximal_cliques(g)}
        ref = {frozenset(c) for c in nx.find_cliques(g)}
        assert ours == ref


class TestSubcliques:
    BITS = {"a": 1, "b": 1, "c": 2, "d": 4}

    def test_exact_width_subsets(self):
        subs = enumerate_subcliques(
            frozenset("abcd"), self.BITS, target_bit_sums={2, 4, 8}, max_bits=8
        )
        totals = {
            tuple(sorted(s)): sum(self.BITS[m] for m in s) for s in subs
        }
        assert all(t in {2, 4, 8} for t in totals.values())
        assert ("a", "b") in totals  # 2 bits
        assert ("a", "b", "c") in totals  # 4 bits
        assert ("a", "b", "c", "d") in totals  # 8 bits
        assert ("c", "d") not in totals  # 6 bits: no such cell

    def test_incomplete_extends_to_larger_cell(self):
        subs = enumerate_subcliques(
            frozenset("abcd"),
            self.BITS,
            target_bit_sums={2, 4, 8},
            max_bits=8,
            allow_incomplete=True,
        )
        members = {tuple(sorted(s)) for s in subs}
        assert ("c", "d") in members  # 6 bits -> incomplete 8

    def test_incomplete_needs_larger_cell(self):
        # A sum equal to max_bits is exact, not incomplete; sums above the
        # largest width never qualify.
        subs = enumerate_subcliques(
            frozenset("abd"), self.BITS, target_bit_sums={2, 4}, max_bits=4,
            allow_incomplete=True,
        )
        members = {tuple(sorted(s)) for s in subs}
        assert ("a", "b") in members  # 2 exact
        assert ("a", "d") not in members  # 5 bits > max 4
        assert ("a", "b", "d") not in members  # 6 bits > max 4

    def test_min_members(self):
        subs = enumerate_subcliques(
            frozenset("ab"), self.BITS, target_bit_sums={1, 2}, max_bits=2, min_members=2
        )
        assert {tuple(sorted(s)) for s in subs} == {("a", "b")}

    def test_cap_limits_output(self):
        bits = {f"n{i}": 1 for i in range(24)}
        subs = enumerate_subcliques(
            frozenset(bits),
            bits,
            target_bit_sums={2, 4, 8},
            max_bits=8,
            max_subsets_per_total=50,
        )
        # Without the cap this would be millions of subsets.
        assert 0 < len(subs) <= 3 * 50

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 8))
    def test_every_emitted_subset_is_valid(self, n):
        bits = {f"n{i}": (i % 3) + 1 for i in range(n)}
        targets = {2, 3, 4, 8}
        subs = enumerate_subcliques(frozenset(bits), bits, targets, max_bits=8)
        for s in subs:
            assert len(s) >= 2
            assert sum(bits[m] for m in s) in targets
