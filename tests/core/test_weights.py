"""Unit tests for the Section 3.2 weight formula and blocking test."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.weights import KEEP_WEIGHT, weight_formula


class TestWeightFormula:
    def test_clean_candidates_reward_width(self):
        assert weight_formula(8, 0) == pytest.approx(1 / 8)
        assert weight_formula(4, 0) == pytest.approx(1 / 4)
        # One clean 8-bit beats two clean 4-bit (paper Section 3.2).
        assert weight_formula(8, 0) < 2 * weight_formula(4, 0)

    def test_blocked_candidates_penalized(self):
        assert weight_formula(2, 1) == 4.0
        assert weight_formula(3, 1) == 6.0
        assert weight_formula(4, 1) == 8.0
        assert weight_formula(8, 1) == 16.0

    def test_paper_arithmetic_8bit_vs_two_4bit(self):
        # Paper: blocked 8-bit (w=16) loses to clean 4-bit + blocked 4-bit
        # (0.25 + 8 = 8.25).
        assert weight_formula(8, 1) > weight_formula(4, 0) + weight_formula(4, 1)

    def test_hopeless_candidates_infinite(self):
        assert weight_formula(2, 2) == math.inf
        assert weight_formula(4, 7) == math.inf
        assert weight_formula(1, 1) == math.inf

    def test_exponential_in_blockers(self):
        assert weight_formula(8, 2) == 2 * weight_formula(8, 1)
        assert weight_formula(8, 3) == 8 * 2 ** 3

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            weight_formula(0, 0)

    def test_keep_weight_is_one(self):
        assert KEEP_WEIGHT == 1.0

    @given(st.integers(1, 16), st.integers(0, 20))
    def test_formula_matches_paper_cases(self, bits, blockers):
        w = weight_formula(bits, blockers)
        if blockers == 0:
            assert w == 1.0 / bits
        elif blockers < bits:
            assert w == bits * 2.0 ** blockers
        else:
            assert w == math.inf

    @given(st.integers(1, 16))
    def test_any_blocked_worse_than_any_clean(self, bits):
        assert weight_formula(bits, 0) < weight_formula(max(bits, 2), 1)
