"""Tests for the pure, picklable solve-stage subproblems."""

import pickle

import pytest

import repro.core.subproblem as subproblem
from repro.core.subproblem import (
    SubproblemResult,
    make_spec,
    solve_subproblem,
    solve_subproblems,
)
from repro.ilp.scipy_backend import scipy_available
from repro.ilp.setpart import SetPartitionSolution

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="SciPy not installed")


class FakeCandidate:
    def __init__(self, members, weight):
        self.members = members
        self.weight = weight


def _spec(index=0, solver="exact"):
    # Elements a,b,c; candidates: singletons (weight 1) and {a,b} cheap pair.
    cands = [
        FakeCandidate(("a",), 1.0),
        FakeCandidate(("b",), 1.0),
        FakeCandidate(("c",), 1.0),
        FakeCandidate(("a", "b"), 0.5),
    ]
    return make_spec(index, ["a", "b", "c"], cands, solver)


class TestSpec:
    def test_make_spec_maps_members_to_sorted_node_positions(self):
        spec = _spec()
        assert spec.nodes == ("a", "b", "c")
        assert spec.subsets == ((0,), (1,), (2,), (0, 1))
        assert spec.weights == (1.0, 1.0, 1.0, 0.5)

    def test_spec_and_result_are_picklable(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        res = solve_subproblem(spec)
        assert pickle.loads(pickle.dumps(res)) == res

    def test_to_problem_roundtrip(self):
        p = _spec().to_problem()
        assert p.n_elements == 3
        assert p.subsets[3] == frozenset({0, 1})


class TestSolve:
    def test_exact_picks_cheap_pair(self):
        res = solve_subproblem(_spec())
        assert set(res.chosen) == {2, 3}
        assert res.objective == pytest.approx(1.5)
        assert res.optimal

    @needs_scipy
    def test_scipy_matches_exact_objective(self):
        exact = solve_subproblem(_spec(solver="exact"))
        hi = solve_subproblem(_spec(solver="scipy"))
        assert hi.objective == pytest.approx(exact.objective)
        assert hi.nodes_explored == 0

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            solve_subproblem(_spec(solver="magic"))

    def test_result_index_preserved(self):
        assert solve_subproblem(_spec(index=7)).index == 7


class TestScipyOptionality:
    """solver='exact' must run (and the fallback stay gated) without SciPy."""

    def test_scipy_solver_raises_cleanly_when_unavailable(self, monkeypatch):
        import repro.ilp.scipy_backend as backend

        monkeypatch.setattr(backend, "scipy_available", lambda: False)
        with pytest.raises(RuntimeError, match="SciPy"):
            solve_subproblem(_spec(solver="scipy"))

    def test_exact_keeps_incumbent_when_scipy_missing(self, monkeypatch):
        import repro.ilp.scipy_backend as backend

        incumbent = SetPartitionSolution(
            chosen=[0, 1, 2], objective=3.0, feasible=True, nodes_explored=9,
            optimal=False,
        )
        monkeypatch.setattr(
            subproblem, "solve_set_partition", lambda p, warm=None: incumbent
        )
        monkeypatch.setattr(backend, "scipy_available", lambda: False)
        res = solve_subproblem(_spec())
        assert res.chosen == (0, 1, 2)
        assert res.objective == pytest.approx(3.0)
        assert not res.optimal

    @needs_scipy
    def test_exact_uses_scipy_fallback_when_available(self, monkeypatch):
        incumbent = SetPartitionSolution(
            chosen=[0, 1, 2], objective=3.0, feasible=True, nodes_explored=9,
            optimal=False,
        )
        monkeypatch.setattr(
            subproblem, "solve_set_partition", lambda p, warm=None: incumbent
        )
        res = solve_subproblem(_spec())
        # HiGHS finishes the job: the true optimum (c + {a,b}) wins.
        assert res.objective == pytest.approx(1.5)


class TestFanOut:
    def test_serial_and_parallel_identical(self):
        specs = [_spec(index=i) for i in range(6)]
        serial = solve_subproblems(specs, workers=1)
        parallel = solve_subproblems(specs, workers=2)
        assert serial == parallel
        assert [r.index for r in parallel] == list(range(6))

    def test_empty_and_single_spec_paths(self):
        assert solve_subproblems([], workers=4) == []
        [res] = solve_subproblems([_spec()], workers=4)
        assert isinstance(res, SubproblemResult)

    def test_serial_and_parallel_metrics_snapshots_identical(self):
        # Worker snapshot merging must be invisible: the parent registry
        # after a pooled run equals a serial run field-by-field, with int
        # counters staying ints through the snapshot/merge round-trip.
        from repro import obs

        specs = [_spec(index=i) for i in range(4)]
        snapshots = {}
        for label, workers in (("serial", 1), ("parallel", 2)):
            prev = obs.set_registry(obs.MetricsRegistry())
            try:
                solve_subproblems(specs, workers=workers)
                snapshots[label] = obs.get_registry().snapshot()
            finally:
                obs.set_registry(prev)
        serial, parallel = snapshots["serial"], snapshots["parallel"]
        assert serial == parallel
        assert serial["counters"]  # the solves actually counted something
        for section in ("counters", "gauges"):
            for name, value in serial[section].items():
                assert type(value) is type(parallel[section][name]), name
