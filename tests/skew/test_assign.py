"""Tests for useful-skew computation and assignment."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.skew import assign_useful_skew, optimal_skew
from repro.sta import Timer


class TestOptimalSkew:
    def test_balances_d_and_q(self):
        # d=-0.1, q=+0.3: shifting by +0.2 equalizes both at +0.1.
        assert optimal_skew(-0.1, 0.3, window=1.0) == pytest.approx(0.2)

    def test_clamped_to_window(self):
        assert optimal_skew(-1.0, 1.0, window=0.2) == pytest.approx(0.2)
        assert optimal_skew(1.0, -1.0, window=0.2) == pytest.approx(-0.2)

    def test_balanced_input_needs_no_skew(self):
        assert optimal_skew(0.5, 0.5, window=0.2) == 0.0

    def test_unconstrained_both_sides(self):
        assert optimal_skew(math.inf, math.inf, window=0.2) == 0.0

    def test_unconstrained_d_with_failing_q(self):
        s = optimal_skew(math.inf, -0.5, window=0.2)
        assert s == -0.2  # pull clock earlier to help Q

    def test_unconstrained_q_with_failing_d(self):
        s = optimal_skew(-0.5, math.inf, window=0.2)
        assert s == 0.2

    @given(
        st.floats(min_value=-1, max_value=1, allow_nan=False),
        st.floats(min_value=-1, max_value=1, allow_nan=False),
        st.floats(min_value=0.01, max_value=0.5, allow_nan=False),
    )
    def test_never_hurts_worst_side(self, d, q, w):
        """min(d+s, q-s) at the chosen s is >= min(d, q) at s=0."""
        s = optimal_skew(d, q, w)
        assert -w - 1e-12 <= s <= w + 1e-12
        assert min(d + s, q - s) >= min(d, q) - 1e-9


class TestAssignUsefulSkew:
    def test_improves_wns_on_skewed_design(self, lib):
        # Tight period: input paths fail while output paths have margin, so
        # useful skew can trade Q slack for D slack.
        from tests.conftest import make_flop_row

        d = make_flop_row(lib, n_flops=4)
        timer = Timer(d, clock_period=0.12)
        regs = d.registers()
        before = timer.summary()
        result = assign_useful_skew(timer, regs, window=0.05)
        after = timer.summary()
        assert result.wns_before == pytest.approx(before.wns)
        assert result.wns_after == pytest.approx(after.wns)
        assert after.wns >= before.wns - 1e-9

    def test_offsets_within_window(self, flop_row):
        timer = Timer(flop_row, clock_period=0.2)
        result = assign_useful_skew(timer, flop_row.registers(), window=0.03)
        assert result.offsets
        assert all(abs(v) <= 0.03 + 1e-12 for v in result.offsets.values())

    def test_balanced_design_gets_near_zero_skew(self, flop_row):
        timer = Timer(flop_row, clock_period=10.0)  # everything has slack
        result = assign_useful_skew(timer, flop_row.registers(), window=0.1)
        # d and q slacks are finite but unequal; skew equalizes them.  The
        # offsets must at least not create violations.
        assert timer.summary().failing_endpoints == 0

    def test_offsets_installed_in_timer(self, flop_row):
        timer = Timer(flop_row, clock_period=0.2)
        result = assign_useful_skew(timer, flop_row.registers(), window=0.05)
        for name, off in result.offsets.items():
            assert timer.skew.get(name, 0.0) == pytest.approx(off)
