"""Tests for the command-line driver."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "d1"
    rc = main(["generate", "--preset", "D1", "--scale", "0.08", "--out-prefix", str(out)])
    assert rc == 0
    return out


class TestCli:
    def test_generate_writes_files(self, generated):
        for suffix in (".lib", ".v", ".def"):
            assert generated.with_suffix(suffix).exists()

    def test_report(self, generated, capsys):
        rc = main([
            "report",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registers" in out and "clock capacitance" in out

    def test_compose_roundtrip(self, generated, tmp_path, capsys):
        out_prefix = tmp_path / "composed"
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--out-prefix", str(out_prefix),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Base" in text and "Ours" in text
        assert out_prefix.with_suffix(".v").exists()
        assert out_prefix.with_suffix(".def").exists()

    def test_compose_trace_and_workers(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--workers", "2",
            "--trace",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # The stage-runtime table and the nested trace both print.
        assert "Total(s)" in out
        assert "base-metrics" in out and "compose" in out
        assert "solve" in out and "workers=2" in out

    def test_compose_heuristic_mode(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--heuristic",
        ])
        assert rc == 0

    def test_default_library_used_without_lib(self, generated, capsys):
        rc = main([
            "report",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0

    def test_eco_storm(self, capsys):
        rc = main([
            "eco",
            "--preset", "D1",
            "--scale", "0.1",
            "--moves", "3",
            "--audit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prime:" in out
        assert out.count("[audit ok]") == 3
        assert "components" in out and "recomputed" in out

    def test_missing_required_args(self):
        with pytest.raises(SystemExit):
            main(["compose", "--period", "1.0"])
