"""Tests for the command-line driver."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.manifest import MANIFEST_REQUIRED_KEYS, validate_manifest


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "d1"
    rc = main(["generate", "--preset", "D1", "--scale", "0.08", "--out-prefix", str(out)])
    assert rc == 0
    return out


class TestCli:
    def test_generate_writes_files(self, generated):
        for suffix in (".lib", ".v", ".def"):
            assert generated.with_suffix(suffix).exists()

    def test_report(self, generated, capsys):
        rc = main([
            "report",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registers" in out and "clock capacitance" in out

    def test_compose_roundtrip(self, generated, tmp_path, capsys):
        out_prefix = tmp_path / "composed"
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--out-prefix", str(out_prefix),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Base" in text and "Ours" in text
        assert out_prefix.with_suffix(".v").exists()
        assert out_prefix.with_suffix(".def").exists()

    def test_compose_trace_and_workers(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--workers", "2",
            "--trace",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # The stage-runtime table and the nested trace both print.
        assert "Total(s)" in out
        assert "base-metrics" in out and "compose" in out
        assert "solve" in out and "workers=2" in out

    def test_compose_heuristic_mode(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--heuristic",
        ])
        assert rc == 0

    def test_default_library_used_without_lib(self, generated, capsys):
        rc = main([
            "report",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0

    def test_eco_storm(self, capsys):
        rc = main([
            "eco",
            "--preset", "D1",
            "--scale", "0.1",
            "--moves", "3",
            "--audit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prime:" in out
        assert out.count("[audit ok]") == 3
        assert "components" in out and "recomputed" in out

    def test_missing_required_args(self):
        with pytest.raises(SystemExit):
            main(["compose", "--period", "1.0"])


class TestObservability:
    """The run/trace subcommands and their exported artifacts."""

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        yield
        obs.set_tracer(None)
        obs.set_registry(obs.MetricsRegistry())

    def test_run_exports_trace_and_manifest(self, tmp_path, capsys):
        trace_out = tmp_path / "t.json"
        manifest_out = tmp_path / "m.json"
        rc = main([
            "run",
            "--preset", "D1",
            "--scale", "0.1",
            "--workers", "2",
            "--trace-out", str(trace_out),
            "--manifest-out", str(manifest_out),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Base" in out and "Ours" in out

        trace = json.loads(trace_out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "flow.run" in names
        assert "stage.solve" in names
        assert "ilp.solve" in names
        # Parallel ILP workers contribute spans from their own processes.
        assert len({e["pid"] for e in events}) > 1
        # Worker ilp.solve spans nest under the parent's timeline
        # (adopted, not floating): every event has valid ts/dur.
        assert all(e["dur"] >= 0 for e in spans)

        manifest = json.loads(manifest_out.read_text())
        assert validate_manifest(manifest) == []
        assert set(MANIFEST_REQUIRED_KEYS) <= set(manifest)
        counters = manifest["metrics"]["counters"]
        # ILP effort and timer retime stats made it into the registry.
        assert counters.get("ilp.setpart.solves", 0) > 0
        assert counters.get("ilp.setpart.nodes_explored", 0) > 0
        assert counters.get("sta.full_timings", 0) > 0
        assert manifest["flow"]["registers_before"] > 0
        assert manifest["spans"]["ilp.solve"]["count"] > 0

    def test_run_without_artifacts_leaves_tracing_disabled(self, capsys):
        rc = main(["run", "--preset", "D1", "--scale", "0.1"])
        assert rc == 0
        assert not obs.tracing_enabled()

    def test_trace_subcommand_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main(["trace", str(out), "--preset", "D1", "--scale", "0.1"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert any(e.get("name") == "flow.run" for e in data["traceEvents"])

    def test_compose_accepts_trace_out(self, generated, tmp_path, capsys):
        trace_out = tmp_path / "c.json"
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--trace-out", str(trace_out),
        ])
        assert rc == 0
        assert json.loads(trace_out.read_text())["traceEvents"]

    def test_eco_prints_cache_efficiency_line(self, capsys):
        rc = main(["eco", "--preset", "D1", "--scale", "0.1", "--moves", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        cache_lines = [ln for ln in out.splitlines() if ln.startswith("cache:")]
        assert len(cache_lines) == 1
        line = cache_lines[0]
        assert "component hits" in line and "evictions" in line
        assert "runtime saved" in line
