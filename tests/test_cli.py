"""Tests for the command-line driver."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.manifest import MANIFEST_REQUIRED_KEYS, validate_manifest


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "d1"
    rc = main(["generate", "--preset", "D1", "--scale", "0.08", "--out-prefix", str(out)])
    assert rc == 0
    return out


class TestCli:
    def test_generate_writes_files(self, generated):
        for suffix in (".lib", ".v", ".def"):
            assert generated.with_suffix(suffix).exists()

    def test_report(self, generated, capsys):
        rc = main([
            "report",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registers" in out and "clock capacitance" in out

    def test_compose_roundtrip(self, generated, tmp_path, capsys):
        out_prefix = tmp_path / "composed"
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--out-prefix", str(out_prefix),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Base" in text and "Ours" in text
        assert out_prefix.with_suffix(".v").exists()
        assert out_prefix.with_suffix(".def").exists()

    def test_compose_trace_and_workers(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--workers", "2",
            "--trace",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # The stage-runtime table and the nested trace both print.
        assert "Total(s)" in out
        assert "base-metrics" in out and "compose" in out
        assert "solve" in out and "workers=2" in out

    def test_compose_heuristic_mode(self, generated, capsys):
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--heuristic",
        ])
        assert rc == 0

    def test_default_library_used_without_lib(self, generated, capsys):
        rc = main([
            "report",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "1.0",
        ])
        assert rc == 0

    def test_eco_storm(self, capsys):
        rc = main([
            "eco",
            "--preset", "D1",
            "--scale", "0.1",
            "--moves", "3",
            "--audit",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "prime:" in out
        assert out.count("[audit ok]") == 3
        assert "components" in out and "recomputed" in out

    def test_missing_required_args(self):
        with pytest.raises(SystemExit):
            main(["compose", "--period", "1.0"])


class TestObservability:
    """The run/trace subcommands and their exported artifacts."""

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        yield
        obs.set_tracer(None)
        obs.set_registry(obs.MetricsRegistry())

    def test_run_exports_trace_and_manifest(self, tmp_path, capsys):
        trace_out = tmp_path / "t.json"
        manifest_out = tmp_path / "m.json"
        rc = main([
            "run",
            "--preset", "D1",
            "--scale", "0.1",
            "--workers", "2",
            "--trace-out", str(trace_out),
            "--manifest-out", str(manifest_out),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Base" in out and "Ours" in out

        trace = json.loads(trace_out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "flow.run" in names
        assert "stage.solve" in names
        assert "ilp.solve" in names
        # Parallel ILP workers contribute spans from their own processes.
        assert len({e["pid"] for e in events}) > 1
        # Worker ilp.solve spans nest under the parent's timeline
        # (adopted, not floating): every event has valid ts/dur.
        assert all(e["dur"] >= 0 for e in spans)

        manifest = json.loads(manifest_out.read_text())
        assert validate_manifest(manifest) == []
        assert set(MANIFEST_REQUIRED_KEYS) <= set(manifest)
        counters = manifest["metrics"]["counters"]
        # ILP effort and timer retime stats made it into the registry.
        assert counters.get("ilp.setpart.solves", 0) > 0
        assert counters.get("ilp.setpart.nodes_explored", 0) > 0
        assert counters.get("sta.full_timings", 0) > 0
        assert manifest["flow"]["registers_before"] > 0
        assert manifest["spans"]["ilp.solve"]["count"] > 0

    def test_run_without_artifacts_leaves_tracing_disabled(self, capsys):
        rc = main(["run", "--preset", "D1", "--scale", "0.1"])
        assert rc == 0
        assert not obs.tracing_enabled()

    def test_trace_subcommand_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main(["trace", str(out), "--preset", "D1", "--scale", "0.1"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert any(e.get("name") == "flow.run" for e in data["traceEvents"])

    def test_compose_accepts_trace_out(self, generated, tmp_path, capsys):
        trace_out = tmp_path / "c.json"
        rc = main([
            "compose",
            "--lib", str(generated) + ".lib",
            "--verilog", str(generated) + ".v",
            "--def", str(generated) + ".def",
            "--period", "0.5",
            "--trace-out", str(trace_out),
        ])
        assert rc == 0
        assert json.loads(trace_out.read_text())["traceEvents"]

    def test_eco_prints_cache_efficiency_line(self, capsys):
        rc = main(["eco", "--preset", "D1", "--scale", "0.1", "--moves", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        cache_lines = [ln for ln in out.splitlines() if ln.startswith("cache:")]
        assert len(cache_lines) == 1
        line = cache_lines[0]
        assert "component hits" in line and "evictions" in line
        assert "runtime saved" in line


def _history_line(compose=1.0, sha="aaaaaaaaaaaa", when=1000.0):
    return {
        "schema": "repro.bench.history/1",
        "generated_unix": when,
        "git_sha": sha,
        "scale": 1.0,
        "designs": {
            "D1": {
                "runtime_seconds": compose * 2,
                "compose_seconds": compose,
                "registers_after": 500,
                "tns": -1.5,
                "warmstart_hits": 10,
            }
        },
    }


class TestPerformanceIntelligence:
    """--profile/--progress, bench report, and the obs analytics commands."""

    @pytest.fixture(autouse=True)
    def _restore_obs(self):
        yield
        obs.set_tracer(None)
        obs.set_registry(obs.MetricsRegistry())
        for stale in (obs.set_profiler(None), obs.set_heartbeat(None)):
            if stale is not None:
                stale.stop()

    def test_run_profile_writes_folded_with_worker_samples(
        self, tmp_path, capsys
    ):
        # The acceptance criterion: a profiled parallel run produces a
        # non-empty folded profile whose stacks include the compose stage
        # and the worker ILP solves merged under the fan-out site.
        folded_out = tmp_path / "out.folded"
        manifest_out = tmp_path / "m.json"
        rc = main([
            "run",
            "--preset", "D1",
            "--scale", "0.1",
            "--workers", "2",
            "--profile", str(folded_out),
            "--manifest-out", str(manifest_out),
        ])
        assert rc == 0
        assert "wrote folded profile" in capsys.readouterr().out

        text = folded_out.read_text()
        assert text.strip()
        stacks = {}
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            stacks[frames] = int(count)
            assert int(count) >= 1
        assert any("stage.compose" in frames for frames in stacks)
        # Worker ilp.solve samples nest under the parent solve stage.
        assert any(
            "stage.solve;ilp.solve" in frames for frames in stacks
        )

        # The same run's manifest archives resources and progress.
        manifest = json.loads(manifest_out.read_text())
        assert validate_manifest(manifest) == []
        assert manifest["resources"]["samples"] >= 1
        assert manifest["resources"]["peak_rss_bytes"] > 0
        progress_events = [e["event"] for e in manifest["progress"]["events"]]
        assert "stage_started" in progress_events
        assert "stage_finished" in progress_events

    def test_run_progress_streams_to_stderr(self, capsys):
        rc = main([
            "run", "--preset", "D1", "--scale", "0.1", "--progress",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[progress]" in err
        assert "stage=" in err

    def test_profile_env_enables_profiling(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "env.folded"
        monkeypatch.setenv("REPRO_PROFILE", str(out))
        rc = main(["run", "--preset", "D1", "--scale", "0.1"])
        assert rc == 0
        assert out.read_text().strip()

    def test_bench_report_ok_and_check_gate(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        lines = [_history_line(compose=1.0, when=float(i)) for i in range(4)]
        history.write_text("".join(json.dumps(r) + "\n" for r in lines))
        rc = main(["bench", "report", "--history", str(history), "--check"])
        assert rc == 0
        assert "OK — no regressions" in capsys.readouterr().out

        # Inject the acceptance scenario: a 3x compose_seconds spike.
        with open(history, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(_history_line(compose=3.0, when=99.0)) + "\n")
        rc = main(["bench", "report", "--history", str(history), "--check"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "flow.D1.compose_seconds" in out
        assert "REGRESSION" in out

        # Without --check the regression is reported but not fatal.
        assert main(["bench", "report", "--history", str(history)]) == 0

    def test_bench_report_json_output(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        history.write_text(json.dumps(_history_line()) + "\n")
        report_out = tmp_path / "report.json"
        rc = main([
            "bench", "report",
            "--history", str(history),
            "--json", str(report_out),
        ])
        assert rc == 0
        data = json.loads(report_out.read_text())
        assert data["schema"] == "repro.bench.report/1"
        assert data["ok"] is True

    def test_bench_report_real_repo_history_is_clean(self, capsys):
        rc = main(["bench", "report", "--check"])
        assert rc == 0, capsys.readouterr().out

    def test_bench_report_missing_or_corrupt_history_exits_two(
        self, tmp_path, capsys
    ):
        assert main([
            "bench", "report", "--history", str(tmp_path / "nope.jsonl"),
        ]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["bench", "report", "--history", str(bad)]) == 2
        assert main([
            "bench", "report",
            "--history", str(bad),
            "--policy", str(tmp_path / "missing_policy.json"),
        ]) == 2

    def test_obs_critical_path(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        trace.write_text(json.dumps({
            "traceEvents": [
                {"ph": "X", "name": "flow.run", "ts": 0, "dur": 100,
                 "pid": 1, "tid": 1},
                {"ph": "X", "name": "stage.compose", "ts": 10, "dur": 80,
                 "pid": 1, "tid": 1},
            ]
        }))
        rc = main(["obs", "critical-path", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path: 2 spans" in out
        assert "stage.compose" in out

    def test_obs_critical_path_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": "nope"}))
        assert main(["obs", "critical-path", str(bad)]) == 2
        assert main([
            "obs", "critical-path", str(tmp_path / "missing.json"),
        ]) == 2

    def _write_manifest(self, tmp_path, name, compose_s):
        from repro.obs.manifest import build_manifest

        prev_tracer = obs.set_tracer(None)
        prev_registry = obs.set_registry(obs.MetricsRegistry())
        try:
            tracer = obs.install_tracer()
            with obs.span("stage.compose"):
                pass
            manifest = build_manifest(
                design={"name": "unit"},
                config={},
                flow={"tns": -1.0, "compose_seconds": compose_s},
                tracer=tracer,
            )
        finally:
            obs.set_tracer(prev_tracer)
            obs.set_registry(prev_registry)
        path = tmp_path / name
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_obs_diff(self, tmp_path, capsys):
        a = self._write_manifest(tmp_path, "a.json", 1.0)
        b = self._write_manifest(tmp_path, "b.json", 3.0)
        json_out = tmp_path / "diff.json"
        rc = main(["obs", "diff", a, b, "--json", str(json_out)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flow (" in out and "compose_seconds" in out
        diff = json.loads(json_out.read_text())
        rows = {r["name"]: r for r in diff["flow"]}
        assert rows["compose_seconds"]["delta"] == 2.0

    def test_obs_diff_rejects_invalid_manifest(self, tmp_path, capsys):
        a = self._write_manifest(tmp_path, "a.json", 1.0)
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "diff", a, str(bad)]) == 2
