"""Tests for the cell library model and default library generator."""

import pytest

from repro.library import (
    CellLibrary,
    RegisterCell,
    ScanStyle,
    default_library,
)
from repro.library.functional import DFF_R, DFF_R_S, DFF_S, LAT, FunctionalClass, ResetKind


@pytest.fixture(scope="module")
def lib() -> CellLibrary:
    return default_library()


class TestFunctionalClass:
    def test_names_distinct(self):
        assert DFF_R.name == "DFF_R"
        assert DFF_R_S.name == "DFF_R_S"
        assert LAT.name == "LAT"

    def test_control_pins(self):
        assert DFF_R.control_pin_names() == ("RN",)
        assert DFF_R_S.control_pin_names() == ("RN", "SE")
        assert FunctionalClass().control_pin_names() == ()

    def test_reset_set_class(self):
        fc = FunctionalClass(reset=ResetKind.RESET_SET)
        assert fc.control_pin_names() == ("RN", "SN")

    def test_hashable_for_dict_keys(self):
        assert len({DFF_R, DFF_R_S, DFF_R}) == 2


class TestDefaultLibrary:
    def test_widths_available(self, lib):
        assert lib.widths_for(DFF_R) == (1, 2, 3, 4, 8)

    def test_latches_have_reduced_widths(self, lib):
        assert lib.widths_for(LAT) == (1, 2, 4)

    def test_max_width(self, lib):
        assert lib.max_width_for(DFF_R) == 8
        assert lib.max_width_for(FunctionalClass(negedge=True)) == 0

    def test_drive_strength_ordering(self, lib):
        cells = sorted(lib.register_cells(DFF_R, 4), key=lambda c: c.drive_resistance)
        assert len(cells) == 3
        # Lower drive resistance costs more area.
        assert cells[0].drive_resistance < cells[-1].drive_resistance
        assert cells[0].area > cells[-1].area

    def test_scan_class_has_multi_scan_variants(self, lib):
        styles = {c.scan_style for c in lib.register_cells(DFF_R_S, 4)}
        assert styles == {ScanStyle.INTERNAL, ScanStyle.MULTI}
        # Width 1 has no multi-scan variant (identical to internal).
        styles1 = {c.scan_style for c in lib.register_cells(DFF_R_S, 1)}
        assert styles1 == {ScanStyle.INTERNAL}

    def test_nonscan_class_has_no_scan_cells(self, lib):
        styles = {c.scan_style for c in lib.register_cells(DFF_R, 8)}
        assert styles == {ScanStyle.NONE}

    def test_unknown_cell_raises(self, lib):
        with pytest.raises(KeyError):
            lib.cell("NO_SUCH_CELL")

    def test_duplicate_add_raises(self, lib):
        with pytest.raises(ValueError):
            lib.add(lib.cell("INV_X1"))


class TestMbrEconomics:
    """The per-bit sharing effects that make MBR composition worthwhile."""

    def test_area_per_bit_decreases_with_width(self, lib):
        per_bit = [
            lib.register_cells(DFF_R, w)[0].area_per_bit for w in (1, 2, 4, 8)
        ]
        assert per_bit == sorted(per_bit, reverse=True)

    def test_clock_cap_per_bit_decreases_with_width(self, lib):
        per_bit = [
            min(lib.register_cells(DFF_R, w), key=lambda c: c.clock_pin_cap).clock_cap_per_bit
            for w in (1, 2, 4, 8)
        ]
        assert per_bit == sorted(per_bit, reverse=True)

    def test_8bit_clock_cap_much_less_than_8_single_bits(self, lib):
        one = min(lib.register_cells(DFF_R, 1), key=lambda c: c.clock_pin_cap)
        eight = min(lib.register_cells(DFF_R, 8), key=lambda c: c.clock_pin_cap)
        assert eight.clock_pin_cap < 8 * one.clock_pin_cap * 0.6

    def test_multi_scan_smaller_than_internal(self, lib):
        internal = [c for c in lib.register_cells(DFF_R_S, 4) if c.scan_style is ScanStyle.INTERNAL]
        multi = [c for c in lib.register_cells(DFF_R_S, 4) if c.scan_style is ScanStyle.MULTI]
        assert min(c.area for c in multi) < min(c.area for c in internal)


class TestRegisterCellPins:
    def test_single_bit_pin_names(self, lib):
        cell = lib.register_cells(DFF_R, 1)[0]
        assert cell.d_pin(0) == "D" and cell.q_pin(0) == "Q"
        assert cell.has_pin("CK") and cell.has_pin("RN")

    def test_multi_bit_pin_names(self, lib):
        cell = lib.register_cells(DFF_R, 4)[0]
        assert cell.d_pin(2) == "D2" and cell.q_pin(3) == "Q3"
        assert cell.data_input_pins() == ("D0", "D1", "D2", "D3")

    def test_bit_out_of_range(self, lib):
        cell = lib.register_cells(DFF_R, 4)[0]
        with pytest.raises(IndexError):
            cell.d_pin(4)

    def test_internal_scan_pins(self, lib):
        cell = next(
            c for c in lib.register_cells(DFF_R_S, 4) if c.scan_style is ScanStyle.INTERNAL
        )
        assert cell.si_pin() == "SI" and cell.so_pin() == "SO"
        assert cell.has_pin("SI") and cell.has_pin("SO") and cell.has_pin("SE")

    def test_multi_scan_pins(self, lib):
        cell = next(c for c in lib.register_cells(DFF_R_S, 4) if c.scan_style is ScanStyle.MULTI)
        assert cell.si_pin(2) == "SI2" and cell.so_pin(1) == "SO1"
        assert cell.has_pin("SI0") and cell.has_pin("SO3")

    def test_pin_offsets_inside_footprint(self, lib):
        for width in (1, 4, 8):
            cell = lib.register_cells(DFF_R_S, width)[0]
            for pin in cell.pins:
                assert 0.0 <= pin.dx <= cell.width + 1e-9
                assert 0.0 <= pin.dy <= cell.height + 1e-9

    def test_delay_model_monotone_in_load(self, lib):
        cell = lib.register_cells(DFF_R, 4)[0]
        assert cell.delay(0.02) > cell.delay(0.01) > 0.0

    def test_clock_buffers_sorted_by_strength(self, lib):
        bufs = lib.clock_buffers()
        assert len(bufs) == 3
        caps = [b.max_fanout_cap for b in bufs]
        assert caps == sorted(caps)
