"""Unit tests for the stage-pipeline engine."""

import dataclasses

import pytest

from repro import obs
from repro.engine import (
    FunctionStage,
    Pipeline,
    Stage,
    StageOutput,
    StageTrace,
    format_counter_value,
    stage,
)
from repro.engine.pipeline import _merge_timing_counters
from repro.sta.timer import TimerStats


class TestStage:
    def test_function_stage_runs(self):
        st = FunctionStage("double", lambda ctx: {"value": ctx["x"] * 2})
        assert st.name == "double"
        assert st.run({"x": 3}) == {"value": 6}

    def test_stage_decorator(self):
        @stage("named")
        def my_stage(ctx):
            return None

        assert isinstance(my_stage, FunctionStage)
        assert my_stage.name == "named"
        assert isinstance(my_stage, Stage)

    def test_protocol_accepts_custom_class(self):
        class Custom:
            name = "custom"

            def run(self, ctx):
                return None

        assert isinstance(Custom(), Stage)


class TestPipeline:
    def test_runs_stages_in_order(self):
        order = []
        pipe = Pipeline(
            (
                FunctionStage("a", lambda ctx: order.append("a")),
                FunctionStage("b", lambda ctx: order.append("b")),
                FunctionStage("c", lambda ctx: order.append("c")),
            )
        )
        trace = pipe.run({})
        assert order == ["a", "b", "c"]
        assert [r.name for r in trace.records] == ["a", "b", "c"]
        assert all(r.seconds >= 0 for r in trace.records)

    def test_counters_recorded(self):
        pipe = Pipeline((FunctionStage("count", lambda ctx: {"n": 7}),))
        trace = pipe.run({})
        assert trace.records[0].counters == {"n": 7}

    def test_stage_output_nests_children(self):
        child = StageTrace()
        child.record("inner", 0.5)
        pipe = Pipeline(
            (FunctionStage("outer", lambda ctx: StageOutput({"k": 1}, child)),)
        )
        trace = pipe.run({})
        rec = trace.records[0]
        assert rec.counters == {"k": 1}
        assert rec.children is child
        # Children do not double-count into the top-level total.
        assert trace.total_seconds == pytest.approx(rec.seconds)

    def test_repeated_runs_accumulate_into_one_trace(self):
        pipe = Pipeline((FunctionStage("s", lambda ctx: None),))
        trace = StageTrace()
        pipe.run({}, trace)
        pipe.run({}, trace)
        assert [r.name for r in trace.records] == ["s", "s"]
        assert trace.aggregated() == {"s": pytest.approx(trace.total_seconds)}

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(
                (
                    FunctionStage("same", lambda ctx: None),
                    FunctionStage("same", lambda ctx: None),
                )
            )

    def test_stage_exception_propagates(self):
        def boom(ctx):
            raise RuntimeError("boom")

        pipe = Pipeline((FunctionStage("boom", boom),))
        with pytest.raises(RuntimeError, match="boom"):
            pipe.run({})

    def test_context_shared_across_stages(self):
        pipe = Pipeline(
            (
                FunctionStage("write", lambda ctx: ctx.__setitem__("k", 1)),
                FunctionStage("read", lambda ctx: {"seen": ctx["k"]}),
            )
        )
        trace = pipe.run({})
        assert trace.records[1].counters == {"seen": 1}


class TestStageTrace:
    def test_aggregated_folds_repeats_in_first_seen_order(self):
        trace = StageTrace()
        trace.record("a", 1.0)
        trace.record("b", 2.0)
        trace.record("a", 3.0)
        assert trace.aggregated() == {"a": 4.0, "b": 2.0}
        assert trace.stage_names() == ["a", "b"]
        assert trace.total_seconds == 6.0

    def test_counter_total(self):
        trace = StageTrace()
        trace.record("a", 0.0, counters={"n": 2})
        trace.record("b", 0.0, counters={"n": 3, "m": 1})
        assert trace.counter_total("n") == 5
        assert trace.counter_total("missing") == 0

    def test_format_lists_stages_and_total(self):
        trace = StageTrace()
        trace.record("solve", 1.25, counters={"ilp_nodes": 42})
        child = StageTrace()
        child.record("inner", 0.5)
        trace.record("apply", 0.75, children=child)
        text = trace.format()
        assert "solve" in text and "ilp_nodes=42" in text
        assert "inner" in text
        assert "total" in text and "2.0000" in text


class TestIntCounters:
    """Integer counters stay ints end-to-end: recording, totalling,
    formatting."""

    def test_format_counter_value(self):
        assert format_counter_value(2) == "2"
        assert format_counter_value(1500000) == "1500000"
        assert format_counter_value(0.25) == "0.25"
        assert format_counter_value(2.0) == "2"

    def test_counter_total_preserves_int(self):
        trace = StageTrace()
        trace.record("a", 0.0, counters={"n": 2})
        trace.record("b", 0.0, counters={"n": 3})
        total = trace.counter_total("n")
        assert total == 5 and isinstance(total, int)
        missing = trace.counter_total("missing")
        assert missing == 0 and isinstance(missing, int)

    def test_format_renders_ints_without_decimal_point(self):
        trace = StageTrace()
        trace.record("solve", 0.1, counters={"workers": 2, "frac": 0.5})
        text = trace.format()
        assert "workers=2" in text and "workers=2.0" not in text
        assert "frac=0.5" in text


class TestTimingCounterNames:
    """Satellite (a): the pipeline's timer-effort counters use the
    canonical TimerStats field names — no drifted aliases like the old
    ``incr_timings``."""

    def test_merged_names_are_timerstats_fields(self):
        before = TimerStats()
        after = TimerStats(
            full_timings=1,
            incremental_timings=2,
            changes_applied=3,
            retimed_nodes=40,
            graph_nodes=100,
        )
        merged = _merge_timing_counters(None, before, after)
        field_names = {f.name for f in dataclasses.fields(TimerStats)}
        assert set(merged) <= field_names
        assert merged == {
            "changes_applied": 3,
            "incremental_timings": 2,
            "full_timings": 1,
            "retimed_nodes": 40,
            "graph_nodes": 100,
        }

    def test_merged_deltas_stay_ints(self):
        merged = _merge_timing_counters(
            {"seconds": 0.5},
            TimerStats(),
            TimerStats(incremental_timings=1, retimed_nodes=7, graph_nodes=9),
        )
        for key in ("incremental_timings", "retimed_nodes", "graph_nodes"):
            assert isinstance(merged[key], int)
        assert merged["seconds"] == 0.5

    def test_zero_deltas_keep_counters_untouched(self):
        counters = {"n": 1}
        stats = TimerStats(graph_nodes=50)
        assert _merge_timing_counters(counters, stats, stats) is counters


class TestReuseSummary:
    """Satellite (c): reuse aggregation across flow -> compose -> solve
    nesting."""

    def _nested_trace(self):
        solve = StageTrace()
        solve.record(
            "partition", 0.1,
            counters={"components_reused": 4, "components_recomputed": 1},
        )
        compose = StageTrace()
        compose.record(
            "analyze", 0.2,
            counters={"registers_reused": 30, "registers_recomputed": 5},
        )
        compose.record("solve", 0.3, children=solve)
        flow = StageTrace()
        flow.record("base-metrics", 0.1)
        flow.record("compose", 0.6, children=compose)
        return flow

    def test_folds_pairs_across_all_nesting_levels(self):
        summary = self._nested_trace().reuse_summary()
        assert summary == {
            "components": (4, 1),
            "registers": (30, 5),
        }
        for reused, recomputed in summary.values():
            assert isinstance(reused, int) and isinstance(recomputed, int)

    def test_repeated_passes_accumulate(self):
        trace = self._nested_trace()
        trace.record(
            "compose", 0.1,
            counters={"registers_reused": 10, "registers_recomputed": 0},
        )
        assert trace.reuse_summary()["registers"] == (40, 5)

    def test_unpaired_counters_ignored(self):
        trace = StageTrace()
        trace.record("a", 0.0, counters={"n": 3, "registers_reused": 1})
        assert trace.reuse_summary() == {"registers": (1, 0)}


class TestStageTraceFromSpans:
    """StageTrace as a view over tracer spans."""

    def _spans(self):
        tracer = obs.Tracer()
        prev = obs.set_tracer(tracer)
        try:
            with tracer.span("stage.compose", cat="stage", composed=3):
                # An intermediate non-stage span (like eco.recompose) must
                # not break the stage nesting chain.
                with tracer.span("eco.recompose", cat="eco"):
                    with tracer.span("stage.solve", cat="stage", workers=2):
                        with tracer.span("ilp.solve", cat="ilp"):
                            pass
            with tracer.span("stage.final", cat="stage", ok=True, frac=0.5):
                pass
        finally:
            obs.set_tracer(prev)
        return tracer.records()

    def test_rebuilds_nesting_and_strips_prefix(self):
        trace = StageTrace.from_spans(self._spans())
        assert [r.name for r in trace.records] == ["compose", "final"]
        compose = trace.records[0]
        assert compose.children is not None
        assert [r.name for r in compose.children.records] == ["solve"]
        # solve has no *stage* children: ilp.solve is cat="ilp".
        assert compose.children.records[0].children is None

    def test_counters_from_numeric_args_exclude_bools(self):
        trace = StageTrace.from_spans(self._spans())
        assert trace.records[0].counters == {"composed": 3}
        assert trace.records[0].children.records[0].counters == {"workers": 2}
        assert trace.records[1].counters == {"frac": 0.5}

    def test_pipeline_spans_match_its_stagetrace(self):
        tracer = obs.install_tracer()
        try:
            pipe = Pipeline(
                (
                    FunctionStage("a", lambda ctx: {"n": 1}),
                    FunctionStage("b", lambda ctx: None),
                )
            )
            direct = pipe.run({})
        finally:
            obs.set_tracer(None)
        view = StageTrace.from_spans(tracer.records())
        assert [r.name for r in view.records] == [r.name for r in direct.records]
        assert view.records[0].counters == direct.records[0].counters
