"""Unit tests for the stage-pipeline engine."""

import pytest

from repro.engine import (
    FunctionStage,
    Pipeline,
    Stage,
    StageOutput,
    StageTrace,
    stage,
)


class TestStage:
    def test_function_stage_runs(self):
        st = FunctionStage("double", lambda ctx: {"value": ctx["x"] * 2})
        assert st.name == "double"
        assert st.run({"x": 3}) == {"value": 6}

    def test_stage_decorator(self):
        @stage("named")
        def my_stage(ctx):
            return None

        assert isinstance(my_stage, FunctionStage)
        assert my_stage.name == "named"
        assert isinstance(my_stage, Stage)

    def test_protocol_accepts_custom_class(self):
        class Custom:
            name = "custom"

            def run(self, ctx):
                return None

        assert isinstance(Custom(), Stage)


class TestPipeline:
    def test_runs_stages_in_order(self):
        order = []
        pipe = Pipeline(
            (
                FunctionStage("a", lambda ctx: order.append("a")),
                FunctionStage("b", lambda ctx: order.append("b")),
                FunctionStage("c", lambda ctx: order.append("c")),
            )
        )
        trace = pipe.run({})
        assert order == ["a", "b", "c"]
        assert [r.name for r in trace.records] == ["a", "b", "c"]
        assert all(r.seconds >= 0 for r in trace.records)

    def test_counters_recorded(self):
        pipe = Pipeline((FunctionStage("count", lambda ctx: {"n": 7}),))
        trace = pipe.run({})
        assert trace.records[0].counters == {"n": 7}

    def test_stage_output_nests_children(self):
        child = StageTrace()
        child.record("inner", 0.5)
        pipe = Pipeline(
            (FunctionStage("outer", lambda ctx: StageOutput({"k": 1}, child)),)
        )
        trace = pipe.run({})
        rec = trace.records[0]
        assert rec.counters == {"k": 1}
        assert rec.children is child
        # Children do not double-count into the top-level total.
        assert trace.total_seconds == pytest.approx(rec.seconds)

    def test_repeated_runs_accumulate_into_one_trace(self):
        pipe = Pipeline((FunctionStage("s", lambda ctx: None),))
        trace = StageTrace()
        pipe.run({}, trace)
        pipe.run({}, trace)
        assert [r.name for r in trace.records] == ["s", "s"]
        assert trace.aggregated() == {"s": pytest.approx(trace.total_seconds)}

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(
                (
                    FunctionStage("same", lambda ctx: None),
                    FunctionStage("same", lambda ctx: None),
                )
            )

    def test_stage_exception_propagates(self):
        def boom(ctx):
            raise RuntimeError("boom")

        pipe = Pipeline((FunctionStage("boom", boom),))
        with pytest.raises(RuntimeError, match="boom"):
            pipe.run({})

    def test_context_shared_across_stages(self):
        pipe = Pipeline(
            (
                FunctionStage("write", lambda ctx: ctx.__setitem__("k", 1)),
                FunctionStage("read", lambda ctx: {"seen": ctx["k"]}),
            )
        )
        trace = pipe.run({})
        assert trace.records[1].counters == {"seen": 1}


class TestStageTrace:
    def test_aggregated_folds_repeats_in_first_seen_order(self):
        trace = StageTrace()
        trace.record("a", 1.0)
        trace.record("b", 2.0)
        trace.record("a", 3.0)
        assert trace.aggregated() == {"a": 4.0, "b": 2.0}
        assert trace.stage_names() == ["a", "b"]
        assert trace.total_seconds == 6.0

    def test_counter_total(self):
        trace = StageTrace()
        trace.record("a", 0.0, counters={"n": 2})
        trace.record("b", 0.0, counters={"n": 3, "m": 1})
        assert trace.counter_total("n") == 5
        assert trace.counter_total("missing") == 0

    def test_format_lists_stages_and_total(self):
        trace = StageTrace()
        trace.record("solve", 1.25, counters={"ilp_nodes": 42})
        child = StageTrace()
        child.record("inner", 0.5)
        trace.record("apply", 0.75, children=child)
        text = trace.format()
        assert "solve" in text and "ilp_nodes=42" in text
        assert "inner" in text
        assert "total" in text and "2.0000" in text
