#!/usr/bin/env python
"""Peak-RSS-per-register benchmark for the million-register scale path.

Measures the memory discipline of the storage + streaming-I/O pipeline:
generate the ``huge`` preset at N registers, stream-write Verilog/DEF (and
the library as Liberty), drop the design, stream-parse everything back, and
verify the round-trip.  The child process's ``ru_maxrss`` is the pipeline's
peak — the slotted store and the streaming parsers are only honest if that
peak stays a small constant per register.

The interpreter + numpy baseline (tens of MB) would swamp the per-register
figure at small N, so the headline number is **marginal**: the pipeline
runs in two fresh subprocesses (baseline N/5 and full N) and the slope
``(rss_full - rss_base) / (n_full - n_base)`` is what the ``--budget``
gate enforces.

``--window-compose`` additionally stream-parses the written design in a
third subprocess, marks everything outside a die-corner window
``dont_touch``, and runs a real :func:`~repro.core.composer.compose_design`
over the window — the scale-smoke proof that a parsed million-register
store drives the actual flow, not just counts.  (STA over the whole design
is dict-based and deliberately not budget-gated.)

Results append to ``BENCH_history.jsonl`` as ``repro.bench.mem/1`` records
(see :mod:`repro.obs.manifest`), next to the flow trajectory lines.

Usage::

    PYTHONPATH=src python benchmarks/mem_budget.py --registers 100000 --enforce
    PYTHONPATH=src python benchmarks/mem_budget.py --registers 100000 \\
        --window-compose --no-history
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

_REPO_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_DIR, "src"))

from repro import obs  # noqa: E402
from repro.obs.manifest import BENCH_MEM_SCHEMA  # noqa: E402

#: Default ceiling on marginal peak RSS, bytes per register.  The slotted
#: store's columns plus name tables plus the parse-time dicts come to
#: ~1.4 KB/register on CPython 3.11/3.12; the gate leaves a little slack
#: without letting a per-cell dict (~0.3 KB/register) sneak back in.
DEFAULT_BUDGET = 1536


def _peak_rss_bytes() -> int:
    """This process's lifetime peak RSS in bytes (ru_maxrss is KB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if sys.platform != "darwin" else rss


def _emit(payload: dict) -> None:
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")


def child_measure(n_registers: int, outdir: str) -> None:
    """Generate → stream-write → drop → stream-parse → verify, one process."""
    from dataclasses import replace

    from repro.bench import generate_design
    from repro.bench.presets import PRESETS
    from repro.io.deffile import read_def, write_def
    from repro.io.liberty import read_liberty, write_liberty
    from repro.io.verilog import read_verilog, write_verilog
    from repro.library import default_library

    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    library = default_library()
    spec = replace(PRESETS["huge"], n_registers=n_registers)
    bundle = generate_design(spec, library)
    design = bundle.design
    phases["generate"] = round(time.perf_counter() - t0, 3)

    counts = (len(design.cells), len(design.nets), len(design.ports))
    hpwl = design.total_hpwl()

    t0 = time.perf_counter()
    write_verilog(design, os.path.join(outdir, "huge.v"))
    write_def(design, os.path.join(outdir, "huge.def"))
    write_liberty(library, os.path.join(outdir, "huge.lib"))
    phases["write"] = round(time.perf_counter() - t0, 3)

    del bundle, design
    gc.collect()

    t0 = time.perf_counter()
    library2 = read_liberty(os.path.join(outdir, "huge.lib"))
    parsed = read_verilog(os.path.join(outdir, "huge.v"), library2)
    read_def(os.path.join(outdir, "huge.def"), parsed)
    phases["parse"] = round(time.perf_counter() - t0, 3)

    counts2 = (len(parsed.cells), len(parsed.nets), len(parsed.ports))
    if counts2 != counts:
        raise SystemExit(f"round-trip count mismatch: wrote {counts}, read {counts2}")
    hpwl2 = parsed.total_hpwl()
    if abs(hpwl2 - hpwl) > 1e-6 * max(1.0, abs(hpwl)):
        raise SystemExit(f"round-trip HPWL mismatch: wrote {hpwl}, read {hpwl2}")

    _emit(
        {
            "n_registers": n_registers,
            "cells": counts[0],
            "nets": counts[1],
            "peak_rss_bytes": _peak_rss_bytes(),
            "phase_seconds": phases,
        }
    )


def child_compose(outdir: str, window_fraction: float = 0.1) -> None:
    """Stream-parse the written design and compose one die-corner window."""
    from repro.core.composer import compose_design
    from repro.io.deffile import read_def
    from repro.io.liberty import read_liberty
    from repro.io.verilog import read_verilog
    from repro.netlist.store import DONT_TOUCH
    from repro.sta.timer import Timer

    t0 = time.perf_counter()
    library = read_liberty(os.path.join(outdir, "huge.lib"))
    design = read_verilog(os.path.join(outdir, "huge.v"), library)
    read_def(os.path.join(outdir, "huge.def"), design)
    parse_seconds = time.perf_counter() - t0

    die = design.die
    win_xhi = die.xlo + window_fraction * die.width
    win_yhi = die.ylo + window_fraction * die.height
    store = design.store
    in_window = 0
    for cid in store.live_cell_ids():
        if not store.cell_is_register(cid):
            continue
        if store.cell_x[cid] <= win_xhi and store.cell_y[cid] <= win_yhi:
            in_window += 1
        else:
            store.cell_flags[cid] |= DONT_TOUCH
    if in_window == 0:
        raise SystemExit("window selected no registers; widen --window-fraction")

    t0 = time.perf_counter()
    timer = Timer(design, 1.0)
    result = compose_design(design, timer, None)
    _emit(
        {
            "parse_seconds": round(parse_seconds, 3),
            "compose_seconds": round(time.perf_counter() - t0, 3),
            "window_registers": in_window,
            "registers_before": result.registers_before,
            "registers_after": result.registers_after,
            "peak_rss_bytes": _peak_rss_bytes(),
        }
    )


def _run_child(argv: list[str]) -> dict:
    """Run one child phase of this script; returns its JSON payload."""
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), *argv],
        capture_output=True,
        text=True,
        cwd=_REPO_DIR,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"child {argv[1]!r} failed (exit {proc.returncode})")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_DIR,
            timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def git_dirty() -> bool:
    """Whether the working tree differs from HEAD (``False`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=_REPO_DIR,
            timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return False
    return out.returncode == 0 and bool(out.stdout.strip())


def run_benchmark(
    n_registers: int,
    baseline_registers: int,
    budget: int,
    window_compose: bool,
) -> dict:
    """The full parent-side benchmark; returns the history record."""
    with tempfile.TemporaryDirectory(prefix="mem_budget_base_") as base_dir:
        base = _run_child(["--child", "measure", str(baseline_registers), base_dir])
    with tempfile.TemporaryDirectory(prefix="mem_budget_") as full_dir:
        full = _run_child(["--child", "measure", str(n_registers), full_dir])
        compose = (
            _run_child(["--child", "compose", full_dir]) if window_compose else None
        )

    marginal = (full["peak_rss_bytes"] - base["peak_rss_bytes"]) / (
        n_registers - baseline_registers
    )
    record = {
        "schema": BENCH_MEM_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "n_registers": n_registers,
        "baseline_registers": baseline_registers,
        "peak_rss_bytes": full["peak_rss_bytes"],
        "bytes_per_register": round(full["peak_rss_bytes"] / n_registers, 1),
        "marginal_bytes_per_register": round(marginal, 1),
        "budget_bytes_per_register": budget,
        "phase_seconds": full["phase_seconds"],
    }
    if compose is not None:
        record["window_compose"] = compose
    return record


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["--child"]:
        if argv[1] == "measure":
            child_measure(int(argv[2]), argv[3])
        elif argv[1] == "compose":
            child_compose(argv[2])
        else:
            raise SystemExit(f"unknown child phase {argv[1]!r}")
        return 0

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--registers", type=int, default=100_000)
    ap.add_argument(
        "--baseline-registers",
        type=int,
        default=None,
        help="size of the baseline run for the marginal slope (default N/5)",
    )
    ap.add_argument("--budget", type=int, default=DEFAULT_BUDGET, help="bytes/register")
    ap.add_argument(
        "--enforce",
        action="store_true",
        help="exit nonzero when the marginal bytes/register exceeds --budget",
    )
    ap.add_argument(
        "--window-compose",
        action="store_true",
        help="also stream-parse the written design and compose one window",
    )
    ap.add_argument("--history", default="BENCH_history.jsonl")
    ap.add_argument("--no-history", action="store_true")
    args = ap.parse_args(argv)

    baseline = args.baseline_registers or max(1000, args.registers // 5)
    if baseline >= args.registers:
        raise SystemExit("--baseline-registers must be smaller than --registers")

    record = run_benchmark(args.registers, baseline, args.budget, args.window_compose)
    problems = obs.validate_bench_mem(record)
    if problems:  # pragma: no cover - the record satisfies its own schema
        raise SystemExit("invalid mem record: " + "; ".join(problems))

    print(
        f"{record['n_registers']} registers: peak {record['peak_rss_bytes'] / 1e6:.0f} MB"
        f" ({record['bytes_per_register']:.0f} B/reg total,"
        f" {record['marginal_bytes_per_register']:.0f} B/reg marginal,"
        f" budget {record['budget_bytes_per_register']})"
    )
    for phase, seconds in record["phase_seconds"].items():
        print(f"  {phase}: {seconds:.1f}s")
    if args.window_compose:
        wc = record["window_compose"]
        print(
            f"  window compose: {wc['window_registers']} registers in window, "
            f"{wc['registers_before']} -> {wc['registers_after']} total, "
            f"parse {wc['parse_seconds']:.1f}s + compose {wc['compose_seconds']:.1f}s"
        )

    if not args.no_history:
        with open(os.path.join(_REPO_DIR, args.history), "a", encoding="utf-8") as fh:
            json.dump(record, fh, separators=(",", ":"), sort_keys=True)
            fh.write("\n")
        print(f"appended {args.history}")

    if args.enforce and record["marginal_bytes_per_register"] > args.budget:
        print(
            f"FAIL: marginal {record['marginal_bytes_per_register']:.0f} B/register "
            f"exceeds budget {args.budget}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
