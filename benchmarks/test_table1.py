"""Table 1 — industrial design characteristics before and after composition.

Regenerates the paper's main result: per design D1-D5, the Base and Ours
rows (area, cells, registers, composable registers, clock buffers, clock
capacitance, TNS, failing endpoints, overflow edges, split wirelength,
runtime) and the relative savings.  Absolute values differ from the paper
(synthetic designs, simulator substrates); the assertions pin the *shape*:
large register reductions, reduced clock cost, and no QoR degradation.
"""

import pytest

from benchmarks.conftest import DESIGNS, run_design
from repro.reporting import format_table1


@pytest.mark.parametrize("design", DESIGNS)
def test_table1_row(benchmark, lib, design):
    report = benchmark.pedantic(
        lambda: run_design(lib, design), rounds=1, iterations=1, warmup_rounds=0
    )

    # Register count drops substantially (paper: 15-39% of total registers).
    assert report.savings["total_regs"] > 0.10
    # The reduction among *composable* registers is large (paper avg: 48%).
    comp = report.composition
    assert comp.register_reduction / max(comp.composable_registers, 1) > 0.25
    # Clock tree gets lighter (paper: 3-6% capacitance, 0-5% buffers).
    assert report.savings["clk_cap"] > 0.0
    assert report.final.clk_bufs <= report.base.clk_bufs
    # No QoR degradation: timing, congestion, wirelength, area.
    assert abs(report.final.tns) <= abs(report.base.tns) * 1.10 + 0.1
    assert report.final.failing_endpoints <= report.base.failing_endpoints * 1.10 + 2
    assert report.final.overflow_edges <= report.base.overflow_edges * 1.15 + 3
    assert report.final.wirelength_total <= report.base.wirelength_total * 1.03
    assert report.final.area <= report.base.area * 1.005


def test_table1_render(benchmark, lib, capsys):
    """Print the full Table 1 after all rows have run."""
    reports = benchmark.pedantic(
        lambda: [run_design(lib, d) for d in DESIGNS],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    table = format_table1(reports)
    with capsys.disabled():
        print("\n\n=== Table 1: design characteristics before/after MBR composition ===")
        print(table)

    avg_total = sum(r.savings["total_regs"] for r in reports) / len(reports)
    avg_comp = sum(
        r.composition.register_reduction / max(r.composition.composable_registers, 1)
        for r in reports
    ) / len(reports)
    avg_cap = sum(r.savings["clk_cap"] for r in reports) / len(reports)
    with capsys.disabled():
        print(
            f"averages: total regs -{avg_total:.0%}, composable regs -{avg_comp:.0%}, "
            f"clock cap -{avg_cap:.0%}  (paper: -29%, -48%, -6%)"
        )
    # Paper-level averages at reproduction scale.
    assert avg_total > 0.15
    assert avg_comp > 0.30
    assert avg_cap > 0.02
    # Wirelength is flat-to-better on average (paper: slightly reduced);
    # individual synthetic designs may drift a couple of percent either way.
    avg_wl = sum(
        r.final.wirelength_total / r.base.wirelength_total - 1 for r in reports
    ) / len(reports)
    assert avg_wl < 0.01
