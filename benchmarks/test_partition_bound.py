"""Ablation — the 30-node subgraph bound of Section 3.

The paper: "Each subgraph cannot exceed 30 nodes.  Trying smaller bounds
resulted in significant QoR loss ... especially when the bound became
smaller than 20 nodes.  Increasing the bound further did not help either."
This bench sweeps the bound on D2 and checks that QoR (composed register
reduction) saturates around the paper's choice.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.core.composer import ComposerConfig, compose_design

BOUNDS = [6, 10, 20, 30, 50]


@pytest.fixture(scope="module")
def sweep(lib):
    results = {}
    for bound in BOUNDS:
        bundle = generate_design(preset("D2", scale=BENCH_SCALE), lib)
        res = compose_design(
            bundle.design,
            bundle.timer,
            bundle.scan_model,
            ComposerConfig(max_subgraph_nodes=bound),
        )
        results[bound] = res
    return results


@pytest.mark.parametrize("bound", BOUNDS)
def test_partition_bound_point(benchmark, lib, sweep, bound):
    res = benchmark.pedantic(lambda: sweep[bound], rounds=1, iterations=1, warmup_rounds=0)
    assert res.registers_after < res.registers_before


def test_partition_bound_shape(benchmark, sweep, capsys):
    reductions = benchmark.pedantic(
        lambda: {b: sweep[b].register_reduction for b in BOUNDS},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    runtimes = {b: sweep[b].runtime_seconds for b in BOUNDS}
    with capsys.disabled():
        print("\n\n=== Ablation: compatibility-subgraph node bound (Section 3) ===")
        print(f"{'bound':>6} {'regs removed':>13} {'ilp nodes':>10} {'runtime':>9}")
        for b in BOUNDS:
            print(
                f"{b:>6} {reductions[b]:>13} {sweep[b].ilp_nodes:>10} "
                f"{runtimes[b]:>8.2f}s"
            )
    # Tiny bounds lose QoR; the paper's 30 performs at least as well as 10.
    assert reductions[30] >= reductions[10]
    # Beyond 30 the gains are marginal (within a few registers).
    assert reductions[50] - reductions[30] <= max(3, 0.1 * reductions[30])
