"""Extension — decompose & recompose initial 8-bit MBRs (Section 5 outlook).

The paper skips registers that are already the widest MBR of their class
and notes, for the 8-bit-rich D4, that "to optimize such designs, we plan
in the future to consider the decomposition of the initial 8-bit MBRs and
their recomposition using the proposed methodology".  This bench implements
that plan (``FlowConfig(decompose_widths=(8,))``) and reports what happens
on the D4-like benchmark.

Finding at reproduction scale: the ILP re-forms most of the decomposed
8-bit MBRs and timing improves substantially (each re-formed group gets a
fresh drive mapping and useful-skew offset), but the register count does
not beat plain composition — the bits of a dense 8-bit bank cannot all
re-legalize into the area their shared cell used to occupy, so some end up
in smaller fragments.  The extension pays on timing, not on count.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow


@pytest.fixture(scope="module")
def pair(lib):
    out = {}
    for decompose in (False, True):
        bundle = generate_design(preset("D4", scale=BENCH_SCALE), lib)
        cfg = FlowConfig(decompose_widths=(8,) if decompose else ())
        out[decompose] = run_flow(bundle.design, bundle.timer, bundle.scan_model, cfg)
    return out


@pytest.mark.parametrize("decompose", [False, True])
def test_decompose_recompose_run(benchmark, lib, pair, decompose):
    rep = benchmark.pedantic(
        lambda: pair[decompose], rounds=1, iterations=1, warmup_rounds=0
    )
    assert rep.final.total_regs > 0


def test_decompose_recompose_findings(benchmark, pair, capsys):
    plain = benchmark.pedantic(lambda: pair[False], rounds=1, iterations=1, warmup_rounds=0)
    ext = pair[True]
    with capsys.disabled():
        print("\n\n=== Extension: decompose + recompose 8-bit MBRs (D4) ===")
        print(f"{'':>24} {'plain':>10} {'decompose':>10}")
        print(f"{'registers after':>24} {plain.final.total_regs:>10} {ext.final.total_regs:>10}")
        print(f"{'8-bit MBRs after':>24} {plain.final.width_histogram.get(8, 0):>10} "
              f"{ext.final.width_histogram.get(8, 0):>10}")
        print(f"{'TNS after (ns)':>24} {plain.final.tns:>10.1f} {ext.final.tns:>10.1f}")
        print(f"{'failing endpoints':>24} {plain.final.failing_endpoints:>10} "
              f"{ext.final.failing_endpoints:>10}")

    decomposed = ext.decomposition
    assert decomposed is not None and decomposed.cells_removed > 0
    # Most decomposed 8-bit MBRs re-form.
    reformed = ext.final.width_histogram.get(8, 0)
    assert reformed >= 0.6 * decomposed.cells_removed
    # The refresh substantially improves timing vs the plain flow.
    assert abs(ext.final.tns) < abs(plain.final.tns)
    assert ext.final.failing_endpoints < plain.final.failing_endpoints
