"""Ablation — the placement-aware weights of Section 3.2.

"By weighting MBR candidates, we limit the increase in routing congestion
and wire-length during MBR composition.  Without this, both routing
congestion and wire-length can significantly increase."  This bench runs
the composer with the paper's weights and with weight = 1/bits (no blocking
penalty) and compares overflow edges and wirelength.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.core.candidates import CandidateConfig
from repro.core.composer import ComposerConfig
from repro.flow import FlowConfig, run_flow


@pytest.fixture(scope="module")
def pair(lib):
    out = {}
    for use_weights in (True, False):
        bundle = generate_design(preset("D3", scale=BENCH_SCALE), lib)
        cfg = FlowConfig(
            composer=ComposerConfig(
                candidates=CandidateConfig(use_placement_weights=use_weights)
            )
        )
        out[use_weights] = run_flow(bundle.design, bundle.timer, bundle.scan_model, cfg)
    return out


@pytest.mark.parametrize("use_weights", [True, False])
def test_weight_ablation_run(benchmark, lib, pair, use_weights):
    rep = benchmark.pedantic(
        lambda: pair[use_weights], rounds=1, iterations=1, warmup_rounds=0
    )
    assert rep.final.total_regs < rep.base.total_regs


def test_weights_control_congestion_and_wirelength(benchmark, pair, capsys):
    weighted = benchmark.pedantic(lambda: pair[True], rounds=1, iterations=1, warmup_rounds=0)
    unweighted = pair[False]
    with capsys.disabled():
        print("\n\n=== Ablation: placement-aware weights (Section 3.2) ===")
        print(f"{'':>22} {'with weights':>14} {'without':>10}")
        print(f"{'total registers':>22} {weighted.final.total_regs:>14} {unweighted.final.total_regs:>10}")
        print(f"{'overflow edges':>22} {weighted.final.overflow_edges:>14} {unweighted.final.overflow_edges:>10}")
        print(f"{'wirelength (um)':>22} {weighted.final.wirelength_total:>14.0f} {unweighted.final.wirelength_total:>10.0f}")

    # Ignoring the layout merges more aggressively ...
    assert unweighted.final.total_regs <= weighted.final.total_regs
    # ... at the cost of congestion and/or wirelength.
    worse_congestion = unweighted.final.overflow_edges > weighted.final.overflow_edges
    worse_wirelength = (
        unweighted.final.wirelength_total > weighted.final.wirelength_total * 1.002
    )
    assert worse_congestion or worse_wirelength
