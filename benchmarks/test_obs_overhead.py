"""Locks the observability acceptance bound: disabled tracing costs the
flow < 2% of its runtime.

A/B wall-clock comparison of two full flows is too noisy to gate CI on,
so the bound is checked structurally: measure the per-call cost of a
disabled instrumentation site (a module-global load, a truth test, and a
shared no-op context manager), count how many spans a real traced D1
flow actually opens, and require ``per_site_cost x span_count`` to stay
under 2% of the untraced flow's wall time.  That is the exact overhead a
disabled run pays relative to uninstrumented code.

The profiler/heartbeat hook sites added by the performance-intelligence
layer are held to the same standard: with neither installed, a hook site
is a module-global load plus a ``None`` test, and the pipeline opens one
pair of heartbeat hooks per stage plus one profiler check per
``solve_subproblems`` fan-in — orders of magnitude fewer sites than
spans, so the combined disabled cost stays inside the same 2% bound.
"""

from __future__ import annotations

import time

from repro import obs
from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.library import default_library

from .conftest import BENCH_SCALE

_SITE_CALLS = 200_000


def _disabled_site_cost_s() -> float:
    """Seconds one disabled ``with obs.span(...)`` site costs (median of 5)."""
    assert obs.get_tracer() is None or not obs.get_tracer().enabled
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(_SITE_CALLS):
            with obs.span("bench.site", cat="bench"):
                pass
        samples.append((time.perf_counter() - t0) / _SITE_CALLS)
    samples.sort()
    return samples[2]


def _disabled_hook_cost_s() -> float:
    """Seconds one disabled profiler/heartbeat hook site costs (median of 5).

    A hook site is ``obs.get_profiler()``/``obs.get_heartbeat()``
    returning ``None`` plus the ``is not None`` test — the exact code the
    pipeline and ``solve_subproblems`` execute when the performance
    intelligence layer is not installed.
    """
    assert obs.get_profiler() is None and obs.get_heartbeat() is None
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(_SITE_CALLS):
            if obs.get_profiler() is not None:  # pragma: no cover
                raise AssertionError
            if obs.get_heartbeat() is not None:  # pragma: no cover
                raise AssertionError
        samples.append((time.perf_counter() - t0) / _SITE_CALLS)
    samples.sort()
    return samples[2]


class TestDisabledOverhead:
    def test_disabled_flow_overhead_under_two_percent(self):
        lib = default_library()

        # Untraced flow: the wall time a user pays with observability off.
        prev_tracer = obs.set_tracer(None)
        prev_registry = obs.set_registry(obs.MetricsRegistry())
        try:
            bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
            t0 = time.perf_counter()
            run_flow(bundle.design, bundle.timer, bundle.scan_model, FlowConfig())
            flow_seconds = time.perf_counter() - t0
            site_cost = _disabled_site_cost_s()

            hook_cost = _disabled_hook_cost_s()

            # Traced flow on a fresh bundle: how many spans the same run opens.
            tracer = obs.install_tracer(enabled=True)
            bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
            run_flow(bundle.design, bundle.timer, bundle.scan_model, FlowConfig())
            span_count = len(tracer.records())
        finally:
            obs.set_tracer(prev_tracer)
            obs.set_registry(prev_registry)

        assert span_count > 10  # the flow is actually instrumented
        # Heartbeat/profiler hook sites are bounded by span count: at most
        # two heartbeat hooks per stage span plus one profiler check per
        # solve fan-in, and every such site sits inside a span.
        hook_sites = 2 * span_count
        overhead = site_cost * span_count + hook_cost * hook_sites
        assert overhead < 0.02 * flow_seconds, (
            f"disabled-observability overhead {overhead * 1e3:.3f}ms "
            f"({span_count} spans x {site_cost * 1e9:.0f}ns + {hook_sites} "
            f"hooks x {hook_cost * 1e9:.0f}ns) exceeds 2% of "
            f"the {flow_seconds:.3f}s flow"
        )

    def test_disabled_span_is_shared_nullspan(self):
        prev = obs.set_tracer(None)
        try:
            assert obs.span("a") is obs.span("b")
        finally:
            obs.set_tracer(prev)

    def test_profiler_and_heartbeat_absent_by_default(self):
        # The hook-site accounting above is only valid if nothing installs
        # a profiler/heartbeat behind the flow's back.
        assert obs.get_profiler() is None
        assert obs.get_heartbeat() is None
