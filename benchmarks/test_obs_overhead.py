"""Locks the observability acceptance bound: disabled tracing costs the
flow < 2% of its runtime.

A/B wall-clock comparison of two full flows is too noisy to gate CI on,
so the bound is checked structurally: measure the per-call cost of a
disabled instrumentation site (a module-global load, a truth test, and a
shared no-op context manager), count how many spans a real traced D1
flow actually opens, and require ``per_site_cost x span_count`` to stay
under 2% of the untraced flow's wall time.  That is the exact overhead a
disabled run pays relative to uninstrumented code.
"""

from __future__ import annotations

import time

from repro import obs
from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.library import default_library

from .conftest import BENCH_SCALE

_SITE_CALLS = 200_000


def _disabled_site_cost_s() -> float:
    """Seconds one disabled ``with obs.span(...)`` site costs (median of 5)."""
    assert obs.get_tracer() is None or not obs.get_tracer().enabled
    samples = []
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(_SITE_CALLS):
            with obs.span("bench.site", cat="bench"):
                pass
        samples.append((time.perf_counter() - t0) / _SITE_CALLS)
    samples.sort()
    return samples[2]


class TestDisabledOverhead:
    def test_disabled_flow_overhead_under_two_percent(self):
        lib = default_library()

        # Untraced flow: the wall time a user pays with observability off.
        prev_tracer = obs.set_tracer(None)
        prev_registry = obs.set_registry(obs.MetricsRegistry())
        try:
            bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
            t0 = time.perf_counter()
            run_flow(bundle.design, bundle.timer, bundle.scan_model, FlowConfig())
            flow_seconds = time.perf_counter() - t0
            site_cost = _disabled_site_cost_s()

            # Traced flow on a fresh bundle: how many spans the same run opens.
            tracer = obs.install_tracer(enabled=True)
            bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
            run_flow(bundle.design, bundle.timer, bundle.scan_model, FlowConfig())
            span_count = len(tracer.records())
        finally:
            obs.set_tracer(prev_tracer)
            obs.set_registry(prev_registry)

        assert span_count > 10  # the flow is actually instrumented
        overhead = site_cost * span_count
        assert overhead < 0.02 * flow_seconds, (
            f"disabled-observability overhead {overhead * 1e3:.3f}ms "
            f"({span_count} spans x {site_cost * 1e9:.0f}ns) exceeds 2% of "
            f"the {flow_seconds:.3f}s flow"
        )

    def test_disabled_span_is_shared_nullspan(self):
        prev = obs.set_tracer(None)
        try:
            assert obs.span("a") is obs.span("b")
        finally:
            obs.set_tracer(prev)
