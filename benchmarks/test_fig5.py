"""Fig. 5 — MBR bit widths before & after MBR composition.

Regenerates the per-design register width histograms.  The paper's
observations pinned here: composition shifts register mass toward wider
MBRs (notably 8-bit), and D4 — already dominated by 8-bit MBRs — sees the
least relative clock-capacitance benefit.
"""

import pytest

from benchmarks.conftest import DESIGNS, run_design
from repro.reporting import format_fig5_histograms


def _mean_width(hist):
    total = sum(hist.values())
    return sum(w * c for w, c in hist.items()) / total if total else 0.0


@pytest.mark.parametrize("design", DESIGNS)
def test_fig5_histogram(benchmark, lib, design):
    report = benchmark.pedantic(
        lambda: run_design(lib, design), rounds=1, iterations=1, warmup_rounds=0
    )
    before = report.base.width_histogram
    after = report.final.width_histogram

    # Mass shifts toward wider registers.
    assert _mean_width(after) > _mean_width(before)
    # More 8-bit MBRs are used ("up to a point where they don't create
    # routing utilization problems").
    assert after.get(8, 0) >= before.get(8, 0)
    # Narrow registers thin out.
    assert after.get(1, 0) <= before.get(1, 0)


def test_fig5_render_and_d4_observation(benchmark, lib, capsys):
    reports = benchmark.pedantic(
        lambda: [run_design(lib, d) for d in DESIGNS],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    with capsys.disabled():
        print("\n\n=== Fig. 5: MBR bit widths before & after composition ===")
        print(format_fig5_histograms(reports))

    # D4's 8-bit dominance means composition helps its clock tree least.
    by_name = {r.design_name: r for r in reports}
    d4_cap_saving = by_name["D4"].savings["clk_cap"]
    other_savings = [r.savings["clk_cap"] for r in reports if r.design_name != "D4"]
    assert d4_cap_saving < max(other_savings)
