"""Ablation — incomplete MBRs (Section 3).

"Allowing incomplete MBR cells gives additional freedom to the MBR
composition to minimize the total number of registers ... without
negatively affecting the area or leakage power."  This bench compares
composition with and without incomplete MBRs under the paper's 5% area
overhead rule.
"""

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.core.candidates import CandidateConfig
from repro.core.composer import ComposerConfig, compose_design


@pytest.fixture(scope="module")
def pair(lib):
    out = {}
    for allow in (True, False):
        bundle = generate_design(preset("D5", scale=BENCH_SCALE), lib)
        base_area = bundle.design.total_cell_area()
        res = compose_design(
            bundle.design,
            bundle.timer,
            bundle.scan_model,
            ComposerConfig(candidates=CandidateConfig(allow_incomplete=allow)),
        )
        out[allow] = (res, base_area, bundle.design.total_cell_area())
    return out


@pytest.mark.parametrize("allow", [True, False])
def test_incomplete_ablation_run(benchmark, lib, pair, allow):
    res, _, _ = benchmark.pedantic(
        lambda: pair[allow], rounds=1, iterations=1, warmup_rounds=0
    )
    assert res.registers_after < res.registers_before


def test_incomplete_mbrs_add_freedom_without_area_cost(benchmark, pair, capsys):
    with_res, base_area_w, final_area_w = benchmark.pedantic(
        lambda: pair[True], rounds=1, iterations=1, warmup_rounds=0
    )
    without_res, base_area_wo, final_area_wo = pair[False]
    n_incomplete = sum(1 for g in with_res.composed if g.incomplete)
    with capsys.disabled():
        print("\n\n=== Ablation: incomplete MBRs (Section 3) ===")
        print(f"{'':>24} {'allowed':>9} {'disabled':>9}")
        print(f"{'registers after':>24} {with_res.registers_after:>9} {without_res.registers_after:>9}")
        print(f"{'incomplete MBRs used':>24} {n_incomplete:>9} {0:>9}")
        print(f"{'area delta':>24} {final_area_w - base_area_w:>+9.1f} {final_area_wo - base_area_wo:>+9.1f}")

    # Incomplete MBRs can only help the count.
    assert with_res.registers_after <= without_res.registers_after
    # And the 5% rule keeps area in check (it never grows overall).
    assert final_area_w <= base_area_w * 1.005
