"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures.  Flow
results are cached per (design, algorithm, scale) so the Table 1, Fig. 5,
and Fig. 6 benches share runs instead of repeating them.

Set ``REPRO_BENCH_SCALE`` (default 0.25) to grow the designs toward paper
scale; 1.0 runs the full presets (several minutes per design).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import generate_design, preset
from repro.flow import FlowConfig, FlowReport, run_flow
from repro.library import default_library

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
DESIGNS = ["D1", "D2", "D3", "D4", "D5"]

_cache: dict[tuple, FlowReport] = {}


@pytest.fixture(scope="session")
def lib():
    return default_library()


def run_design(
    lib, name: str, algorithm: str = "ilp", config: FlowConfig | None = None, tag: str = ""
) -> FlowReport:
    """Run (or fetch the cached) flow for one design preset."""
    key = (name, algorithm, BENCH_SCALE, tag)
    if key not in _cache:
        bundle = generate_design(preset(name, scale=BENCH_SCALE), lib)
        cfg = config or FlowConfig(algorithm=algorithm)
        _cache[key] = run_flow(bundle.design, bundle.timer, bundle.scan_model, cfg)
    return _cache[key]
