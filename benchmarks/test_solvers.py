"""Micro-benchmarks — the Section 3.1 ILP and Section 4.2 placement LP.

Performance characterization of the solver substrates at the problem sizes
the composition flow produces: exact set partitioning on 30-element
subproblems, the pure-Python simplex on placement LPs, and the exact PWL
placement fast path.
"""

import itertools

import pytest

from repro.core.mbr_placement import PinConnection, place_mbr_lp, place_mbr_pwl
from repro.geometry import Rect
from repro.ilp import SetPartitionProblem, solve_set_partition, solve_set_partition_scipy


def _paper_scale_instance() -> SetPartitionProblem:
    """A 30-register subproblem shaped like a dense bank: singletons,
    overlapping pairs, quads, and one oct per aligned run."""
    n = 30
    subsets = [frozenset([e]) for e in range(n)]
    weights = [1.0] * n
    for a in range(n - 1):
        subsets.append(frozenset([a, a + 1]))
        weights.append(0.5)
    for a, b in itertools.combinations(range(0, n, 3), 2):
        if b - a <= 9:
            subsets.append(frozenset([a, b]))
            weights.append(2.0)
    for start in range(0, n - 4, 2):
        subsets.append(frozenset(range(start, start + 4)))
        weights.append(0.25)
    for start in range(0, n - 8, 6):
        subsets.append(frozenset(range(start, start + 8)))
        weights.append(0.125)
    return SetPartitionProblem(n, tuple(subsets), tuple(weights))


def test_setpart_exact_30_nodes(benchmark):
    problem = _paper_scale_instance()
    sol = benchmark(solve_set_partition, problem)
    assert sol.feasible
    ref = solve_set_partition_scipy(problem)
    assert sol.objective == pytest.approx(ref.objective, abs=1e-9)


def test_setpart_scipy_30_nodes(benchmark):
    problem = _paper_scale_instance()
    sol = benchmark(solve_set_partition_scipy, problem)
    assert sol.feasible


def _placement_instance(k: int = 16):
    conns = []
    for i in range(k):
        x = 5.0 * (i % 7)
        y = 3.0 * (i % 5)
        conns.append(PinConnection(0.1 * i, 0.5, Rect(x, y, x + 8, y + 6)))
    return Rect(0, 0, 60, 40), conns


def test_placement_lp_simplex(benchmark):
    region, conns = _placement_instance()
    p = benchmark(place_mbr_lp, region, conns)
    assert region.contains_point(p)


def test_placement_pwl_fast_path(benchmark):
    region, conns = _placement_instance()
    p = benchmark(place_mbr_pwl, region, conns)
    assert region.contains_point(p)


def test_placement_lp_equals_pwl(benchmark):
    from repro.core.mbr_placement import wirelength_at

    region, conns = _placement_instance()
    lp = benchmark.pedantic(lambda: place_mbr_lp(region, conns), rounds=1, iterations=1, warmup_rounds=0)
    pwl = place_mbr_pwl(region, conns)
    assert wirelength_at(lp, conns) == pytest.approx(wirelength_at(pwl, conns), abs=1e-6)
