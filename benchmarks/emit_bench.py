#!/usr/bin/env python
"""Emit ``BENCH_flow.json``: the flow's performance trajectory file.

Runs the full composition flow on a set of synthetic presets (default:
D1 and D2) under a fresh metrics registry + tracer per design, and
writes one stable-schema JSON (``repro.bench.flow/2``, see
:mod:`repro.obs.manifest`) that CI validates and archives per commit —
so runtime, solver-effort, and QoR regressions show up as diffs of a
single artifact.  Each design entry also carries an ``eco`` block: a
repeated :class:`~repro.flow.EcoSession` recompose whose ILP solves are
warm-started from the first pass's incumbents.

Every emit is stamped with the producing commit (``git_sha``) and
appended as a one-line summary to ``BENCH_history.jsonl``, giving a
grep-able per-commit trajectory next to the full per-commit snapshot.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --designs D1 --scale 0.25
    PYTHONPATH=src python benchmarks/emit_bench.py --validate BENCH_flow.json
    PYTHONPATH=src python benchmarks/emit_bench.py --validate BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import time

from repro import obs
from repro.bench import generate_design, preset
from repro.flow import EcoSession, FlowConfig, run_flow
from repro.geometry import Point
from repro.library import default_library

_REPO_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_sha() -> str:
    """The producing commit, short form; ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_REPO_DIR,
            timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def git_dirty() -> bool:
    """Whether the working tree differs from HEAD (``False`` outside git).

    Stamped into every emitted payload: a trajectory point produced from
    uncommitted code cannot be reproduced from its ``git_sha``, and the
    regression sentinel's baselines deserve to know.
    """
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=_REPO_DIR,
            timeout=10,
        )
    except OSError:  # pragma: no cover - no git binary
        return False
    return out.returncode == 0 and bool(out.stdout.strip())


def _eco_warmstart_demo(name: str, scale: float, library) -> dict:
    """Repeated ``EcoSession.recompose`` over one session cache.

    Primes a session (full compose), nudges a few registers, and
    recomposes incrementally: the dirty components re-solve their ILPs
    against warm-start bounds re-weighed from the first pass's
    incumbents.  Returns the demo's headline numbers; the warm-start
    counters also land in the design's metrics snapshot.
    """
    bundle = generate_design(preset(name, scale=scale), library)
    session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
    t0 = time.perf_counter()
    session.recompose()
    prime_seconds = time.perf_counter() - t0

    counters = obs.get_registry().snapshot()["counters"]
    before = counters.get("ilp.setpart.warmstart_hits", 0)

    design = session.design
    rng = random.Random(5)
    registers = [c for c in design.cells.values() if c.is_register]
    for cell in rng.sample(registers, min(4, len(registers))):
        dx, dy = rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)
        x = min(
            max(design.die.xlo, cell.origin.x + dx),
            design.die.xhi - cell.libcell.width,
        )
        y = min(
            max(design.die.ylo, cell.origin.y + dy),
            design.die.yhi - cell.libcell.height,
        )
        with session.edit():
            design.move_cell(cell, Point(x, y))

    t0 = time.perf_counter()
    stats = session.recompose()
    recompose_seconds = time.perf_counter() - t0
    counters = obs.get_registry().snapshot()["counters"]
    return {
        "prime_seconds": round(prime_seconds, 6),
        "recompose_seconds": round(recompose_seconds, 6),
        "incremental": bool(stats.incremental),
        "warmstart_hits": counters.get("ilp.setpart.warmstart_hits", 0) - before,
    }


def run_design(name: str, scale: float, workers: int = 1) -> dict:
    """One flow run under a clean observability slate; returns the bench
    entry (all :data:`repro.obs.BENCH_DESIGN_KEYS`)."""
    obs.set_registry(obs.MetricsRegistry())
    obs.install_tracer(enabled=True)
    library = default_library()
    bundle = generate_design(preset(name, scale=scale), library)
    config = FlowConfig()
    config.composer.workers = workers
    report = run_flow(bundle.design, bundle.timer, bundle.scan_model, config)
    stage_seconds = {r.name: round(r.seconds, 6) for r in report.trace.records}
    eco = _eco_warmstart_demo(name, scale, library)
    return {
        "runtime_seconds": round(report.runtime_seconds, 6),
        "stage_seconds": stage_seconds,
        "registers_before": report.composition.registers_before,
        "registers_after": report.composition.registers_after,
        "register_reduction": report.composition.register_reduction,
        "wns": report.final.wns,
        "tns": report.final.tns,
        "eco": eco,
        "metrics": obs.get_registry().snapshot(),
    }


def history_record(data: dict) -> dict:
    """The one-line ``BENCH_history.jsonl`` summary of a bench payload."""
    return {
        "schema": obs.BENCH_HISTORY_SCHEMA,
        "generated_unix": data["generated_unix"],
        "git_sha": data["git_sha"],
        "git_dirty": data.get("git_dirty", False),
        "scale": data["scale"],
        "designs": {
            name: {
                "runtime_seconds": entry["runtime_seconds"],
                "compose_seconds": entry["stage_seconds"].get("compose", 0.0),
                "registers_after": entry["registers_after"],
                "tns": entry["tns"],
                "warmstart_hits": entry["eco"]["warmstart_hits"],
            }
            for name, entry in data["designs"].items()
        },
    }


def append_history(data: dict, path: str, force: bool = False) -> dict:
    """Append one summary line; refuses a stale-SHA line unless ``force``.

    The committed ``BENCH_flow.json`` once carried the seed SHA despite
    being emitted several PRs later — a line like that poisons the
    sentinel's rolling baselines with numbers no commit can reproduce.
    The append therefore requires the payload's ``git_sha`` to match the
    checkout's current HEAD (skipped outside a git checkout).
    """
    record = history_record(data)
    problems = obs.validate_bench_history(record)
    if problems:  # pragma: no cover - emit satisfies its own schema
        raise SystemExit("invalid history record: " + "; ".join(problems))
    head = git_sha()
    if not force and head != "unknown" and record["git_sha"] != head:
        raise SystemExit(
            f"refusing to append stale history line: payload git_sha "
            f"{record['git_sha']!r} != current HEAD {head!r} "
            f"(re-emit at HEAD, or pass --force to append anyway)"
        )
    with open(path, "a", encoding="utf-8") as fh:
        json.dump(record, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")
    return record


def emit(designs: list[str], scale: float, out: str, workers: int = 1) -> dict:
    data = {
        "schema": obs.BENCH_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "scale": scale,
        "designs": {d: run_design(d, scale, workers) for d in designs},
    }
    problems = obs.validate_bench(data)
    if problems:  # pragma: no cover - emit always satisfies its own schema
        raise SystemExit("invalid bench payload: " + "; ".join(problems))
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def validate_path(path: str) -> list[str]:
    """Validate a bench snapshot (``.json``) or history log (``.jsonl``)."""
    problems: list[str] = []
    if path.endswith(".jsonl"):
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            return [f"{path}: empty history"]
        for i, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {i}: not JSON ({exc})")
                continue
            # BENCH_history.jsonl interleaves flow summaries with the
            # memory-trajectory lines mem_budget.py appends and the
            # service-layer lines load_gen.py appends; dispatch on the
            # record's schema tag.
            if record.get("schema") == obs.BENCH_MEM_SCHEMA:
                validate = obs.validate_bench_mem
            elif record.get("schema") == obs.BENCH_SERVE_SCHEMA:
                validate = obs.validate_bench_serve
            else:
                validate = obs.validate_bench_history
            problems.extend(f"line {i}: {p}" for p in validate(record))
        return problems
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return obs.validate_bench(data)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--designs",
        nargs="*",
        default=["D1", "D2"],
        choices=["D1", "D2", "D3", "D4", "D5"],
    )
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--out", default="BENCH_flow.json")
    ap.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="history log to append one summary line to",
    )
    ap.add_argument(
        "--no-history",
        action="store_true",
        help="skip the BENCH_history.jsonl append",
    )
    ap.add_argument(
        "--force",
        action="store_true",
        help="append the history line even when its git_sha does not "
        "match the checkout's current HEAD",
    )
    ap.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing bench snapshot (.json) or history log "
        "(.jsonl) against its schema and exit",
    )
    args = ap.parse_args(argv)

    if args.validate:
        problems = validate_path(args.validate)
        if problems:
            print(f"{args.validate}: INVALID — " + "; ".join(problems))
            return 1
        print(f"{args.validate}: valid")
        return 0

    data = emit(args.designs, args.scale, args.out, args.workers)
    for name, entry in data["designs"].items():
        print(
            f"{name}: {entry['runtime_seconds']:.2f}s, "
            f"{entry['registers_before']} -> {entry['registers_after']} regs, "
            f"TNS {entry['tns']:.2f}, "
            f"eco warm-start hits {entry['eco']['warmstart_hits']}"
        )
    print(f"wrote {args.out} (git {data['git_sha']})")
    if not args.no_history:
        append_history(data, args.history, force=args.force)
        print(f"appended {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
