#!/usr/bin/env python
"""Emit ``BENCH_flow.json``: the flow's performance trajectory file.

Runs the full composition flow on a set of synthetic presets (default:
D1 and D2) under a fresh metrics registry + tracer per design, and
writes one stable-schema JSON (``repro.bench.flow/1``, see
:mod:`repro.obs.manifest`) that CI validates and archives per commit —
so runtime, solver-effort, and QoR regressions show up as diffs of a
single artifact.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --designs D1 --scale 0.25
    PYTHONPATH=src python benchmarks/emit_bench.py --validate BENCH_flow.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.bench import generate_design, preset
from repro.flow import FlowConfig, run_flow
from repro.library import default_library


def run_design(name: str, scale: float, workers: int = 1) -> dict:
    """One flow run under a clean observability slate; returns the bench
    entry (all :data:`repro.obs.BENCH_DESIGN_KEYS`)."""
    obs.set_registry(obs.MetricsRegistry())
    obs.install_tracer(enabled=True)
    library = default_library()
    bundle = generate_design(preset(name, scale=scale), library)
    config = FlowConfig()
    config.composer.workers = workers
    report = run_flow(bundle.design, bundle.timer, bundle.scan_model, config)
    stage_seconds = {r.name: round(r.seconds, 6) for r in report.trace.records}
    return {
        "runtime_seconds": round(report.runtime_seconds, 6),
        "stage_seconds": stage_seconds,
        "registers_before": report.composition.registers_before,
        "registers_after": report.composition.registers_after,
        "register_reduction": report.composition.register_reduction,
        "wns": report.final.wns,
        "tns": report.final.tns,
        "metrics": obs.get_registry().snapshot(),
    }


def emit(designs: list[str], scale: float, out: str, workers: int = 1) -> dict:
    data = {
        "schema": obs.BENCH_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "scale": scale,
        "designs": {d: run_design(d, scale, workers) for d in designs},
    }
    problems = obs.validate_bench(data)
    if problems:  # pragma: no cover - emit always satisfies its own schema
        raise SystemExit("invalid bench payload: " + "; ".join(problems))
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--designs",
        nargs="*",
        default=["D1", "D2"],
        choices=["D1", "D2", "D3", "D4", "D5"],
    )
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--out", default="BENCH_flow.json")
    ap.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing bench file against the schema and exit",
    )
    args = ap.parse_args(argv)

    if args.validate:
        with open(args.validate, encoding="utf-8") as fh:
            data = json.load(fh)
        problems = obs.validate_bench(data)
        if problems:
            print(f"{args.validate}: INVALID — " + "; ".join(problems))
            return 1
        print(f"{args.validate}: valid ({', '.join(sorted(data['designs']))})")
        return 0

    data = emit(args.designs, args.scale, args.out, args.workers)
    for name, entry in data["designs"].items():
        print(
            f"{name}: {entry['runtime_seconds']:.2f}s, "
            f"{entry['registers_before']} -> {entry['registers_after']} regs, "
            f"TNS {entry['tns']:.2f}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
