#!/usr/bin/env python
"""Deterministic load generator for the compose service (``repro.serve``).

Builds N replica designs of one preset behind a :class:`ComposeServer`,
then drives a fully deterministic job list — one priming ``compose`` per
design followed by a seeded move storm of ``eco`` jobs per design —
through concurrent in-process client lanes.  The job list's per-design
order is preserved regardless of lane count (see
:func:`repro.serve.client.drive`), so the benchmark runs the *same*
workload twice:

1. serially (one client) — the reference world states;
2. concurrently (``--clients`` lanes) — the measured run.

Per-design ``placement_signature``/``timing_signature`` must be
bit-identical between the two runs (the paper's determinism contract,
extended to the service layer); the measured run's throughput, p50/p99
latency, and cross-request component cache hit-ratio are appended to
``BENCH_history.jsonl`` under the ``repro.bench.serve/1`` schema and
judged by the regression sentinel (``--check``).

Usage::

    PYTHONPATH=src python benchmarks/load_gen.py --preset D1 --replicas 2 \\
        --clients 4 --jobs 6 --scale 0.25 --seed 7
    PYTHONPATH=src python benchmarks/load_gen.py --check --no-history \\
        --manifest-out serve_manifest.json   # the CI serve-smoke shape
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from emit_bench import git_dirty, git_sha  # noqa: E402

from repro import obs  # noqa: E402
from repro.check.oracles import placement_signature, timing_signature  # noqa: E402
from repro.serve import (  # noqa: E402
    ComposeServer,
    DesignRegistry,
    JobRequest,
    SharedComponentCache,
    drive,
)

_REPO_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def build_jobs(names: list[str], jobs_per_design: int, seed: int) -> list[JobRequest]:
    """The deterministic global job list: primes, then interleaved storms.

    Storm seeds repeat *across* designs (same seed sequence for every
    replica) — replicas are identical worlds, so repeated storms make
    cross-design shared-cache reuse observable, which is exactly the
    "repeated-storm workload" the acceptance criterion measures.
    """
    out = [
        JobRequest(kind="compose", design=name, id=f"prime-{name}")
        for name in names
    ]
    for k in range(jobs_per_design):
        for name in names:
            out.append(
                JobRequest(
                    kind="eco",
                    design=name,
                    params={"seed": seed + k, "moves": 2, "radius": 3.0},
                    id=f"eco-{name}-{k}",
                )
            )
    return out


def build_server(args) -> tuple[ComposeServer, list[str]]:
    shared = SharedComponentCache(spill_dir=args.spill_dir)
    registry = DesignRegistry(shared_cache=shared)
    registry.config.workers = args.workers
    names = []
    for i in range(args.replicas):
        name = f"{args.preset}-{i}"
        registry.add_preset(name, args.preset, scale=args.scale)
        names.append(name)
    queue_depth = max(args.queue_depth, args.clients)
    return ComposeServer(registry, queue_depth=queue_depth), names


def signatures(server: ComposeServer) -> dict[str, tuple]:
    """Exact per-design world state, for the serial-vs-concurrent check."""
    out = {}
    for name in server.registry.names():
        session = server.registry.session(name)
        out[name] = (
            sorted(placement_signature(session.design).items()),
            sorted(timing_signature(session.timer).items()),
        )
    return out


def run_once(args, clients: int) -> dict:
    """One fresh-world pass over the workload; returns states + metrics."""
    obs.set_registry(obs.MetricsRegistry())
    server, names = build_server(args)
    jobs = build_jobs(names, args.jobs, args.seed)

    async def _run():
        await server.start()
        t0 = time.perf_counter()
        responses, latencies = await drive(server, jobs, clients=clients)
        wall = time.perf_counter() - t0
        await server.aclose()
        return responses, latencies, wall

    responses, latencies, wall = asyncio.run(_run())
    failed = [r for r in responses.values() if not r.ok]
    if failed:
        first = failed[0]
        raise SystemExit(
            f"load_gen: {len(failed)} job(s) failed; first: "
            f"{first.id} [{first.error_code}] {first.error}"
        )
    counters = obs.get_registry().snapshot()["counters"]
    local_hits = counters.get("compose.cache.hits", 0)
    local_misses = counters.get("compose.cache.misses", 0)
    shared_hits = counters.get("serve.shared_cache.hits", 0)
    lookups = local_hits + local_misses
    # Cross-request hit ratio: fraction of component lookups answered by
    # *some* memo tier — the session's own (repeat requests to one design)
    # or the shared tier (requests to sibling designs / prior runs).
    hit_ratio = (local_hits + shared_hits) / lookups if lookups else 0.0
    lat_ms = sorted(x * 1000.0 for x in latencies)
    return {
        "signatures": signatures(server),
        "jobs": len(jobs),
        "wall_seconds": wall,
        "throughput_jobs_per_s": len(jobs) / wall if wall > 0 else 0.0,
        "p50_ms": statistics.median(lat_ms) if lat_ms else 0.0,
        "p99_ms": lat_ms[min(len(lat_ms) - 1, int(len(lat_ms) * 0.99))] if lat_ms else 0.0,
        "cache_hit_ratio": hit_ratio,
        "local_hits": local_hits,
        "local_misses": local_misses,
        "shared_hits": shared_hits,
        "shared_misses": counters.get("serve.shared_cache.misses", 0),
        "manifest": server.build_manifest(),
    }


def serve_record(args, serial: dict, concurrent: dict, deterministic: bool) -> dict:
    """The ``repro.bench.serve/1`` history line.

    Throughput and latency come from the measured concurrent run; the
    gated ``cache_hit_ratio`` comes from the *serial* run — sequential
    submission makes the reuse pattern deterministic (every sibling
    design's components are published before the next request looks),
    so the trajectory is stable enough for the sentinel's immediate
    ``higher_better`` gate.  The concurrent run's racy reuse rides
    along informationally as ``concurrent_hit_ratio``/``shared_hits``.
    """
    workload = f"{args.preset}x{args.replicas}c{args.clients}j{args.jobs}"
    return {
        "schema": obs.BENCH_SERVE_SCHEMA,
        "generated_unix": round(time.time(), 3),
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "workload": workload,
        "preset": args.preset,
        "scale": args.scale,
        "designs": args.replicas,
        "clients": args.clients,
        "jobs": concurrent["jobs"],
        "throughput_jobs_per_s": round(concurrent["throughput_jobs_per_s"], 3),
        "p50_ms": round(concurrent["p50_ms"], 3),
        "p99_ms": round(concurrent["p99_ms"], 3),
        "cache_hit_ratio": round(serial["cache_hit_ratio"], 4),
        "concurrent_hit_ratio": round(concurrent["cache_hit_ratio"], 4),
        "shared_hits": concurrent["shared_hits"],
        "deterministic": deterministic,
    }


def append_history(record: dict, path: str, force: bool = False) -> None:
    """Append the serve line; same stale-SHA discipline as emit_bench."""
    problems = obs.validate_bench_serve(record)
    if problems:  # pragma: no cover - the record satisfies its own schema
        raise SystemExit("invalid serve record: " + "; ".join(problems))
    head = git_sha()
    if not force and head != "unknown" and record["git_sha"] != head:
        raise SystemExit(
            f"refusing to append stale history line: payload git_sha "
            f"{record['git_sha']!r} != current HEAD {head!r} "
            f"(re-run at HEAD, or pass --force to append anyway)"
        )
    with open(path, "a", encoding="utf-8") as fh:
        json.dump(record, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")


def sentinel_check(record: dict, history_path: str, appended: bool) -> int:
    """Judge the serve trajectories (committed history + this record)."""
    from repro.obs import sentinel

    policy_path = sentinel.default_policy_path()
    policy = (
        sentinel.load_policy(policy_path)
        if os.path.exists(policy_path)
        else sentinel.Policy()
    )
    records: list[dict] = []
    if os.path.exists(history_path):
        records = sentinel.load_history(history_path)
    if not appended:
        records.append(record)
    report = sentinel.evaluate_history(records, policy)
    serve_rows = [v for v in report.verdicts if v.name.startswith("serve.")]
    for v in serve_rows:
        print(f"  {v.name}: {v.status} (latest {v.latest:g})")
    if not report.ok:
        print(report.format())
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--preset", default="D1", choices=["D1", "D2", "D3", "D4", "D5"]
    )
    ap.add_argument("--scale", type=float, default=0.25)
    ap.add_argument(
        "--replicas", type=int, default=2, help="replica designs to serve"
    )
    ap.add_argument(
        "--clients", type=int, default=4, help="concurrent client lanes"
    )
    ap.add_argument(
        "--jobs", type=int, default=6, help="eco jobs per design after the prime"
    )
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--queue-depth", dest="queue_depth", type=int, default=64)
    ap.add_argument("--workers", type=int, default=1)
    ap.add_argument("--spill-dir", dest="spill_dir")
    ap.add_argument(
        "--history",
        default=os.path.join(_REPO_DIR, "BENCH_history.jsonl"),
        help="history log to append the repro.bench.serve/1 line to",
    )
    ap.add_argument("--no-history", action="store_true")
    ap.add_argument("--force", action="store_true")
    ap.add_argument(
        "--check",
        action="store_true",
        help="gate: sentinel verdict on the serve trajectories plus the "
        "minimum cache hit-ratio; nonzero exit on failure",
    )
    ap.add_argument(
        "--min-hit-ratio",
        dest="min_hit_ratio",
        type=float,
        default=0.5,
        help="--check fails below this cross-request cache hit-ratio",
    )
    ap.add_argument(
        "--manifest-out", dest="manifest_out", help="write the run manifest here"
    )
    args = ap.parse_args(argv)

    print(
        f"workload: {args.preset} x{args.replicas} @ scale {args.scale}, "
        f"{args.jobs} eco jobs/design, seed {args.seed}"
    )
    serial = run_once(args, clients=1)
    print(
        f"serial:     {serial['jobs']} jobs in {serial['wall_seconds']:.2f}s "
        f"({serial['throughput_jobs_per_s']:.1f} jobs/s), hit ratio "
        f"{serial['cache_hit_ratio']:.1%} ({serial['local_hits']} local + "
        f"{serial['shared_hits']} shared of "
        f"{serial['local_hits'] + serial['local_misses']} lookups)"
    )
    concurrent = run_once(args, clients=args.clients)
    print(
        f"concurrent: {concurrent['jobs']} jobs in "
        f"{concurrent['wall_seconds']:.2f}s with {args.clients} clients "
        f"({concurrent['throughput_jobs_per_s']:.1f} jobs/s, "
        f"p50 {concurrent['p50_ms']:.1f}ms, p99 {concurrent['p99_ms']:.1f}ms)"
    )
    print(
        f"cache: serial hit ratio {serial['cache_hit_ratio']:.1%} "
        f"(deterministic, gated), concurrent "
        f"{concurrent['cache_hit_ratio']:.1%} "
        f"({concurrent['local_hits']} local + {concurrent['shared_hits']} shared "
        f"of {concurrent['local_hits'] + concurrent['local_misses']} lookups)"
    )

    deterministic = serial["signatures"] == concurrent["signatures"]
    if deterministic:
        print("determinism: serial vs concurrent bit-identical per design")
    else:
        diverged = [
            name
            for name in serial["signatures"]
            if serial["signatures"][name] != concurrent["signatures"].get(name)
        ]
        print(f"determinism: DIVERGED on {diverged}", file=sys.stderr)

    record = serve_record(args, serial, concurrent, deterministic)
    appended = False
    if not args.no_history:
        append_history(record, args.history, force=args.force)
        print(f"appended {args.history} (workload {record['workload']})")
        appended = True

    if args.manifest_out:
        obs.write_manifest(args.manifest_out, concurrent["manifest"])
        print(f"wrote run manifest: {args.manifest_out}")

    if not deterministic:
        return 2
    if args.check:
        if serial["cache_hit_ratio"] < args.min_hit_ratio:
            print(
                f"CHECK FAILED: cache hit ratio "
                f"{serial['cache_hit_ratio']:.1%} < {args.min_hit_ratio:.0%}",
                file=sys.stderr,
            )
            return 1
        rc = sentinel_check(record, args.history, appended)
        if rc:
            return rc
        print("check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
