"""Fig. 6 — ILP formulation vs maximal-clique/agglomerative heuristic.

Regenerates the normalized total-register comparison: the placement-aware
ILP achieves fewer (or equal) registers than the [8]/[12]-style pairwise
merging baseline on every design — the paper reports ~12% average savings;
this reproduction typically lands between 5% and 15%.
"""

import pytest

from benchmarks.conftest import DESIGNS, run_design
from repro.reporting import format_fig6_comparison


@pytest.mark.parametrize("design", DESIGNS)
def test_fig6_design(benchmark, lib, design):
    heur = benchmark.pedantic(
        lambda: run_design(lib, design, algorithm="heuristic"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    ilp = run_design(lib, design, algorithm="ilp")
    # The ILP never meaningfully loses on register count (2% slack: on the
    # scatter-heavy D5 the weight-blind pairwise merger finds a couple more
    # merges by accepting blocked groups the placement-aware weights refuse
    # — the congestion/count trade Section 3.2 makes deliberately; the
    # paper's Fig. 6 shows the ILP ahead on every industrial design).
    assert ilp.final.total_regs <= heur.final.total_regs * 1.02 + 1


def test_fig6_render_and_average(benchmark, lib, capsys):
    ilp_reports = benchmark.pedantic(
        lambda: [run_design(lib, d, algorithm="ilp") for d in DESIGNS],
        rounds=1, iterations=1, warmup_rounds=0,
    )
    heur_reports = [run_design(lib, d, algorithm="heuristic") for d in DESIGNS]
    with capsys.disabled():
        print("\n\n=== Fig. 6: normalized registers, ILP vs heuristic ===")
        print(format_fig6_comparison(ilp_reports, heur_reports))

    ratios = [
        i.final.total_regs / h.final.total_regs
        for i, h in zip(ilp_reports, heur_reports)
    ]
    average = sum(ratios) / len(ratios)
    with capsys.disabled():
        print(f"average ILP/heuristic ratio: {average:.3f}  (paper: ~0.88)")
    assert average < 0.98  # ILP clearly ahead on average
