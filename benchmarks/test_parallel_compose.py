"""Solve-stage fan-out benchmark: serial vs process-pool subproblem solving.

The composition engine's solve stage is the paper's scalability seam —
per-subgraph ILPs are independent, so they parallelize embarrassingly.
This benchmark captures the real D2 solve workload (the specs the engine
would hand its first pass) and times ``solve_subproblems`` at worker
counts 1 and 4.  On a multi-core host the 4-worker run should be ≥1.5×
faster; on a single core the pool only adds overhead, so the speedup
assertion is gated on available CPUs.  Either way the results themselves
must be bit-identical.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.core.candidates import enumerate_candidates
from repro.core.compatibility import analyze_registers
from repro.core.graph import build_compatibility_graph
from repro.core.partition import partition_graph
from repro.core.subproblem import SubproblemSpec, make_spec, solve_subproblems
from repro.core.weights import RegisterField

_specs_cache: list[SubproblemSpec] | None = None


def _d2_solve_specs(lib) -> list[SubproblemSpec]:
    """The specs the composer's first-pass solve stage would fan out on D2."""
    global _specs_cache
    if _specs_cache is None:
        bundle = generate_design(preset("D2", scale=BENCH_SCALE), lib)
        infos = analyze_registers(bundle.design, bundle.timer, bundle.scan_model, None)
        field = RegisterField(list(infos.values()))
        graph = build_compatibility_graph(infos, bundle.scan_model, None)
        parts = partition_graph(graph)
        _specs_cache = [
            make_spec(
                i,
                part.nodes,
                enumerate_candidates(
                    part, field, bundle.design.library, bundle.scan_model
                ),
            )
            for i, part in enumerate(parts)
        ]
    return _specs_cache


def test_solve_stage_serial(benchmark, lib):
    specs = _d2_solve_specs(lib)
    results = benchmark(solve_subproblems, specs, 1)
    assert len(results) == len(specs)


def test_solve_stage_4_workers(benchmark, lib):
    specs = _d2_solve_specs(lib)
    results = benchmark(solve_subproblems, specs, 4)
    assert results == solve_subproblems(specs, workers=1)


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs ≥4 CPUs for speedup")
def test_4_workers_speedup_at_least_1_5x(lib):
    import time

    specs = _d2_solve_specs(lib)
    t0 = time.perf_counter()
    serial = solve_subproblems(specs, workers=1)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = solve_subproblems(specs, workers=4)
    t_parallel = time.perf_counter() - t0
    assert serial == parallel
    assert t_serial / t_parallel >= 1.5, (t_serial, t_parallel)
