"""Incremental STA benchmark: dirty-cone retime vs full propagation.

The mutation path (compose -> skew -> sizing) queries timing after every
edit; with ``Timer.apply_change`` each query re-propagates only the edit's
fan-in/fan-out cones.  This benchmark merges one register pair on D1 and
checks the acceptance criterion: the retime touches well under 20% of the
graph's nodes while producing bit-identical summaries, and is measurably
faster than rebuilding from scratch.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.geometry import Point
from repro.netlist.edit import ComposeError, compose_mbr
from repro.sta import Timer


def _first_merge_record(design):
    """Compose the first mergeable same-class 1-bit pair (by name order)."""
    singles = sorted(
        (
            c
            for c in design.registers()
            if c.width_bits == 1 and not (c.dont_touch or c.fixed)
        ),
        key=lambda c: c.name,
    )
    for i, a in enumerate(singles):
        for b in singles[i + 1 :]:
            if b.register_cell.func_class is not a.register_cell.func_class:
                continue
            targets = design.library.register_cells(a.register_cell.func_class, 2)
            if not targets:
                continue
            mid = Point((a.origin.x + b.origin.x) / 2, (a.origin.y + b.origin.y) / 2)
            try:
                return compose_mbr(design, [a, b], targets[0], mid)
            except ComposeError:
                continue
    raise AssertionError("no mergeable register pair in D1")


def test_single_merge_retimes_under_20_percent_of_graph(lib):
    bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
    design, timer = bundle.design, bundle.timer
    baseline = timer.summary()  # warm: full propagation
    assert timer.stats.full_timings == 1

    record = _first_merge_record(design)
    timer.apply_change(record)

    t0 = time.perf_counter()
    incremental = timer.summary()
    t_retime = time.perf_counter() - t0

    stats = timer.stats
    assert stats.incremental_timings == 1
    assert stats.graph_nodes > 0
    touched_frac = stats.last_retimed_nodes / stats.graph_nodes
    assert touched_frac < 0.20, (
        f"retimed {stats.last_retimed_nodes}/{stats.graph_nodes} nodes "
        f"({touched_frac:.1%}) — dirty cone is not scoped"
    )

    # Bit-identical against a from-scratch timer over the mutated design.
    fresh = Timer(design, clock_period=bundle.clock_period, skew=dict(timer.skew))
    t0 = time.perf_counter()
    full = fresh.summary()
    t_full = time.perf_counter() - t0
    assert incremental == full
    assert {e.name: e.slack for e in timer.endpoint_slacks()} == {
        e.name: e.slack for e in fresh.endpoint_slacks()
    }
    assert incremental.total_endpoints == baseline.total_endpoints

    print(
        f"\nD1 scale={BENCH_SCALE}: retimed {stats.last_retimed_nodes}/"
        f"{stats.graph_nodes} nodes ({touched_frac:.1%}) in {t_retime * 1e3:.2f} ms "
        f"vs full rebuild {t_full * 1e3:.2f} ms"
    )


def test_retime_beats_full_rebuild(benchmark, lib):
    """pytest-benchmark view of one merge-then-query incremental cycle."""
    bundle = generate_design(preset("D1", scale=BENCH_SCALE), lib)
    design, timer = bundle.design, bundle.timer
    timer.summary()
    record = _first_merge_record(design)
    timer.apply_change(record)
    timer.summary()

    # Steady-state skew nudges on the merged MBR: each run dirties the new
    # cell's cones and re-queries — the flow's inner-loop workload.
    offsets = [0.01, 0.02]

    def cycle():
        offsets[0], offsets[1] = offsets[1], offsets[0]
        timer.set_skew(record.new_cell.name, offsets[0])
        return timer.summary()

    result = benchmark(cycle)
    assert result.total_endpoints > 0
    assert timer.stats.full_timings == 1  # never fell back to a full pass
