"""ECO-session benchmark: incremental recompose vs from-scratch compose.

A seeded storm of localized register moves on D1; after every move the
session recomposes incrementally while a clone of the same edited netlist
is composed from scratch.  Acceptance (PR 3): the incremental path must
re-enumerate fewer than 30% of the compatibility components and win at
least 3x in wall clock over the storm, while staying bit-identical on the
composed groups.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace

from benchmarks.conftest import BENCH_SCALE
from repro.bench import generate_design, preset
from repro.core.composer import compose_design
from repro.flow import EcoSession
from repro.geometry import Point
from repro.sta import Timer

# Below ~0.4 the designs are small enough that per-move fixed costs mask
# the cache win; the acceptance numbers are calibrated at 0.6.
ECO_SCALE = max(BENCH_SCALE, 0.6)
MOVES = 20
RADIUS = 3.0
SEED = 11


def _clone_world(session: EcoSession):
    design = session.design.clone()
    timer = Timer(
        design,
        session.timer.clock_period,
        skew=dict(session.timer.skew),
        input_delay=session.timer.input_delay,
        output_delay=session.timer.output_delay,
        technology=session.timer.tech,
        audit_mode=False,
    )
    scan = session.scan_model.clone() if session.scan_model is not None else None
    return design, timer, scan


def _groups(result):
    return [(g.new_cell, g.libcell, tuple(g.members), g.bits) for g in result.composed]


def test_eco_storm_reuses_components_and_beats_scratch(lib):
    bundle = generate_design(preset("D1", scale=ECO_SCALE), lib)
    session = EcoSession(bundle.design, bundle.timer, bundle.scan_model)
    session.recompose()  # priming compose: warm cache, steady-state netlist

    rng = random.Random(SEED)
    reused = recomputed = 0.0
    eco_seconds = scratch_seconds = 0.0
    for _ in range(MOVES):
        movable = [
            c
            for c in session.design.registers()
            if not (c.fixed or c.dont_touch)
        ]
        cell = rng.choice(movable)
        x = min(
            max(session.design.die.xlo, cell.origin.x + rng.uniform(-RADIUS, RADIUS)),
            session.design.die.xhi - cell.libcell.width,
        )
        y = min(
            max(session.design.die.ylo, cell.origin.y + rng.uniform(-RADIUS, RADIUS)),
            session.design.die.yhi - cell.libcell.height,
        )
        with session.edit():
            session.design.move_cell(cell, Point(x, y))

        # Shadow world: the same edited netlist, composed from scratch.
        ref_design, ref_timer, ref_scan = _clone_world(session)
        t0 = time.perf_counter()
        ref_result = compose_design(
            ref_design,
            ref_timer,
            ref_scan,
            config=replace(session.config, passes=session.max_passes),
        )
        scratch_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        stats = session.recompose()
        eco_seconds += time.perf_counter() - t0

        assert stats.incremental
        assert _groups(stats.result) == _groups(ref_result)
        r, c = stats.reuse.get("components", (0.0, 0.0))
        reused += r
        recomputed += c

    fraction = recomputed / (reused + recomputed)
    speedup = scratch_seconds / eco_seconds
    print(
        f"\neco storm (D1 scale {ECO_SCALE}, {MOVES} moves): "
        f"{fraction:.1%} components re-enumerated, "
        f"{speedup:.1f}x over from-scratch "
        f"({scratch_seconds:.2f}s scratch vs {eco_seconds:.2f}s eco)"
    )

    assert fraction < 0.30
    assert speedup >= 3.0
