#!/usr/bin/env python
"""Perf smoke gate: fail CI when a stage time regresses past a band.

Compares a freshly emitted bench snapshot (``emit_bench.py``) against the
committed baseline ``BENCH_flow.json`` and exits nonzero when the watched
stage (default: D1 ``compose``) is more than ``--max-regress`` slower than
the baseline.  Both files must validate against ``repro.bench.flow/2``
before any numbers are trusted.

The band comes from the repo's ``bench_policy.json`` (the ``perf_smoke``
block) — one file owns every performance threshold, shared with the
trajectory sentinel behind ``repro bench report`` — and is deliberately
wide (25%): CI runners and the machines that produced the committed
baseline differ, so this is a smoke test for gross regressions (an
accidentally quadratic loop, a dropped cache), not a microbenchmark.
``--max-regress`` overrides the policy for one-off runs.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --designs D1 --out BENCH_new.json
    PYTHONPATH=src python benchmarks/perf_smoke.py BENCH_flow.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import validate_bench
from repro.obs.sentinel import Policy, default_policy_path, load_policy

#: Last-resort band when no policy file exists (matches the shipped
#: bench_policy.json's perf_smoke block).
FALLBACK_MAX_REGRESS = 0.25


def policy_max_regress(policy_path: str | None = None) -> float:
    """The smoke band from ``bench_policy.json``'s ``perf_smoke`` block."""
    path = policy_path if policy_path is not None else default_policy_path()
    try:
        policy = load_policy(path)
    except FileNotFoundError:
        policy = Policy()
    value = policy.perf_smoke.get("max_regress", FALLBACK_MAX_REGRESS)
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
        raise SystemExit(
            f"{path}: perf_smoke.max_regress must be a non-negative number, "
            f"got {value!r}"
        )
    return float(value)


def load_bench(path: str) -> dict:
    """Load and schema-validate one bench snapshot."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_bench(data)
    if problems:
        raise SystemExit(f"{path}: INVALID — " + "; ".join(problems))
    return data


def stage_seconds(data: dict, design: str, stage: str) -> float:
    """The watched stage time, erroring loudly when it is absent."""
    try:
        entry = data["designs"][design]
    except KeyError:
        raise SystemExit(f"design {design!r} not in bench payload") from None
    seconds = entry["stage_seconds"].get(stage)
    if seconds is None:
        raise SystemExit(f"stage {stage!r} not in design {design!r}")
    return float(seconds)


def compare(
    baseline: dict,
    candidate: dict,
    design: str,
    stage: str,
    max_regress: float,
) -> tuple[int, str]:
    """Exit code + message for a baseline/candidate pair."""
    base = stage_seconds(baseline, design, stage)
    cand = stage_seconds(candidate, design, stage)
    if base <= 0.0:
        return 0, f"baseline {design}/{stage} is {base}s; nothing to gate"
    ratio = cand / base
    verdict = (
        f"{design}/{stage}: baseline {base:.3f}s (git "
        f"{baseline.get('git_sha', '?')}), candidate {cand:.3f}s (git "
        f"{candidate.get('git_sha', '?')}), ratio {ratio:.3f}"
    )
    if ratio > 1.0 + max_regress:
        return 1, f"REGRESSION — {verdict} exceeds +{max_regress:.0%} band"
    return 0, f"ok — {verdict} within +{max_regress:.0%} band"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_flow.json")
    ap.add_argument("candidate", help="freshly emitted bench snapshot")
    ap.add_argument("--design", default="D1")
    ap.add_argument("--stage", default="compose")
    ap.add_argument(
        "--policy",
        help="bench_policy.json to read the perf_smoke band from "
        "(default: the repo's checked-in policy)",
    )
    ap.add_argument(
        "--max-regress",
        type=float,
        default=None,
        help="override the policy's allowed fractional slowdown",
    )
    args = ap.parse_args(argv)
    max_regress = (
        args.max_regress
        if args.max_regress is not None
        else policy_max_regress(args.policy)
    )
    code, message = compare(
        load_bench(args.baseline),
        load_bench(args.candidate),
        args.design,
        args.stage,
        max_regress,
    )
    print(message)
    return code


if __name__ == "__main__":
    sys.exit(main())
