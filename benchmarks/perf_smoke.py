#!/usr/bin/env python
"""Perf smoke gate: fail CI when a stage time regresses past a band.

Compares a freshly emitted bench snapshot (``emit_bench.py``) against the
committed baseline ``BENCH_flow.json`` and exits nonzero when the watched
stage (default: D1 ``compose``) is more than ``--max-regress`` slower than
the baseline.  Both files must validate against ``repro.bench.flow/2``
before any numbers are trusted.

The band is deliberately wide (25% by default): CI runners and the
machines that produced the committed baseline differ, so this is a smoke
test for gross regressions (an accidentally quadratic loop, a dropped
cache), not a microbenchmark.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py --designs D1 --out BENCH_new.json
    PYTHONPATH=src python benchmarks/perf_smoke.py BENCH_flow.json BENCH_new.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import validate_bench


def load_bench(path: str) -> dict:
    """Load and schema-validate one bench snapshot."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_bench(data)
    if problems:
        raise SystemExit(f"{path}: INVALID — " + "; ".join(problems))
    return data


def stage_seconds(data: dict, design: str, stage: str) -> float:
    """The watched stage time, erroring loudly when it is absent."""
    try:
        entry = data["designs"][design]
    except KeyError:
        raise SystemExit(f"design {design!r} not in bench payload") from None
    seconds = entry["stage_seconds"].get(stage)
    if seconds is None:
        raise SystemExit(f"stage {stage!r} not in design {design!r}")
    return float(seconds)


def compare(
    baseline: dict,
    candidate: dict,
    design: str,
    stage: str,
    max_regress: float,
) -> tuple[int, str]:
    """Exit code + message for a baseline/candidate pair."""
    base = stage_seconds(baseline, design, stage)
    cand = stage_seconds(candidate, design, stage)
    if base <= 0.0:
        return 0, f"baseline {design}/{stage} is {base}s; nothing to gate"
    ratio = cand / base
    verdict = (
        f"{design}/{stage}: baseline {base:.3f}s (git "
        f"{baseline.get('git_sha', '?')}), candidate {cand:.3f}s (git "
        f"{candidate.get('git_sha', '?')}), ratio {ratio:.3f}"
    )
    if ratio > 1.0 + max_regress:
        return 1, f"REGRESSION — {verdict} exceeds +{max_regress:.0%} band"
    return 0, f"ok — {verdict} within +{max_regress:.0%} band"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed BENCH_flow.json")
    ap.add_argument("candidate", help="freshly emitted bench snapshot")
    ap.add_argument("--design", default="D1")
    ap.add_argument("--stage", default="compose")
    ap.add_argument(
        "--max-regress",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = ap.parse_args(argv)
    code, message = compare(
        load_bench(args.baseline),
        load_bench(args.candidate),
        args.design,
        args.stage,
        args.max_regress,
    )
    print(message)
    return code


if __name__ == "__main__":
    sys.exit(main())
