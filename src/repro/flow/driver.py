"""The Fig. 4 flow: placement -> MBR composition -> useful skew -> sizing.

``run_flow`` takes a placed design (typically a
:class:`repro.bench.generator.DesignBundle`) and executes the paper's
incremental restructuring:

1. measure the **Base** metrics row;
2. **MBR composition + optimization** with the placement-aware ILP
   (Section 3) or the heuristic baseline (Fig. 6);
3. **useful skew** on the newly composed MBRs — "benefiting from their
   timing compatible smaller counterparts" (Section 5);
4. **MBR sizing** — downsizing drives where the improved slack allows,
   reducing area and clock pin capacitance;
5. measure the **Ours** metrics row.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.composer import ComposerConfig, CompositionResult, compose_design
from repro.core.heuristic import compose_design_heuristic
from repro.core.sizing import SizingResult, size_registers
from repro.metrics.collect import DesignMetrics, collect_metrics, compare_metrics
from repro.netlist.design import Design
from repro.scan.model import ScanModel
from repro.skew.assign import SkewAssignment, assign_useful_skew
from repro.sta.timer import Timer


@dataclass
class FlowConfig:
    """Flow-level knobs (Fig. 4 stages)."""

    composer: ComposerConfig = field(default_factory=ComposerConfig)
    algorithm: str = "ilp"  # "ilp" (the paper) or "heuristic" (Fig. 6 baseline)
    decompose_widths: tuple[int, ...] = ()
    """Widths of pre-existing MBRs to decompose before composition — the
    paper's future-work extension for 8-bit-rich designs like D4 (pass
    ``(8,)`` to split the initial 8-bit MBRs and let the ILP regroup)."""
    run_skew: bool = True
    skew_window: float = 0.05
    run_sizing: bool = True
    sizing_margin: float = 0.0
    cts_max_fanout: int = 16
    congestion_bins: int = 24


@dataclass
class FlowReport:
    """Everything one flow run measured and did."""

    design_name: str
    base: DesignMetrics
    final: DesignMetrics
    composition: CompositionResult
    skew: SkewAssignment | None
    sizing: SizingResult | None
    runtime_seconds: float
    decomposition: object | None = None

    @property
    def savings(self) -> dict[str, float]:
        """The 'Save' row: relative reductions of every Table 1 column."""
        return compare_metrics(self.base, self.final)


def run_flow(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: FlowConfig | None = None,
) -> FlowReport:
    """Run the incremental MBR composition flow on a placed design."""
    config = config or FlowConfig()
    t0 = time.perf_counter()

    base = collect_metrics(
        design,
        timer,
        scan_model,
        config.composer.compatibility,
        cts_max_fanout=config.cts_max_fanout,
        congestion_bins=config.congestion_bins,
    )

    decomposition = None
    pending_bit_cells: list[str] = []
    if config.decompose_widths:
        from repro.core.decompose import decompose_registers

        decomposition = decompose_registers(
            design, scan_model, widths=config.decompose_widths
        )
        # Deliberately NOT legalized yet: the bit cells sit (overlapping) at
        # their source MBR's location, so recomposition sees perfectly clean
        # adjacent groups and can re-pack them; only the bits that survive
        # composition as singles get legalized below.
        pending_bit_cells = [
            n for names in decomposition.decomposed.values() for n in names
        ]
        if scan_model is not None:
            scan_model.restitch(design)
        timer.dirty()

    if config.algorithm == "ilp":
        composition = compose_design(design, timer, scan_model, config.composer)
    elif config.algorithm == "heuristic":
        composition = compose_design_heuristic(design, timer, scan_model, config.composer)
    else:
        raise ValueError(f"unknown algorithm {config.algorithm!r}")

    new_cells = [
        design.cells[g.new_cell] for g in composition.composed if g.new_cell in design.cells
    ]

    leftover_bits = [design.cells[n] for n in pending_bit_cells if n in design.cells]
    if leftover_bits:
        from repro.placement.legalize import PlacementRows, legalize

        rows = PlacementRows(
            design.die,
            design.library.technology.row_height,
            design.library.technology.site_width,
        )
        legalize(design, rows, movable=leftover_bits)
        timer.dirty()

    skew = None
    if config.run_skew and new_cells:
        skew = assign_useful_skew(timer, new_cells, window=config.skew_window)

    sizing = None
    if config.run_sizing and new_cells:
        sizing = size_registers(design, timer, new_cells, margin=config.sizing_margin)

    final = collect_metrics(
        design,
        timer,
        scan_model,
        config.composer.compatibility,
        cts_max_fanout=config.cts_max_fanout,
        congestion_bins=config.congestion_bins,
    )
    base.exec_time_s = 0.0
    final.exec_time_s = time.perf_counter() - t0

    return FlowReport(
        design_name=design.name,
        base=base,
        final=final,
        composition=composition,
        skew=skew,
        sizing=sizing,
        runtime_seconds=final.exec_time_s,
        decomposition=decomposition,
    )
