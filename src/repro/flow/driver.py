"""The Fig. 4 flow as a stage pipeline: placement -> MBR composition ->
useful skew -> sizing.

``run_flow`` takes a placed design (typically a
:class:`repro.bench.generator.DesignBundle`) and executes the paper's
incremental restructuring as a :class:`repro.engine.Pipeline` of
first-class stages:

1. **base-metrics** — measure the Table 1 "Base" row;
2. **decompose** — (optional) split pre-existing MBRs so composition can
   regroup their bits (the paper's future-work extension);
3. **compose** — MBR composition + optimization with the placement-aware
   ILP (Section 3) or the heuristic baseline (Fig. 6); its own stage
   trace nests under this record;
4. **legalize-bits** — legalize decomposed bits that survived as singles;
5. **skew** — useful skew on the newly composed MBRs — "benefiting from
   their timing compatible smaller counterparts" (Section 5);
6. **sizing** — MBR sizing: downsizing drives where the improved slack
   allows, reducing area and clock pin capacitance;
7. **final-metrics** — measure the Table 1 "Ours" row.

Every stage is timed into :class:`FlowReport.trace`; the top-level stage
times sum to :class:`FlowReport.runtime_seconds` (within pipeline
bookkeeping noise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.composer import ComposerConfig, CompositionResult
from repro.core.decompose import DecomposeResult, decompose_registers
from repro.core.heuristic import compose_design_heuristic
from repro.core.sizing import SizingResult, size_registers
from repro.engine import FlowContext, Pipeline, StageOutput, StageTrace, stage
from repro.flow.session import EcoSession
from repro.metrics.collect import DesignMetrics, collect_metrics, compare_metrics
from repro.netlist.design import Design
from repro.scan.model import ScanModel
from repro.skew.assign import SkewAssignment, assign_useful_skew
from repro.sta.timer import Timer


@dataclass
class FlowConfig:
    """Flow-level knobs (Fig. 4 stages)."""

    composer: ComposerConfig = field(default_factory=ComposerConfig)
    algorithm: str = "ilp"  # "ilp" (the paper) or "heuristic" (Fig. 6 baseline)
    decompose_widths: tuple[int, ...] = ()
    """Widths of pre-existing MBRs to decompose before composition — the
    paper's future-work extension for 8-bit-rich designs like D4 (pass
    ``(8,)`` to split the initial 8-bit MBRs and let the ILP regroup)."""
    run_skew: bool = True
    skew_window: float = 0.05
    run_sizing: bool = True
    sizing_margin: float = 0.0
    cts_max_fanout: int = 16
    congestion_bins: int = 24


@dataclass
class FlowReport:
    """Everything one flow run measured and did."""

    design_name: str
    base: DesignMetrics
    final: DesignMetrics
    composition: CompositionResult
    skew: SkewAssignment | None
    sizing: SizingResult | None
    runtime_seconds: float
    decomposition: DecomposeResult | None = None
    trace: StageTrace | None = None
    session: EcoSession | None = None
    """The live composition session of an ILP run — feed it further
    :class:`~repro.netlist.change.ChangeRecord` s and call
    :meth:`~repro.flow.session.EcoSession.recompose` to continue ECOing the
    flow's output without a from-scratch compose."""

    @property
    def savings(self) -> dict[str, float]:
        """The 'Save' row: relative reductions of every Table 1 column."""
        return compare_metrics(self.base, self.final)


@dataclass
class FlowState(FlowContext):
    """Shared context of one flow run."""

    config: FlowConfig = field(default_factory=FlowConfig)
    base: DesignMetrics | None = None
    final: DesignMetrics | None = None
    composition: CompositionResult | None = None
    skew: SkewAssignment | None = None
    sizing: SizingResult | None = None
    decomposition: DecomposeResult | None = None
    pending_bit_cells: list[str] = field(default_factory=list)
    new_cells: list = field(default_factory=list)
    session: EcoSession | None = None


def _measure(state: FlowState) -> DesignMetrics:
    return collect_metrics(
        state.design,
        state.timer,
        state.scan_model,
        state.config.composer.compatibility,
        cts_max_fanout=state.config.cts_max_fanout,
        congestion_bins=state.config.congestion_bins,
    )


@stage("base-metrics")
def _stage_base_metrics(state: FlowState):
    """Measure the Table 1 'Base' row."""
    state.base = _measure(state)
    return state.base.as_counters()


@stage("decompose")
def _stage_decompose(state: FlowState):
    """Optionally split pre-existing MBRs before composition."""
    if not state.config.decompose_widths:
        return {"decomposed": 0}
    with state.design.track() as tracker:
        state.decomposition = decompose_registers(
            state.design, state.scan_model, widths=state.config.decompose_widths
        )
        # Deliberately NOT legalized yet: the bit cells sit (overlapping) at
        # their source MBR's location, so recomposition sees perfectly clean
        # adjacent groups and can re-pack them; only the bits that survive
        # composition as singles get legalized below.
        state.pending_bit_cells = [
            n for names in state.decomposition.decomposed.values() for n in names
        ]
        if state.scan_model is not None:
            state.scan_model.restitch(state.design)
    state.timer.apply_change(tracker.record())
    return {"decomposed": len(state.decomposition.decomposed)}


@stage("compose")
def _stage_compose(state: FlowState):
    """Run the composition engine; nest its stage trace under this record."""
    config = state.config
    if config.algorithm == "ilp":
        # The flow runs on a session so the caller can keep ECOing the
        # result (FlowReport.session); passing the configured pass count
        # requests exact compose_design semantics for this priming run.
        state.session = EcoSession(
            state.design, state.timer, state.scan_model, config=config.composer
        )
        state.composition = state.session.recompose(
            passes=config.composer.passes
        ).result
    elif config.algorithm == "heuristic":
        state.composition = compose_design_heuristic(
            state.design, state.timer, state.scan_model, config.composer
        )
    else:
        raise ValueError(f"unknown algorithm {config.algorithm!r}")
    state.new_cells = [
        state.design.cells[g.new_cell]
        for g in state.composition.composed
        if g.new_cell in state.design.cells
    ]
    return StageOutput(
        counters={
            "composed": len(state.composition.composed),
            "register_reduction": state.composition.register_reduction,
        },
        children=state.composition.trace,
    )


@stage("legalize-bits")
def _stage_legalize_bits(state: FlowState):
    """Legalize decomposed bit cells that survived composition as singles."""
    leftover = [
        state.design.cells[n]
        for n in state.pending_bit_cells
        if n in state.design.cells
    ]
    if not leftover:
        return {"legalized": 0}
    from repro.placement.legalize import PlacementRows, legalize

    rows = PlacementRows(
        state.design.die,
        state.design.library.technology.row_height,
        state.design.library.technology.site_width,
    )
    with state.design.track() as tracker:
        legalize(state.design, rows, movable=leftover)
    record = tracker.record()
    if state.session is not None:
        state.session.absorb(record)
    else:
        state.timer.apply_change(record)
    return {"legalized": len(leftover)}


@stage("skew")
def _stage_skew(state: FlowState):
    """Useful skew on the newly composed MBRs."""
    if not (state.config.run_skew and state.new_cells):
        return {"skewed": 0}
    state.skew = assign_useful_skew(
        state.timer, state.new_cells, window=state.config.skew_window
    )
    return {"skewed": len(state.skew.offsets)}


@stage("sizing")
def _stage_sizing(state: FlowState):
    """Downsize drives where the improved slack allows."""
    if not (state.config.run_sizing and state.new_cells):
        return {"swapped": 0}
    if state.session is not None:
        # Sizing applies its own scoped changes to the timer; the session
        # only needs the record to mark the swapped registers dirty.
        with state.design.track() as tracker:
            state.sizing = size_registers(
                state.design,
                state.timer,
                state.new_cells,
                margin=state.config.sizing_margin,
            )
        state.session.observe(tracker.record())
    else:
        state.sizing = size_registers(
            state.design,
            state.timer,
            state.new_cells,
            margin=state.config.sizing_margin,
        )
    return {"swapped": state.sizing.num_swapped}


@stage("final-metrics")
def _stage_final_metrics(state: FlowState):
    """Measure the Table 1 'Ours' row."""
    state.final = _measure(state)
    return state.final.as_counters()


FLOW_PIPELINE: Pipeline[FlowState] = Pipeline(
    (
        _stage_base_metrics,
        _stage_decompose,
        _stage_compose,
        _stage_legalize_bits,
        _stage_skew,
        _stage_sizing,
        _stage_final_metrics,
    )
)


def run_flow(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: FlowConfig | None = None,
) -> FlowReport:
    """Run the incremental MBR composition flow on a placed design."""
    config = config or FlowConfig()
    t0 = time.perf_counter()
    state = FlowState(design, timer, scan_model, config=config)
    obs.log("flow.start", design=design.name, algorithm=config.algorithm)
    with obs.span(
        "flow.run", cat="flow", design=design.name, algorithm=config.algorithm
    ) as sp:
        trace = FLOW_PIPELINE.run(state)
        sp.set(
            registers_before=state.base.total_regs if state.base else 0,
            registers_after=state.final.total_regs if state.final else 0,
        )

    state.base.exec_time_s = 0.0
    state.final.exec_time_s = time.perf_counter() - t0
    obs.log(
        "flow.done",
        design=design.name,
        runtime_seconds=round(state.final.exec_time_s, 6),
    )

    return FlowReport(
        design_name=design.name,
        base=state.base,
        final=state.final,
        composition=state.composition,
        skew=state.skew,
        sizing=state.sizing,
        runtime_seconds=state.final.exec_time_s,
        decomposition=state.decomposition,
        trace=trace,
        session=state.session,
    )
