"""Long-lived ECO composition sessions.

An :class:`EcoSession` owns a design, its timer, and its scan model, and
keeps the composition engine's analysis state alive between runs: the
per-register :class:`~repro.core.compatibility.RegisterInfo` map, the
compatibility graph, and a digest-keyed memo of solved connected
components (:class:`~repro.core.composer.CompositionCache`).

Feeding the session :class:`~repro.netlist.change.ChangeRecord` s (via
:meth:`EcoSession.edit` / :meth:`EcoSession.absorb` /
:meth:`EcoSession.observe`) and calling :meth:`EcoSession.recompose`
re-runs the analyze → graph → partition → enumerate → solve → apply →
scan → legalize pipeline scoped to the *dirty* registers — the ones whose
placement, connectivity, timing, or scan context changed — plus their
graph neighborhoods.  Components whose content fingerprint
(:func:`~repro.core.composer.component_digest`) is unchanged replay their
cached solver outcome without re-partitioning, re-enumerating, or
re-solving.

Because enumeration and solving are deterministic functions of component
content, an incremental recompose is *bit-identical* to running
:func:`~repro.core.composer.compose_design` from scratch on the same
netlist.  ``REPRO_ECO_AUDIT=1`` (or ``audit_mode=True``) shadow-checks
that claim after every incremental recompose: the pre-recompose design is
cloned, composed from scratch, and compared — groups, placements, nets,
chains, and the timing summary must all agree, else
:class:`EcoAuditError` is raised.

Edits the session cannot see — direct mutations made outside a
``session.edit()`` scope and never handed to ``absorb``/``observe`` —
void the cache's warranty; :meth:`recompose(full=True) <EcoSession.recompose>`
is the blanket resynchronization fallback.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace
from contextlib import contextmanager
from typing import Iterator

from repro import obs
from repro.core.composer import (
    FINALIZE_PIPELINE,
    PASS_PIPELINE,
    ComposerConfig,
    ComposeState,
    CompositionCache,
    CompositionResult,
    compose_design,
)
from repro.engine import StageTrace
from repro.netlist.change import ChangeRecord, ChangeTracker
from repro.netlist.design import Design
from repro.scan.model import ScanModel
from repro.sta.timer import Timer

AUDIT_ENV = "REPRO_ECO_AUDIT"


def cache_namespace(design: Design, config: ComposerConfig) -> str:
    """Shared-cache namespace fingerprint for one session's world.

    :func:`~repro.core.composer.component_digest` deliberately excludes the
    library, the die, and the composer config ("fixed per session"), so a
    *cross-session* cache must carry them in its key.  Everything hashed
    here has a deterministic ``repr`` (dataclasses, plain values), so the
    namespace is stable across process restarts — which is what makes disk
    spill reusable between server runs.
    """
    h = hashlib.sha256()
    h.update(repr(design.library.name).encode())
    h.update(repr(sorted(c.name for c in design.library.cells())).encode())
    h.update(repr(design.die).encode())
    h.update(repr(config).encode())
    return f"{design.library.name}/{h.hexdigest()[:16]}"


def shared_session_cache(
    design: Design,
    config: ComposerConfig,
    shared: object,
) -> CompositionCache:
    """A session cache wired into a process-wide shared component tier.

    The returned :class:`~repro.core.composer.CompositionCache` falls
    through to ``shared`` on local misses, writes fresh solves through to
    it, and opts into full-mode replay (``replay_in_full``) so even a
    design's priming compose reuses components solved under another design
    or a previous server run.  This is the service-session configuration;
    plain :class:`EcoSession` construction keeps the classic per-session
    memo.
    """
    return CompositionCache(
        shared=shared,
        namespace=cache_namespace(design, config),
        library=design.library,
        replay_in_full=True,
    )


def _audit_env_enabled() -> bool:
    return os.environ.get(AUDIT_ENV, "") not in ("", "0")


class EcoAuditError(AssertionError):
    """An incremental recompose diverged from a from-scratch compose."""


@dataclass
class EcoStats:
    """What one :meth:`EcoSession.recompose` call did.

    ``incremental`` is whether the run was scoped to a dirty set (``False``
    for the priming compose, ``full=True``, or explicit ``passes``);
    ``dirty_registers`` is the initial work-set size.  The reuse counters
    fold the trace's per-stage ``*_reused``/``*_recomputed`` pairs.
    """

    result: CompositionResult
    incremental: bool
    dirty_registers: int
    audit_checked: bool = False

    @property
    def trace(self) -> StageTrace | None:
        return self.result.trace

    @property
    def reuse(self) -> dict[str, tuple[float, float]]:
        """Per-metric (reused, recomputed) totals of this recompose."""
        return self.trace.reuse_summary() if self.trace is not None else {}


@dataclass
class _AuditReference:
    design: Design
    timer: Timer
    scan_model: ScanModel | None


class EcoSession:
    """A persistent composition context over one design.

    Parameters mirror :func:`~repro.core.composer.compose_design`;
    ``max_passes`` caps the convergence loop of an incremental recompose
    (default: ``config.passes``, the same bound the one-shot path uses) and
    ``audit_mode`` arms the shadow equivalence check (default: the
    ``REPRO_ECO_AUDIT`` environment variable).  ``cache`` lets repeated
    sessions over related designs share one
    :class:`~repro.core.composer.CompositionCache` — in particular its ILP
    warm-start incumbents, so a re-run's solves prune immediately.
    """

    def __init__(
        self,
        design: Design,
        timer: Timer,
        scan_model: ScanModel | None = None,
        config: ComposerConfig | None = None,
        max_passes: int | None = None,
        audit_mode: bool | None = None,
        cache: CompositionCache | None = None,
    ) -> None:
        self.design = design
        self.timer = timer
        self.scan_model = scan_model
        self.config = config or ComposerConfig()
        self.max_passes = self.config.passes if max_passes is None else max_passes
        self.audit_mode = _audit_env_enabled() if audit_mode is None else audit_mode
        self.cache = cache if cache is not None else CompositionCache()
        self._primed = False
        self._pending: list[ChangeRecord] = []
        self._carry_records: list[ChangeRecord] = []
        self._carry_changed: set[str] | None = set()

    # -- feeding changes ----------------------------------------------------

    @contextmanager
    def edit(self) -> Iterator[ChangeTracker]:
        """Scope a design edit: the tracked record is absorbed on exit."""
        with self.design.track() as tracker:
            yield tracker
        self.absorb(tracker.record())

    def absorb(self, record: ChangeRecord) -> None:
        """Take ownership of an edit: patch the timer, queue for recompose."""
        self.timer.apply_change(record)
        if not record.is_empty:
            self._pending.append(record)

    def observe(self, record: ChangeRecord) -> None:
        """Queue an edit whose producer already patched the timer itself
        (e.g. sizing, which applies its own scoped changes)."""
        if not record.is_empty:
            self._pending.append(record)

    # -- recomposition ------------------------------------------------------

    def recompose(
        self, passes: int | None = None, full: bool = False
    ) -> EcoStats:
        """Re-run the composition pipeline over everything that changed.

        Incremental (the default once primed): the work-set is derived from
        the queued change records plus the timer's changed-cell ripples, and
        clean components replay their cached outcomes.  ``full=True`` — or an
        explicit ``passes`` count, which requests the one-shot
        :func:`~repro.core.composer.compose_design` semantics exactly —
        refreshes everything.
        """
        records = self._carry_records + self._pending
        self._pending = []
        self._carry_records = []

        incremental = self._primed and not full and passes is None
        ripples: set[str] | None = None
        if incremental:
            ripples = self.timer.drain_changed_cells()
            if ripples is None:
                incremental = False  # a full propagation happened: resync
            elif self._carry_changed is None:
                incremental = False
            else:
                ripples |= self._carry_changed
        self._carry_changed = set()

        reference = self._audit_reference() if incremental and self.audit_mode else None

        t0 = time.perf_counter()
        trace = StageTrace()
        state = ComposeState(
            self.design,
            self.timer,
            self.scan_model,
            config=self.config,
            result=CompositionResult(
                registers_before=self.design.total_register_count()
            ),
            workers=self.config.workers,
            cache=self.cache,
        )
        if incremental:
            state.dirty, state.removed = self._dirty_from(records, ripples)
        dirty_count = len(state.dirty) if state.dirty is not None else len(
            self.design.registers()
        )

        limit = max(1, self.max_passes if passes is None else passes)
        consumed = 0
        hb = obs.get_heartbeat()
        if hb is not None:
            hb.update(dirty_registers=dirty_count, incremental=incremental)
        with obs.span(
            "eco.recompose",
            cat="eco",
            incremental=incremental,
            dirty_registers=dirty_count,
        ) as sp:
            for pass_index in range(limit):
                state.pass_index = pass_index
                if state.dirty is None:
                    # The analysis refreshes every register against current
                    # timing anyway: retire the ripple log so the next
                    # incremental recompose starts a clean epoch.
                    self.timer.drain_changed_cells()
                consumed = len(state.change_log)
                PASS_PIPELINE.run(state, trace)
                if not state.pass_cells or pass_index + 1 >= limit:
                    break
                if state.dirty is not None:
                    next_ripples = self.timer.drain_changed_cells()
                    if next_ripples is None:
                        state.dirty, state.removed = None, set()
                    else:
                        state.dirty, state.removed = self._dirty_from(
                            state.change_log[consumed:], next_ripples
                        )

            FINALIZE_PIPELINE.run(state, trace)
            sp.set(composed=len(state.result.composed))

        state.result.registers_after = self.design.total_register_count()
        state.result.runtime_seconds = time.perf_counter() - t0
        state.result.trace = trace

        reg = obs.get_registry()
        if incremental:
            reg.counter("eco.incremental_recomposes").inc()
            reg.counter("eco.incremental_seconds").inc(
                state.result.runtime_seconds
            )
        else:
            reg.counter("eco.full_recomposes").inc()
            reg.counter("eco.full_seconds").inc(state.result.runtime_seconds)
        obs.log(
            "eco.recompose",
            incremental=incremental,
            dirty_registers=dirty_count,
            composed=len(state.result.composed),
            runtime_seconds=round(state.result.runtime_seconds, 6),
        )

        # Everything logged after the last analysis refresh feeds the next
        # recompose's dirty set, together with the unclaimed timing ripples.
        self._carry_records = [
            r for r in state.change_log[consumed:] if not r.is_empty
        ]
        self._carry_changed = self.timer.drain_changed_cells()
        self._primed = True

        stats = EcoStats(
            result=state.result,
            incremental=incremental,
            dirty_registers=dirty_count,
        )
        if reference is not None:
            self._audit_compare(reference, limit, state.result)
            stats.audit_checked = True
        return stats

    # -- dirty-set derivation ----------------------------------------------

    def _dirty_from(
        self, records: list[ChangeRecord], ripples: set[str]
    ) -> tuple[set[str], set[str]]:
        """The registers an edit batch can have affected.

        Union of (a) registers whose timing moved (the timer's changed-cell
        ripples — covers slack and feasible-region shifts, including skew
        assignments that never touched the netlist), and (b) structural
        candidates: registers added/moved/resized/re-pinned by the records,
        plus every register sharing a net with such a cell or with a rewired
        net — a neighbor's move can reshape a violating pin's net-bbox
        region even when its own delays happen not to change.

        Clock nets are excluded from the net expansion: compatibility only
        reads the clock net's *name* (never its geometry), a re-clocked
        register is itself in ``touched``, and clock-skew timing effects
        arrive through the ripples — without the exclusion every edit would
        dirty the whole clock domain.
        """
        merged = ChangeRecord.merge(records)
        removed = set(merged.removed)
        dirty: set[str] = set()
        affected_nets: set[str] = set(merged.rewired_nets)

        movers = (
            list(merged.cells_added)
            + list(merged.moved)
            + list(merged.resized)
            + list(merged.touched)
        )
        for name in movers:
            cell = self.design.cells.get(name)
            if cell is None:
                continue
            if cell.is_register:
                dirty.add(name)
            for pin in cell.pins.values():
                if pin.net is not None:
                    affected_nets.add(pin.net.name)

        for name in ripples:
            cell = self.design.cells.get(name)
            if cell is not None and cell.is_register:
                dirty.add(name)

        for net_name in affected_nets:
            net = self.design.nets.get(net_name)
            if net is None or net.is_clock:
                continue
            for terminal in net.terminals:
                cell = getattr(terminal, "cell", None)
                if cell is not None and cell.is_register:
                    dirty.add(cell.name)

        dirty -= removed
        return dirty, removed

    # -- audit mode ---------------------------------------------------------

    def _audit_reference(self) -> _AuditReference:
        """Snapshot the pre-recompose world for the shadow check."""
        ref_design = self.design.clone()
        ref_timer = Timer(
            ref_design,
            self.timer.clock_period,
            skew=dict(self.timer.skew),
            input_delay=self.timer.input_delay,
            output_delay=self.timer.output_delay,
            technology=self.timer.tech,
            audit_mode=False,
            kernel=self.timer.kernel,
        )
        ref_scan = self.scan_model.clone() if self.scan_model is not None else None
        return _AuditReference(ref_design, ref_timer, ref_scan)

    def _audit_compare(
        self, ref: _AuditReference, limit: int, result: CompositionResult
    ) -> None:
        """Compose the snapshot from scratch and demand exact agreement."""
        ref_result = compose_design(
            ref.design,
            ref.timer,
            ref.scan_model,
            config=replace(self.config, passes=limit),
        )

        def groups(res: CompositionResult):
            return [
                (g.new_cell, g.libcell, tuple(g.members), g.bits)
                for g in res.composed
            ]

        if groups(result) != groups(ref_result):
            raise EcoAuditError(
                "ECO audit: composed groups diverged from from-scratch compose\n"
                f"  incremental: {groups(result)}\n"
                f"  reference:   {groups(ref_result)}"
            )

        def placements(design: Design):
            return {
                name: (c.libcell.name, c.origin.x, c.origin.y)
                for name, c in design.cells.items()
            }

        live, shadow = placements(self.design), placements(ref.design)
        if live != shadow:
            diff = {
                k
                for k in live.keys() | shadow.keys()
                if live.get(k) != shadow.get(k)
            }
            raise EcoAuditError(
                f"ECO audit: placements diverged on {sorted(diff)[:10]}"
            )

        if set(self.design.nets) != set(ref.design.nets):
            raise EcoAuditError(
                "ECO audit: net sets diverged: "
                f"{set(self.design.nets) ^ set(ref.design.nets)}"
            )

        if self.scan_model is not None:

            def chain_state(model: ScanModel):
                return {
                    name: (c.partition, c.ordered, tuple(c.cells))
                    for name, c in model.chains.items()
                }

            if chain_state(self.scan_model) != chain_state(ref.scan_model):
                raise EcoAuditError("ECO audit: scan chains diverged")

        live_summary = self.timer.summary()
        ref_summary = ref.timer.summary()
        if live_summary != ref_summary:
            raise EcoAuditError(
                "ECO audit: timing summaries diverged: "
                f"{live_summary} vs {ref_summary}"
            )
