"""The incremental implementation flow of the paper's Fig. 4."""

from repro.flow.driver import FlowConfig, FlowReport, run_flow

__all__ = ["FlowConfig", "FlowReport", "run_flow"]
