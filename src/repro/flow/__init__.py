"""The incremental implementation flow of the paper's Fig. 4."""

from repro.flow.driver import (
    FLOW_PIPELINE,
    FlowConfig,
    FlowReport,
    FlowState,
    run_flow,
)
from repro.flow.session import EcoAuditError, EcoSession, EcoStats

__all__ = [
    "FLOW_PIPELINE",
    "FlowConfig",
    "FlowReport",
    "FlowState",
    "run_flow",
    "EcoAuditError",
    "EcoSession",
    "EcoStats",
]
