"""Scan-chain modeling: partitions, ordered sections, and re-stitching.

Section 2 of the paper derives *scan compatibility* from the scan chain
definitions: registers may merge only within a scan partition; ordered
sections additionally constrain internal-scan MBRs to preserve scan order;
multi-SI/SO MBR cells lift ordering restrictions at extra routing cost.

:class:`ScanModel` carries those definitions alongside the netlist,
answers the compatibility queries, tracks compositions, and re-stitches the
physical SI/SO nets after the flow finishes restructuring.
"""

from repro.scan.model import ScanChain, ScanModel, ScanBitRef

__all__ = ["ScanChain", "ScanModel", "ScanBitRef"]
