"""Scan chains, partitions, and chain re-stitching after composition."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.functional import ScanStyle
from repro.netlist.db import Cell
from repro.netlist.design import Design
from repro.netlist.registers import RegisterView


@dataclass(frozen=True, slots=True)
class ScanBitRef:
    """One scan-chain hop token: a cell, optionally restricted to specific
    bits.

    A plain register or an internal-scan MBR occupies one whole-cell hop
    (``bits is None``): scan enters its SI and leaves its SO.  A multi-SI/SO
    MBR may be visited several times by the same (or different) chains, a
    subset of bits per visit — the paper's "several scan chains with
    different constraints can cross the same MBR".  Ordered sections rely on
    this to keep their scan order when non-consecutive members merge.
    """

    cell_name: str
    bits: tuple[int, ...] | None = None


@dataclass
class ScanChain:
    """An ordered scan chain within a partition.

    ``ordered`` marks an *ordered scan section*: the relative order of its
    registers is a test constraint and must survive composition (paper
    Section 2).  Unordered chains may be freely re-stitched.

    ``cells`` is the hop sequence (cell names; a multi-SI/SO MBR may appear
    several times) and ``hop_bits`` the per-hop bit restriction aligned with
    it (``None`` = the whole cell).  ``hop_bits`` is managed by
    :meth:`ScanModel.replace_group`; hand-built chains may leave it empty.

    ``source_net`` / ``sink_net`` name the chain's external scan-in source
    and scan-out destination nets; they are learned on the first
    :meth:`ScanModel.restitch` and used to re-attach the chain's head and
    tail after composition moves or removes boundary registers.
    """

    name: str
    partition: str
    cells: list[str] = field(default_factory=list)
    ordered: bool = False
    source_net: str | None = None
    sink_net: str | None = None
    hop_bits: list[tuple[int, ...] | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.hop_bits:
            self.hop_bits = [None] * len(self.cells)
        if len(self.hop_bits) != len(self.cells):
            raise ValueError(f"chain {self.name}: hop_bits does not match cells")

    def position(self, cell_name: str) -> int:
        return self.cells.index(cell_name)


class ScanModel:
    """Scan structure of a design: chains grouped into partitions."""

    def __init__(self) -> None:
        self.chains: dict[str, ScanChain] = {}
        self._chain_of: dict[str, str] = {}

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_design(design: Design, partition: str = "P0") -> "ScanModel":
        """Extract scan chains by tracing SO -> SI connectivity.

        Chain heads are scan registers whose SI net is not driven by another
        register's scan-out; the walk follows each register's SO net to the
        next SI until the chain leaves the registers.  All extracted chains
        share one partition and are unordered — exactly the permissive
        situation of Section 2 ("moving scan pins across different scan
        chains is allowed"); stricter partitions or ordered sections are
        design intent and must be declared, not inferred.

        Multi-SI/SO cells are traced bit by bit; a chain that crosses such a
        cell re-enters it once per visited bit.
        """
        model = ScanModel()
        views = {
            c.name: RegisterView(c)
            for c in design.registers()
            if c.register_cell.func_class.is_scan
        }
        # Map: SI pin -> owning (cell, entry bit) for chain walking.
        si_owner: dict[int, tuple[str, int]] = {}
        for name, view in views.items():
            lc = view.libcell
            if lc.scan_style is ScanStyle.MULTI:
                for bit in range(lc.width_bits):
                    si_owner[id(view.cell.pin(lc.si_pin(bit)))] = (name, bit)
            else:
                si_owner[id(view.cell.pin(lc.si_pin()))] = (name, 0)

        def so_pin(name: str, bit: int):
            lc = views[name].libcell
            if lc.scan_style is ScanStyle.MULTI:
                return views[name].cell.pin(lc.so_pin(bit))
            return views[name].cell.pin(lc.so_pin())

        def next_hop(name: str, bit: int):
            net = so_pin(name, bit).net
            if net is None:
                return None
            for sink in net.sinks:
                hop = si_owner.get(id(sink))
                if hop is not None:
                    return hop
            return None

        heads: list[tuple[str, int]] = []
        for name, view in views.items():
            lc = view.libcell
            entry_bits = (
                range(lc.width_bits) if lc.scan_style is ScanStyle.MULTI else (0,)
            )
            for bit in entry_bits:
                si = view.cell.pin(lc.si_pin(bit) if lc.scan_style is ScanStyle.MULTI else lc.si_pin())
                net = si.net
                driver = net.driver if net is not None else None
                driven_by_scan = (
                    driver is not None
                    and getattr(driver, "cell", None) is not None
                    and driver.cell.name in views
                    and driver.name.startswith("SO")
                )
                if not driven_by_scan:
                    heads.append((name, bit))

        chain_idx = 0
        claimed: set[tuple[str, int]] = set()
        for head in sorted(heads):
            if head in claimed:
                continue
            hops: list[tuple[str, int]] = []
            cursor: tuple[str, int] | None = head
            while cursor is not None and cursor not in claimed:
                claimed.add(cursor)
                hops.append(cursor)
                cursor = next_hop(*cursor)
            cells = [name for name, _ in hops]
            # Collapse per-bit hops of internal-scan cells already happen
            # (bit is always 0 there); multi-scan visits keep bit detail.
            hop_bits: list[tuple[int, ...] | None] = []
            for name, bit in hops:
                lc = views[name].libcell
                hop_bits.append((bit,) if lc.scan_style is ScanStyle.MULTI else None)
            chain = ScanChain(
                name=f"extracted_{chain_idx}",
                partition=partition,
                cells=cells,
                hop_bits=hop_bits,
            )
            # Record the external boundary nets now, while the physical
            # chain is intact — composition may remove the head or tail
            # register before the first restitch.
            head_name, head_bit = hops[0]
            head_lc = views[head_name].libcell
            head_si = views[head_name].cell.pin(
                head_lc.si_pin(head_bit)
                if head_lc.scan_style is ScanStyle.MULTI
                else head_lc.si_pin()
            )
            if head_si.net is not None and head_si.net.driver is not None:
                chain.source_net = head_si.net.name
            tail_so = so_pin(*hops[-1])
            if tail_so.net is not None and tail_so.net.sinks:
                chain.sink_net = tail_so.net.name
            model.add_chain(chain)
            chain_idx += 1
        return model

    def clone(self) -> "ScanModel":
        """An independent copy (same chain structure, fresh containers) —
        the ECO audit replays composition on it without disturbing the
        session's live model.

        Copies the containers directly rather than via :meth:`add_chain`:
        a composed multi-SI/SO MBR legitimately appears on several chains
        (:meth:`replace_group`'s ordered branch), which the construction-
        time one-chain check would reject.
        """
        other = ScanModel()
        for chain in self.chains.values():
            other.chains[chain.name] = ScanChain(
                name=chain.name,
                partition=chain.partition,
                cells=list(chain.cells),
                ordered=chain.ordered,
                source_net=chain.source_net,
                sink_net=chain.sink_net,
                hop_bits=[
                    tuple(h) if h is not None else None for h in chain.hop_bits
                ],
            )
        other._chain_of = dict(self._chain_of)
        return other

    def add_chain(self, chain: ScanChain) -> None:
        if chain.name in self.chains:
            raise ValueError(f"duplicate scan chain {chain.name!r}")
        for cell_name in chain.cells:
            # The same cell may appear several times on ONE chain (per-bit
            # visits of a multi-SI/SO MBR) but never on two chains.
            if self._chain_of.get(cell_name, chain.name) != chain.name:
                raise ValueError(f"register {cell_name} already on a scan chain")
            self._chain_of[cell_name] = chain.name
        self.chains[chain.name] = chain

    # -- queries -----------------------------------------------------------------

    def chain_of(self, cell_name: str) -> ScanChain | None:
        name = self._chain_of.get(cell_name)
        return self.chains[name] if name is not None else None

    def partition_of(self, cell_name: str) -> str | None:
        chain = self.chain_of(cell_name)
        return chain.partition if chain else None

    def same_partition(self, a: str, b: str) -> bool:
        """Scan compatibility at the partition level: both unscanned, or
        both in the same partition."""
        pa, pb = self.partition_of(a), self.partition_of(b)
        return pa == pb

    def ordered_positions(self, cell_names: list[str]) -> list[tuple[str, int]] | None:
        """For registers in *ordered* chains, their (chain, position) pairs.

        Returns ``None`` when any register is on an ordered chain different
        from the others — such groups can never preserve scan order in a
        single internal-scan MBR.
        """
        entries: list[tuple[str, int]] = []
        chains = set()
        for name in cell_names:
            chain = self.chain_of(name)
            if chain is not None and chain.ordered:
                chains.add(chain.name)
                entries.append((chain.name, chain.position(name)))
        if len(chains) > 1:
            return None
        return entries

    def consecutive_in_order(self, cell_names: list[str]) -> bool:
        """Whether the ordered-section members of a group occupy consecutive
        chain positions — the condition for an internal-scan MBR to preserve
        the section's order (Section 2)."""
        entries = self.ordered_positions(cell_names)
        if entries is None:
            return False
        if not entries:
            return True
        positions = sorted(pos for _, pos in entries)
        return positions == list(range(positions[0], positions[0] + len(positions)))

    # -- composition tracking ---------------------------------------------------------

    def replace_group(
        self,
        group: list[str],
        new_cell: str,
        bit_map: dict[str, tuple[int, ...]] | None = None,
        multi: bool = False,
    ) -> None:
        """Record that ``group`` merged into ``new_cell``.

        ``bit_map`` maps each member to the new cell's bit indices it
        occupies (the composer derives it from the bit order it wired);
        ``multi`` says the new cell is a multi-SI/SO register that several
        chains may cross.

        A single-SI/SO cell occupies exactly one chain hop, so the group
        collapses onto the earliest member position of one *host* chain —
        an ordered affected chain when there is one (the MBR inherits the
        ordered section's slot; its internal chain preserves member order
        via the composer's bit order), else the first affected chain.
        Moving the other chains' scan bits across chains is what the paper
        allows for unordered sections, and a later :meth:`reorder_chains`
        re-optimizes them.

        When the new cell is ``multi`` (and ``bit_map`` is known), every
        member is instead replaced **in place** by a per-bit visit of the
        new cell, so each affected chain's relative order survives exactly:
        this is the multi-SI/SO case where several chain segments cross one
        MBR.  Adjacent visits merge, so a consecutive run becomes one hop.
        """
        group_set = set(group)
        affected = sorted({self._chain_of[g] for g in group if g in self._chain_of})
        if not affected:
            return

        if multi and bit_map is not None:
            for chain_name in affected:
                chain = self.chains[chain_name]
                cells: list[str] = []
                bits: list[tuple[int, ...] | None] = []
                for cell_name, hop in zip(chain.cells, chain.hop_bits):
                    if cell_name not in group_set:
                        cells.append(cell_name)
                        bits.append(hop)
                        continue
                    visit = bit_map.get(cell_name, ())
                    if cells and cells[-1] == new_cell and bits[-1] is not None:
                        bits[-1] = tuple(bits[-1]) + tuple(visit)  # merge adjacent
                    else:
                        cells.append(new_cell)
                        bits.append(tuple(visit))
                chain.cells = cells
                chain.hop_bits = bits
            self._chain_of[new_cell] = next(
                c for c in affected if new_cell in self.chains[c].cells
            )
        else:
            host = next(
                (c for c in affected if self.chains[c].ordered), affected[0]
            )
            for chain_name in affected:
                chain = self.chains[chain_name]
                cells = []
                bits = []
                inserted = False
                for cell_name, hop in zip(chain.cells, chain.hop_bits):
                    if cell_name in group_set:
                        if chain_name == host and not inserted:
                            cells.append(new_cell)
                            bits.append(None)
                            inserted = True
                    else:
                        cells.append(cell_name)
                        bits.append(hop)
                chain.cells = cells
                chain.hop_bits = bits
                if inserted:
                    self._chain_of[new_cell] = chain_name
        for g in group:
            self._chain_of.pop(g, None)

    def expand_cell(self, old_cell: str, new_cells: list[str]) -> None:
        """Replace one chain entry by a sequence (MBR decomposition).

        The new cells take the old cell's position in its chain, in order;
        per-bit hop annotations collapse to whole-cell hops (the new cells
        are single-bit).
        """
        chain_name = self._chain_of.get(old_cell)
        if chain_name is None:
            return
        chain = self.chains[chain_name]
        cells: list[str] = []
        bits: list[tuple[int, ...] | None] = []
        inserted = False
        for cell_name, hop in zip(chain.cells, chain.hop_bits):
            if cell_name == old_cell:
                if not inserted:
                    cells.extend(new_cells)
                    bits.extend([None] * len(new_cells))
                    inserted = True
            else:
                cells.append(cell_name)
                bits.append(hop)
        chain.cells = cells
        chain.hop_bits = bits
        del self._chain_of[old_cell]
        for name in new_cells:
            self._chain_of[name] = chain_name

    # -- physical re-stitch --------------------------------------------------------------

    def reorder_chains(self, design: Design) -> int:
        """Re-order *unordered* chains by placement (serpentine: row-major,
        alternating direction) to minimize stitch wirelength.

        Composition replaces scattered registers with one MBR at a new
        location; keeping the old chain order then zigzags the stitch
        routing.  Re-ordering is exactly the freedom the paper grants
        unordered scan partitions ("moving scan pins across different scan
        chains is allowed").  Ordered sections are left untouched.  Returns
        the number of chains re-ordered.
        """
        changed = 0
        for chain in self.chains.values():
            if chain.ordered or len(chain.cells) < 3:
                continue
            hops = [
                (design.cells[n], bits)
                for n, bits in zip(chain.cells, chain.hop_bits)
                if n in design.cells
            ]
            if len(hops) < 3:
                continue

            def serpentine_key(hop):
                row = round(hop[0].origin.y)
                x = hop[0].origin.x if row % 2 == 0 else -hop[0].origin.x
                return (row, x, hop[0].name)

            hops.sort(key=serpentine_key)
            new_cells = [c.name for c, _ in hops]
            if new_cells != chain.cells:
                # Names filtered out above (cells gone from the design) must
                # also leave the chain index, or chain_of()/partition_of()
                # keep answering for dead cells — and clone() would copy the
                # dangling entries into the audit's reference model.
                for name in set(chain.cells) - set(new_cells):
                    self._chain_of.pop(name, None)
                chain.cells = new_cells
                chain.hop_bits = [bits for _, bits in hops]
                changed += 1
        return changed

    def restitch(self, design: Design) -> int:
        """Rewire every chain's SI/SO nets to match the model's order.

        Intermediate stitch nets are recreated as needed; the chain head is
        re-attached to the chain's external scan-in source and the tail to
        its scan-out destination (learned on the first call).  A chain whose
        registers all merged away is bridged source-to-sink.  Multi-scan
        MBRs are threaded bit by bit.  Returns the number of stitch nets
        created.
        """
        created = 0
        for chain in self.chains.values():
            hops = self._chain_hops(design, chain)
            if not hops:
                self._bridge_empty_chain(design, chain)
                continue
            self._learn_boundaries(design, chain, hops)
            self._attach_head(design, chain, hops)
            for (so_pin, _), (_, si_pin) in zip(hops[:-1], hops[1:]):
                if so_pin.net is not None and si_pin.net is so_pin.net:
                    continue  # already stitched
                net = so_pin.net
                if net is None or net.driver is not so_pin:
                    net = design.add_net(design.unique_name("scan_stitch"))
                    design.connect(so_pin, net)
                    created += 1
                design.connect(si_pin, net)
            self._attach_tail(design, chain, hops)
        self._sweep_orphan_stitches(design)
        return created

    def _learn_boundaries(self, design: Design, chain: ScanChain, hops) -> None:
        """Record the chain's external source/sink nets on first sight."""
        head_si = hops[0][1]
        if chain.source_net is None and head_si.net is not None and head_si.net.driver is not None:
            chain.source_net = head_si.net.name
        tail_so = hops[-1][0]
        if chain.sink_net is None and tail_so.net is not None and tail_so.net.sinks:
            chain.sink_net = tail_so.net.name

    def _attach_head(self, design: Design, chain: ScanChain, hops) -> None:
        head_si = hops[0][1]
        if head_si.net is not None and head_si.net.driver is not None:
            return  # still properly sourced
        if chain.source_net is not None and chain.source_net in design.nets:
            design.connect(head_si, design.nets[chain.source_net])

    def _attach_tail(self, design: Design, chain: ScanChain, hops) -> None:
        tail_so = hops[-1][0]
        if chain.sink_net is None or chain.sink_net not in design.nets:
            return
        sink_net = design.nets[chain.sink_net]
        if sink_net.driver is tail_so:
            return
        if sink_net.driver is None:
            design.connect(tail_so, sink_net)

    def _bridge_empty_chain(self, design: Design, chain: ScanChain) -> None:
        """All registers of the chain merged into other chains: route the
        chain's source straight to its sink so neither dangles."""
        if (
            chain.source_net
            and chain.sink_net
            and chain.source_net in design.nets
            and chain.sink_net in design.nets
        ):
            src = design.nets[chain.source_net]
            dst = design.nets[chain.sink_net]
            if dst.driver is None and src.driver is not None:
                for sink in list(dst.sinks):
                    design.connect(sink, src)
                design.remove_net(dst)
                chain.sink_net = src.name

    def _sweep_orphan_stitches(self, design: Design) -> None:
        """Drop stitch nets that lost both driver and sinks during rewiring."""
        dead = [
            net
            for net in design.nets.values()
            if not net.terminals and net.name.startswith("scan_stitch")
        ]
        for net in dead:
            design.remove_net(net)

    def _chain_hops(self, design: Design, chain: ScanChain):
        """Per chain hop, its (scan-out pin, scan-in pin) in traverse order.

        Multi-scan MBRs expand to one hop per visited bit (all bits when the
        hop has no restriction); internal-scan cells are one hop regardless
        of bit annotations, deduplicated if the chain lists them twice.
        """
        hops = []
        seen_internal: set[str] = set()
        for cell_name, hop_bits in zip(chain.cells, chain.hop_bits):
            cell = design.cells.get(cell_name)
            if cell is None or not cell.is_register:
                continue
            view = RegisterView(cell)
            lc = view.libcell
            if not lc.func_class.is_scan:
                continue
            if lc.scan_style is ScanStyle.MULTI:
                bits = hop_bits if hop_bits is not None else tuple(range(lc.width_bits))
                for bit in bits:
                    hops.append((cell.pin(lc.so_pin(bit)), cell.pin(lc.si_pin(bit))))
            else:
                if cell_name in seen_internal:
                    continue
                seen_internal.add(cell_name)
                hops.append((cell.pin(lc.so_pin()), cell.pin(lc.si_pin())))
        return hops
