"""Typed change records for netlist edits.

Every structural edit of a :class:`~repro.netlist.design.Design` — MBR
composition, decomposition, sizing swaps, scan restitching, legalization
moves — is summarized by a :class:`ChangeRecord`: which cells appeared,
disappeared, moved, or were re-pinned, and which nets were rewired.  The
incremental timer (:meth:`repro.sta.timer.Timer.apply_change`) consumes the
record to patch its timing graph and re-propagate only the affected cones
instead of rebuilding from scratch.

Records are produced by a :class:`ChangeTracker` installed on the design
(``with design.track() as tracker:``): the design's editing primitives
notify every active tracker, so compound edits built from primitives —
including code that never heard of change tracking, like the scan
restitcher — are captured without instrumentation of their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.db import Cell, Net, Terminal


@dataclass(frozen=True)
class ChangeRecord:
    """One netlist edit, summarized for incremental consumers.

    ``added`` holds live :class:`~repro.netlist.db.Cell` handles (creation
    order); removed cells are names only — their objects are already
    detached.  ``touched`` lists surviving cells whose pin connectivity
    changed (a pin joined or left a net) without the cell itself being
    added, removed, or resized.  ``rewired_nets`` are nets whose terminal
    set or geometry changed and that still exist; ``removed_nets`` are
    gone.  ``resized`` cells swapped library cells (all pin objects were
    replaced); ``moved`` cells changed origin (every attached net's wire
    delays changed).
    """

    added: tuple["Cell", ...] = ()
    removed: tuple[str, ...] = ()
    resized: tuple[str, ...] = ()
    moved: tuple[str, ...] = ()
    touched: tuple[str, ...] = ()
    ports_touched: tuple[str, ...] = ()
    rewired_nets: tuple[str, ...] = ()
    removed_nets: tuple[str, ...] = ()

    @property
    def cells_added(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.added)

    @property
    def cells_removed(self) -> tuple[str, ...]:
        return self.removed

    @property
    def new_cell(self) -> "Cell":
        """The single cell this edit created (compose_mbr's result)."""
        if len(self.added) != 1:
            raise ValueError(
                f"change record has {len(self.added)} added cells, not exactly 1"
            )
        return self.added[0]

    @property
    def new_cells(self) -> tuple["Cell", ...]:
        return self.added

    @property
    def is_empty(self) -> bool:
        return not (
            self.added
            or self.removed
            or self.resized
            or self.moved
            or self.touched
            or self.ports_touched
            or self.rewired_nets
            or self.removed_nets
        )

    @classmethod
    def merge(cls, records: Iterable["ChangeRecord"]) -> "ChangeRecord":
        """Fold several records into one (later records win on conflicts:
        a cell added in one record and removed in a later one vanishes)."""
        added: dict[str, Cell] = {}
        removed: dict[str, None] = {}
        resized: dict[str, None] = {}
        moved: dict[str, None] = {}
        touched: dict[str, None] = {}
        ports: dict[str, None] = {}
        rewired: dict[str, None] = {}
        removed_nets: dict[str, None] = {}
        for rec in records:
            for c in rec.added:
                added[c.name] = c
                removed.pop(c.name, None)
            for n in rec.removed:
                if added.pop(n, None) is None:
                    removed[n] = None
            for n in rec.resized:
                resized[n] = None
            for n in rec.moved:
                moved[n] = None
            for n in rec.touched:
                touched[n] = None
            for n in rec.ports_touched:
                ports[n] = None
            for n in rec.rewired_nets:
                rewired[n] = None
                removed_nets.pop(n, None)
            for n in rec.removed_nets:
                rewired.pop(n, None)
                removed_nets[n] = None
        gone = set(removed) | set(added)
        return cls(
            added=tuple(added.values()),
            removed=tuple(removed),
            resized=tuple(n for n in resized if n not in gone),
            moved=tuple(n for n in moved if n not in gone),
            touched=tuple(
                n for n in touched if n not in gone and n not in resized
            ),
            ports_touched=tuple(ports),
            rewired_nets=tuple(rewired),
            removed_nets=tuple(removed_nets),
        )


@dataclass(eq=False)  # identity equality: nested trackers must stay distinct
class ChangeTracker:
    """Accumulates design-edit notifications into a :class:`ChangeRecord`.

    Installed via ``with design.track() as tracker:``; every editing
    primitive of the design notifies all active trackers, so trackers nest
    (an outer tracker sees everything inner scopes did).
    """

    _added: dict[str, "Cell"] = field(default_factory=dict)
    _removed: dict[str, None] = field(default_factory=dict)
    _resized: dict[str, None] = field(default_factory=dict)
    _moved: dict[str, None] = field(default_factory=dict)
    _touched: dict[str, None] = field(default_factory=dict)
    _ports: dict[str, None] = field(default_factory=dict)
    _rewired: dict[str, None] = field(default_factory=dict)
    _removed_nets: dict[str, None] = field(default_factory=dict)
    _added_nets: set[str] = field(default_factory=set)

    # -- notifications (called by Design primitives) -----------------------

    def on_add_cell(self, cell: "Cell") -> None:
        self._added[cell.name] = cell
        self._removed.pop(cell.name, None)

    def on_remove_cell(self, cell: "Cell") -> None:
        if self._added.pop(cell.name, None) is None:
            self._removed[cell.name] = None

    def on_swap_libcell(self, cell: "Cell") -> None:
        self._resized[cell.name] = None

    def on_move_cell(self, cell: "Cell") -> None:
        self._moved[cell.name] = None

    def on_add_net(self, net: "Net") -> None:
        self._added_nets.add(net.name)
        self._removed_nets.pop(net.name, None)
        self._rewired[net.name] = None

    def on_remove_net(self, net: "Net") -> None:
        # Terminals still attached at notification time: their cells' pin
        # connectivity is about to change with the net's death.
        for t in net.terminals:
            self._record_terminal(t)
        self._rewired.pop(net.name, None)
        if net.name in self._added_nets:
            self._added_nets.discard(net.name)
        else:
            self._removed_nets[net.name] = None

    def on_connect(self, terminal: "Terminal", net: "Net") -> None:
        self._rewired[net.name] = None
        self._record_terminal(terminal)

    def on_disconnect(self, terminal: "Terminal", net: "Net") -> None:
        self._rewired[net.name] = None
        self._record_terminal(terminal)

    def _record_terminal(self, terminal: "Terminal") -> None:
        cell = getattr(terminal, "cell", None)
        if cell is not None:
            self._touched[cell.name] = None
        else:  # a design port
            self._ports[terminal.name] = None

    # -- finalization -------------------------------------------------------

    def record(self) -> ChangeRecord:
        """The net effect of everything tracked so far."""
        gone = set(self._removed) | set(self._added)
        return ChangeRecord(
            added=tuple(self._added.values()),
            removed=tuple(self._removed),
            resized=tuple(n for n in self._resized if n not in gone),
            moved=tuple(n for n in self._moved if n not in gone),
            touched=tuple(
                n
                for n in self._touched
                if n not in gone and n not in self._resized
            ),
            ports_touched=tuple(self._ports),
            rewired_nets=tuple(
                n for n in self._rewired if n not in self._removed_nets
            ),
            removed_nets=tuple(self._removed_nets),
        )
