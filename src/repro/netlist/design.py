"""The design container: cell/net/port namespaces and editing primitives."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import LibCell, PinDirection
from repro.library.library import CellLibrary
from repro.netlist.change import ChangeTracker
from repro.netlist.db import Cell, Net, Pin, Port, Terminal


class Design:
    """A placed design: cells, nets, and ports over a cell library.

    All structural edits go through this class so name uniqueness and
    pin/net cross-references stay consistent.  The MBR composition flow
    edits designs exclusively via these primitives (plus
    :func:`repro.netlist.edit.compose_mbr` built on top of them).

    Edits can be observed: ``with design.track() as tracker:`` installs a
    :class:`~repro.netlist.change.ChangeTracker` that every primitive
    notifies, and ``tracker.record()`` yields the
    :class:`~repro.netlist.change.ChangeRecord` the incremental timer
    consumes.  Trackers nest; with none installed the hooks are free.
    """

    def __init__(self, name: str, library: CellLibrary, die: Rect) -> None:
        self.name = name
        self.library = library
        self.die = die
        self.cells: dict[str, Cell] = {}
        self.nets: dict[str, Net] = {}
        self.ports: dict[str, Port] = {}
        self._uniq = 0
        self._trackers: list[ChangeTracker] = []

    # -- change tracking --------------------------------------------------------

    @contextmanager
    def track(self) -> Iterator[ChangeTracker]:
        """Record every edit made inside the ``with`` block."""
        tracker = ChangeTracker()
        self._trackers.append(tracker)
        try:
            yield tracker
        finally:
            self._trackers.remove(tracker)

    def _notify(self, event: str, *args) -> None:
        for tracker in self._trackers:
            getattr(tracker, event)(*args)

    # -- copying ----------------------------------------------------------------

    def clone(self) -> "Design":
        """A deep, independent copy of the design (same library objects).

        Cells, nets (terminal order preserved), ports, placements, and the
        unique-name counter all carry over, so edits replayed on the clone
        generate the same generated names (``mbr_N``, stitch nets) as on the
        original — the property the ECO audit mode relies on to compare an
        incremental recompose against a from-scratch one.
        """
        other = Design(self.name, self.library, self.die)
        for port in self.ports.values():
            other.add_port(port.name, port.direction, port.location, cap=port.cap)
        for cell in self.cells.values():
            copy = other.add_cell(
                cell.name,
                cell.libcell,
                cell.origin,
                fixed=cell.fixed,
                dont_touch=cell.dont_touch,
            )
            copy.attrs = dict(cell.attrs)
        for net in self.nets.values():
            copy_net = other.add_net(net.name, is_clock=net.is_clock)
            for t in net.terminals:
                if isinstance(t, Pin):
                    other.connect(other.cells[t.cell.name].pin(t.name), copy_net)
                else:
                    other.connect(other.ports[t.name], copy_net)
        other._uniq = self._uniq
        return other

    # -- naming ---------------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        """A fresh name with the given prefix (used for composed MBRs)."""
        while True:
            self._uniq += 1
            name = f"{prefix}_{self._uniq}"
            if name not in self.cells and name not in self.nets:
                return name

    # -- cells ------------------------------------------------------------------

    def add_cell(
        self,
        name: str,
        libcell: LibCell | str,
        origin: Point = Point(0.0, 0.0),
        fixed: bool = False,
        dont_touch: bool = False,
    ) -> Cell:
        if name in self.cells:
            raise ValueError(f"duplicate cell name {name!r}")
        if isinstance(libcell, str):
            libcell = self.library.cell(libcell)
        cell = Cell(name, libcell, origin, fixed=fixed, dont_touch=dont_touch)
        self.cells[name] = cell
        if self._trackers:
            self._notify("on_add_cell", cell)
        return cell

    def remove_cell(self, cell: Cell | str) -> None:
        """Remove a cell, disconnecting all of its pins."""
        if isinstance(cell, str):
            cell = self.cells[cell]
        for pin in list(cell.pins.values()):
            if pin.net is not None:
                self.disconnect(pin)
        del self.cells[cell.name]
        if self._trackers:
            self._notify("on_remove_cell", cell)

    def move_cell(self, cell: Cell | str, origin: Point) -> None:
        """Move a cell, notifying change trackers (pin locations shift, so
        every attached net's wire delays change)."""
        if isinstance(cell, str):
            cell = self.cells[cell]
        if cell.origin == origin:
            return
        cell.move_to(origin)
        if self._trackers:
            self._notify("on_move_cell", cell)

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"design {self.name!r} has no cell {name!r}") from None

    def swap_libcell(self, cell: Cell, new_libcell: LibCell | str) -> None:
        """Re-map a cell to a pin-compatible library cell (sizing).

        Every connected pin of the old cell must exist on the new cell; the
        connections carry over by pin name.  Used by MBR sizing to move
        between drive strengths of the same register family.
        """
        if isinstance(new_libcell, str):
            new_libcell = self.library.cell(new_libcell)
        saved = [(p.name, p.net) for p in cell.pins.values() if p.net is not None]
        for pin_name, _ in saved:
            if not new_libcell.has_pin(pin_name):
                raise ValueError(
                    f"cannot swap {cell.name} to {new_libcell.name}: "
                    f"no pin {pin_name!r} on the new cell"
                )
        for pin in cell.pins.values():
            if pin.net is not None:
                self.disconnect(pin)
        cell.libcell = new_libcell
        cell.pins = {d.name: Pin(cell, d) for d in new_libcell.pins}
        for pin_name, net in saved:
            self.connect(cell.pin(pin_name), net)
        if self._trackers:
            self._notify("on_swap_libcell", cell)

    # -- nets --------------------------------------------------------------------

    def add_net(self, name: str, is_clock: bool = False) -> Net:
        if name in self.nets:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(name, is_clock=is_clock)
        self.nets[name] = net
        if self._trackers:
            self._notify("on_add_net", net)
        return net

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"design {self.name!r} has no net {name!r}") from None

    def remove_net(self, net: Net | str) -> None:
        """Remove a net; all its terminals become unconnected."""
        if isinstance(net, str):
            net = self.nets[net]
        if self._trackers:
            self._notify("on_remove_net", net)  # terminals still attached
        for t in list(net.terminals):
            t.net = None
        del self.nets[net.name]

    # -- ports -------------------------------------------------------------------

    def add_port(
        self,
        name: str,
        direction: PinDirection,
        location: Point,
        cap: float = 0.002,
    ) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port name {name!r}")
        port = Port(name, direction, location, cap=cap)
        self.ports[name] = port
        return port

    # -- connectivity ------------------------------------------------------------

    def connect(self, terminal: Terminal, net: Net | str) -> None:
        if isinstance(net, str):
            net = self.nets[net]
        if terminal.net is net:
            return
        if terminal.net is not None:
            self.disconnect(terminal)
        net.terminals.append(terminal)
        terminal.net = net
        if self._trackers:
            self._notify("on_connect", terminal, net)

    def disconnect(self, terminal: Terminal) -> None:
        net = terminal.net
        if net is None:
            return
        net.terminals.remove(terminal)
        terminal.net = None
        if self._trackers:
            self._notify("on_disconnect", terminal, net)

    # -- views --------------------------------------------------------------------

    def registers(self) -> list[Cell]:
        """All register cells (single-bit flops, latches, and MBRs)."""
        return [c for c in self.cells.values() if c.is_register]

    def iter_terminals(self) -> Iterator[Terminal]:
        for cell in self.cells.values():
            yield from cell.pins.values()
        yield from self.ports.values()

    def clock_nets(self) -> list[Net]:
        return [n for n in self.nets.values() if n.is_clock]

    # -- aggregate metrics ---------------------------------------------------------

    def total_cell_area(self) -> float:
        return sum(c.libcell.area for c in self.cells.values())

    def total_register_count(self) -> int:
        """Number of register *cells* — each MBR counts as one register,
        matching the paper's Table 1 'Total Regs' convention."""
        return sum(1 for c in self.cells.values() if c.is_register)

    def total_register_bits(self) -> int:
        """Number of *connected* register bits — invariant under MBR
        composition (an incomplete MBR's spare bits do not count)."""
        from repro.netlist.registers import RegisterView

        return sum(
            RegisterView(c).connected_bit_count
            for c in self.cells.values()
            if c.is_register
        )

    def total_hpwl(self) -> float:
        return sum(net.hpwl() for net in self.nets.values())

    def hpwl_split(self) -> tuple[float, float]:
        """(clock wirelength, other wirelength) — Table 1's two WL columns."""
        clk = sum(n.hpwl() for n in self.nets.values() if n.is_clock)
        other = sum(n.hpwl() for n in self.nets.values() if not n.is_clock)
        return clk, other

    def width_histogram(self) -> dict[int, int]:
        """Register count per bit width — the data behind the paper's Fig. 5."""
        hist: dict[int, int] = {}
        for c in self.cells.values():
            if c.is_register:
                hist[c.width_bits] = hist.get(c.width_bits, 0) + 1
        return dict(sorted(hist.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Design({self.name}: {len(self.cells)} cells, "
            f"{len(self.nets)} nets, {len(self.ports)} ports)"
        )
