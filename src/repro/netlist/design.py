"""The design container: cell/net/port namespaces and editing primitives.

Since the slotted-storage refactor a ``Design`` owns a
:class:`repro.netlist.store.NetlistStore` and its ``cells``/``nets``/``ports``
attributes are read-only mapping views over the store's name tables: lookups
and iteration materialize flyweight :class:`~repro.netlist.db.Cell` /
``Net`` / ``Port`` objects on demand.  All structural edits still go through
the ``Design`` primitives below, which now translate to store operations —
the observable behavior (ordering, notifications, error messages) is
unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import LibCell, PinDirection
from repro.library.library import CellLibrary
from repro.netlist.change import ChangeTracker
from repro.netlist.db import Cell, Net, Pin, Port, Terminal, _DetachedPin
from repro.netlist.store import NO_ID, NetlistStore


class _CellMap(Mapping):
    """Read-only ``name -> Cell`` view over the store's live-cell table."""

    __slots__ = ("_store",)

    def __init__(self, store: NetlistStore) -> None:
        self._store = store

    def __getitem__(self, name: str) -> Cell:
        return self._store.cell_view(self._store.cell_ids[name])

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.cell_ids)

    def __len__(self) -> int:
        return len(self._store.cell_ids)

    def __contains__(self, name) -> bool:
        return name in self._store.cell_ids

    def values(self):
        store = self._store
        return (store.cell_view(cid) for cid in store.cell_ids.values())

    def items(self):
        store = self._store
        return ((name, store.cell_view(cid)) for name, cid in store.cell_ids.items())


class _NetMap(Mapping):
    """Read-only ``name -> Net`` view over the store's live-net table."""

    __slots__ = ("_store",)

    def __init__(self, store: NetlistStore) -> None:
        self._store = store

    def __getitem__(self, name: str) -> Net:
        return self._store.net_view(self._store.net_ids[name])

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.net_ids)

    def __len__(self) -> int:
        return len(self._store.net_ids)

    def __contains__(self, name) -> bool:
        return name in self._store.net_ids

    def values(self):
        store = self._store
        return (store.net_view(nid) for nid in store.net_ids.values())

    def items(self):
        store = self._store
        return ((name, store.net_view(nid)) for name, nid in store.net_ids.items())


class _PortMap(Mapping):
    """Read-only ``name -> Port`` view over the store's port table."""

    __slots__ = ("_store",)

    def __init__(self, store: NetlistStore) -> None:
        self._store = store

    def __getitem__(self, name: str) -> Port:
        return self._store.port_view(self._store.port_ids[name])

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.port_ids)

    def __len__(self) -> int:
        return len(self._store.port_ids)

    def __contains__(self, name) -> bool:
        return name in self._store.port_ids

    def values(self):
        store = self._store
        return (store.port_view(pid) for pid in store.port_ids.values())

    def items(self):
        store = self._store
        return ((name, store.port_view(pid)) for name, pid in store.port_ids.items())


class Design:
    """A placed design: cells, nets, and ports over a cell library.

    All structural edits go through this class so name uniqueness and
    pin/net cross-references stay consistent.  The MBR composition flow
    edits designs exclusively via these primitives (plus
    :func:`repro.netlist.edit.compose_mbr` built on top of them).

    Edits can be observed: ``with design.track() as tracker:`` installs a
    :class:`~repro.netlist.change.ChangeTracker` that every primitive
    notifies, and ``tracker.record()`` yields the
    :class:`~repro.netlist.change.ChangeRecord` the incremental timer
    consumes.  Trackers nest; with none installed the hooks are free.
    """

    def __init__(self, name: str, library: CellLibrary, die: Rect) -> None:
        self.name = name
        self.library = library
        self.die = die
        self.store = NetlistStore()
        self.cells = _CellMap(self.store)
        self.nets = _NetMap(self.store)
        self.ports = _PortMap(self.store)
        self._uniq = 0
        self._trackers: list[ChangeTracker] = []

    # -- change tracking --------------------------------------------------------

    @contextmanager
    def track(self) -> Iterator[ChangeTracker]:
        """Record every edit made inside the ``with`` block."""
        tracker = ChangeTracker()
        self._trackers.append(tracker)
        try:
            yield tracker
        finally:
            self._trackers.remove(tracker)

    def _notify(self, event: str, *args) -> None:
        for tracker in self._trackers:
            getattr(tracker, event)(*args)

    # -- copying ----------------------------------------------------------------

    def clone(self) -> "Design":
        """A deep, independent copy of the design (same library objects).

        Cells, nets (terminal order preserved), ports, placements, and the
        unique-name counter all carry over, so edits replayed on the clone
        generate the same generated names (``mbr_N``, stitch nets) as on the
        original — the property the ECO audit mode relies on to compare an
        incremental recompose against a from-scratch one.

        Copies store-to-store without materializing views, so cloning a
        million-register design costs arrays, not objects.
        """
        other = Design(self.name, self.library, self.die)
        src = self.store
        dst = other.store
        for name, pid in src.port_ids.items():
            dst.new_port(
                name,
                bool(src.port_out[pid]),
                float(src.port_x[pid]),
                float(src.port_y[pid]),
                float(src.port_cap[pid]),
            )
        for name, cid in src.cell_ids.items():
            new_cid = dst.new_cell(
                name,
                src.libs[src.cell_lib[cid]].libcell,
                float(src.cell_x[cid]),
                float(src.cell_y[cid]),
            )
            dst.cell_flags[new_cid] = src.cell_flags[cid]
            attrs = src.cell_attrs.get(cid)
            if attrs:
                dst.cell_attrs[new_cid] = dict(attrs)
        for name, nid in src.net_ids.items():
            new_nid = dst.new_net(name, is_clock=bool(src.net_clock[nid]))
            for tid in src.net_terminal_ids(nid):
                if tid & 1:
                    new_tid = (dst.port_ids[src.port_name[tid >> 1]] << 1) | 1
                else:
                    slot = tid >> 1
                    cid = int(src.pin_cell[slot])
                    offset = slot - int(src.cell_pin0[cid])
                    new_cid = dst.cell_ids[src.cell_name[cid]]
                    new_tid = (int(dst.cell_pin0[new_cid]) + offset) << 1
                dst.link(new_tid, new_nid)
        other._uniq = self._uniq
        return other

    # -- naming ---------------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        """A fresh name with the given prefix (used for composed MBRs)."""
        while True:
            self._uniq += 1
            name = f"{prefix}_{self._uniq}"
            if name not in self.cells and name not in self.nets:
                return name

    # -- cells ------------------------------------------------------------------

    def add_cell(
        self,
        name: str,
        libcell: LibCell | str,
        origin: Point = Point(0.0, 0.0),
        fixed: bool = False,
        dont_touch: bool = False,
    ) -> Cell:
        cid = self.add_cell_raw(
            name, libcell, origin.x, origin.y, fixed=fixed, dont_touch=dont_touch
        )
        return self.store.cell_view(cid)

    def add_cell_raw(
        self,
        name: str,
        libcell: LibCell | str,
        x: float,
        y: float,
        fixed: bool = False,
        dont_touch: bool = False,
    ) -> int:
        """`add_cell` without materializing a view; returns the cell id.

        The bulk-construction path for parsers and generators.  Change
        trackers are still notified (which does materialize the view), so
        the two entry points are observationally identical.
        """
        if name in self.store.cell_ids:
            raise ValueError(f"duplicate cell name {name!r}")
        if isinstance(libcell, str):
            libcell = self.library.cell(libcell)
        cid = self.store.new_cell(name, libcell, x, y, fixed=fixed, dont_touch=dont_touch)
        if self._trackers:
            self._notify("on_add_cell", self.store.cell_view(cid))
        return cid

    def remove_cell(self, cell: Cell | str) -> None:
        """Remove a cell, disconnecting all of its pins."""
        if isinstance(cell, str):
            cell = self.cells[cell]
        store = self.store
        cid = cell._cid
        if self._trackers:
            for pin in list(cell.pins.values()):
                if pin.net is not None:
                    self.disconnect(pin)
        else:
            pin0 = int(store.cell_pin0[cid])
            for slot in range(pin0, pin0 + store.libs[store.cell_lib[cid]].n_pins):
                if store.pin_net[slot] != NO_ID:
                    store.unlink(slot << 1)
        store.free_cell(cid)  # detaches `cell` and any live pin views
        if self._trackers:
            self._notify("on_remove_cell", cell)

    def move_cell(self, cell: Cell | str, origin: Point) -> None:
        """Move a cell, notifying change trackers (pin locations shift, so
        every attached net's wire delays change)."""
        if isinstance(cell, str):
            cell = self.cells[cell]
        if cell.origin == origin:
            return
        cell.move_to(origin)
        if self._trackers:
            self._notify("on_move_cell", cell)

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"design {self.name!r} has no cell {name!r}") from None

    def swap_libcell(self, cell: Cell, new_libcell: LibCell | str) -> None:
        """Re-map a cell to a pin-compatible library cell (sizing).

        Every connected pin of the old cell must exist on the new cell; the
        connections carry over by pin name.  Used by MBR sizing to move
        between drive strengths of the same register family.
        """
        if isinstance(new_libcell, str):
            new_libcell = self.library.cell(new_libcell)
        saved = [(p.name, p.net) for p in cell.pins.values() if p.net is not None]
        for pin_name, _ in saved:
            if not new_libcell.has_pin(pin_name):
                raise ValueError(
                    f"cannot swap {cell.name} to {new_libcell.name}: "
                    f"no pin {pin_name!r} on the new cell"
                )
        for pin in cell.pins.values():
            if pin.net is not None:
                self.disconnect(pin)
        self.store.rebind_pins(cell._cid, new_libcell)
        for pin_name, net in saved:
            self.connect(cell.pin(pin_name), net)
        if self._trackers:
            self._notify("on_swap_libcell", cell)

    # -- nets --------------------------------------------------------------------

    def add_net(self, name: str, is_clock: bool = False) -> Net:
        nid = self.add_net_raw(name, is_clock=is_clock)
        return self.store.net_view(nid)

    def add_net_raw(self, name: str, is_clock: bool = False) -> int:
        """`add_net` without materializing a view; returns the net id."""
        if name in self.store.net_ids:
            raise ValueError(f"duplicate net name {name!r}")
        nid = self.store.new_net(name, is_clock=is_clock)
        if self._trackers:
            self._notify("on_add_net", self.store.net_view(nid))
        return nid

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"design {self.name!r} has no net {name!r}") from None

    def remove_net(self, net: Net | str) -> None:
        """Remove a net; all its terminals become unconnected."""
        if isinstance(net, str):
            net = self.nets[net]
        if self._trackers:
            self._notify("on_remove_net", net)  # terminals still attached
        self.store.free_net(net._nid)  # clears terminal back-refs, detaches view

    # -- ports -------------------------------------------------------------------

    def add_port(
        self,
        name: str,
        direction: PinDirection,
        location: Point,
        cap: float = 0.002,
    ) -> Port:
        pid = self.add_port_raw(
            name, direction is PinDirection.OUTPUT, location.x, location.y, cap
        )
        return self.store.port_view(pid)

    def add_port_raw(
        self, name: str, is_output: bool, x: float, y: float, cap: float = 0.002
    ) -> int:
        """`add_port` without materializing a view; returns the port id."""
        if name in self.store.port_ids:
            raise ValueError(f"duplicate port name {name!r}")
        return self.store.new_port(name, is_output, x, y, cap)

    # -- connectivity ------------------------------------------------------------

    def connect(self, terminal: Terminal, net: Net | str) -> None:
        if isinstance(net, str):
            net = self.nets[net]
        if isinstance(terminal, _DetachedPin):
            raise ValueError("cannot connect a pin of a removed cell")
        current = terminal.net
        if current is net:
            return
        if current is not None:
            self.disconnect(terminal)
        self.store.link(terminal._tid, net._nid)
        if self._trackers:
            self._notify("on_connect", terminal, net)

    def disconnect(self, terminal: Terminal) -> None:
        net = terminal.net  # None for unconnected and for detached pins
        if net is None:
            return
        self.store.unlink(terminal._tid)
        if self._trackers:
            self._notify("on_disconnect", terminal, net)

    # -- views --------------------------------------------------------------------

    def registers(self) -> list[Cell]:
        """All register cells (single-bit flops, latches, and MBRs)."""
        store = self.store
        return [
            store.cell_view(cid)
            for cid in store.cell_ids.values()
            if store.cell_is_register(cid)
        ]

    def iter_terminals(self) -> Iterator[Terminal]:
        for cell in self.cells.values():
            yield from cell.pins.values()
        yield from self.ports.values()

    def clock_nets(self) -> list[Net]:
        store = self.store
        return [
            store.net_view(nid)
            for nid in store.net_ids.values()
            if store.net_clock[nid]
        ]

    # -- aggregate metrics ---------------------------------------------------------

    def total_cell_area(self) -> float:
        store = self.store
        return sum(
            store.libs[store.cell_lib[cid]].libcell.area
            for cid in store.cell_ids.values()
        )

    def total_register_count(self) -> int:
        """Number of register *cells* — each MBR counts as one register,
        matching the paper's Table 1 'Total Regs' convention."""
        store = self.store
        return sum(1 for cid in store.cell_ids.values() if store.cell_is_register(cid))

    def total_register_bits(self) -> int:
        """Number of *connected* register bits — invariant under MBR
        composition (an incomplete MBR's spare bits do not count)."""
        from repro.netlist.registers import RegisterView

        return sum(RegisterView(c).connected_bit_count for c in self.registers())

    def total_hpwl(self) -> float:
        store = self.store
        total = 0.0
        for nid in store.net_ids.values():
            box = store.net_bbox(nid)
            if box is not None:
                total += (box[2] - box[0]) + (box[3] - box[1])
        return total

    def hpwl_split(self) -> tuple[float, float]:
        """(clock wirelength, other wirelength) — Table 1's two WL columns."""
        store = self.store
        clk = 0.0
        other = 0.0
        for nid in store.net_ids.values():
            box = store.net_bbox(nid)
            if box is None:
                continue
            hpwl = (box[2] - box[0]) + (box[3] - box[1])
            if store.net_clock[nid]:
                clk += hpwl
            else:
                other += hpwl
        return clk, other

    def width_histogram(self) -> dict[int, int]:
        """Register count per bit width — the data behind the paper's Fig. 5."""
        store = self.store
        hist: dict[int, int] = {}
        for cid in store.cell_ids.values():
            rec = store.libs[store.cell_lib[cid]]
            if rec.is_register:
                width = rec.libcell.width_bits
                hist[width] = hist.get(width, 0) + 1
        return dict(sorted(hist.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Design({self.name}: {len(self.cells)} cells, "
            f"{len(self.nets)} nets, {len(self.ports)} ports)"
        )
