"""Structural sanity checks over a design.

These are the invariants the composition flow must preserve; the integration
tests run :func:`validate_design` before and after composition to prove the
netlist edits are sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.db import Pin
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    severity: str  # "error" | "warning"
    message: str

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def validate_design(design: Design, allow_incomplete_bits: bool = True) -> list[ValidationIssue]:
    """Check structural invariants; returns a list of issues (empty = clean).

    Errors:
      * a net with more than one driver;
      * a net with sinks but no driver;
      * a register with an unconnected clock pin;
      * a cell placed (even partially) outside the die.

    Warnings:
      * unconnected input pins.  Spare D pins of incomplete MBRs are expected
        and suppressed when ``allow_incomplete_bits`` (Section 3 explicitly
        allows tied-off/disconnected D/Q pairs); everything else is reported.
    """
    issues: list[ValidationIssue] = []

    for net in design.nets.values():
        drivers = [
            t
            for t in net.terminals
            if (isinstance(t, Pin) and t.is_output) or (not isinstance(t, Pin) and t.is_input)
        ]
        if len(drivers) > 1:
            names = ", ".join(d.full_name for d in drivers)
            issues.append(ValidationIssue("error", f"net {net.name} multiply driven: {names}"))
        if not drivers and net.sinks:
            issues.append(ValidationIssue("error", f"net {net.name} has sinks but no driver"))

    for cell in design.cells.values():
        if cell.is_register:
            reg = cell.register_cell
            clk = cell.pin(reg.clock_pin_name)
            if clk.net is None:
                issues.append(
                    ValidationIssue("error", f"register {cell.name} clock pin unconnected")
                )
        if not design.die.contains_rect(cell.footprint):
            issues.append(ValidationIssue("error", f"cell {cell.name} outside the die"))

        for pin in cell.pins.values():
            if pin.is_input and pin.net is None:
                if allow_incomplete_bits and _is_spare_register_input(cell, pin):
                    continue
                issues.append(
                    ValidationIssue("warning", f"input pin {pin.full_name} unconnected")
                )
    return issues


def _is_spare_register_input(cell, pin: Pin) -> bool:
    """Whether an unconnected input is a spare D/SI bit of an incomplete MBR."""
    if not cell.is_register:
        return False
    return pin.name.startswith("D") or pin.name.startswith("SI")


def assert_valid(design: Design) -> None:
    """Raise ``AssertionError`` on the first validation *error*."""
    errors = [i for i in validate_design(design) if i.is_error]
    if errors:
        raise AssertionError(
            f"design {design.name} invalid: " + "; ".join(i.message for i in errors[:10])
        )
