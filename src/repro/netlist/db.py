"""The netlist object model: cells, pins, nets, and top-level ports."""

from __future__ import annotations

from typing import Iterator, Union

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import LibCell, PinDesc, PinDirection, RegisterCell


class Pin:
    """A pin of a placed cell instance.

    A pin's location is the cell origin plus the library pin offset, so pins
    track cell moves automatically.
    """

    __slots__ = ("cell", "desc", "net")

    def __init__(self, cell: "Cell", desc: PinDesc) -> None:
        self.cell = cell
        self.desc = desc
        self.net: "Net | None" = None

    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def full_name(self) -> str:
        return f"{self.cell.name}/{self.desc.name}"

    @property
    def direction(self) -> PinDirection:
        return self.desc.direction

    @property
    def is_input(self) -> bool:
        return self.desc.direction is PinDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.desc.direction is PinDirection.OUTPUT

    @property
    def cap(self) -> float:
        """Input capacitance presented to the driving net (pF)."""
        return self.desc.cap

    @property
    def location(self) -> Point:
        return Point(self.cell.origin.x + self.desc.dx, self.cell.origin.y + self.desc.dy)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pin({self.full_name})"


class Port:
    """A top-level design port.

    Ports behave like pins for STA and wire-length purposes: an *input* port
    drives its net, an *output* port is a timing endpoint.  ``cap`` models
    the off-chip load on output ports.
    """

    __slots__ = ("name", "direction", "location", "net", "cap")

    def __init__(
        self,
        name: str,
        direction: PinDirection,
        location: Point,
        cap: float = 0.002,
    ) -> None:
        self.name = name
        self.direction = direction
        self.location = location
        self.net: "Net | None" = None
        self.cap = cap

    @property
    def full_name(self) -> str:
        return self.name

    @property
    def is_input(self) -> bool:
        """True when the port is a design input, i.e. it *drives* its net."""
        return self.direction is PinDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is PinDirection.OUTPUT

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.name})"


Terminal = Union[Pin, Port]


class Net:
    """A signal net connecting one driver terminal to sink terminals."""

    __slots__ = ("name", "terminals", "is_clock")

    def __init__(self, name: str, is_clock: bool = False) -> None:
        self.name = name
        self.terminals: list[Terminal] = []
        self.is_clock = is_clock

    @property
    def driver(self) -> Terminal | None:
        """The unique driving terminal: an output pin or an input port."""
        for t in self.terminals:
            if isinstance(t, Pin) and t.is_output:
                return t
            if isinstance(t, Port) and t.is_input:
                return t
        return None

    @property
    def sinks(self) -> list[Terminal]:
        """All driven terminals: input pins and output ports."""
        out: list[Terminal] = []
        for t in self.terminals:
            if isinstance(t, Pin) and t.is_input:
                out.append(t)
            elif isinstance(t, Port) and t.is_output:
                out.append(t)
        return out

    @property
    def num_pins(self) -> int:
        return len(self.terminals)

    def sink_cap(self) -> float:
        """Total input-pin capacitance hanging on the net (pF)."""
        return sum(t.cap for t in self.sinks)

    def bbox(self, exclude: Terminal | None = None) -> Rect | None:
        """Bounding box of the net's terminal locations.

        ``exclude`` removes one terminal — Section 4.2 builds, for each MBR
        pin, the box of the *other* terminals of its net, then optimizes the
        MBR location against those boxes.  Returns ``None`` when no terminal
        remains.
        """
        points = [t.location for t in self.terminals if t is not exclude]
        if not points:
            return None
        return Rect.from_points(points)

    def hpwl(self) -> float:
        """Half-perimeter wire length of the net (0 for degenerate nets)."""
        box = self.bbox()
        return box.half_perimeter if box is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name}, {self.num_pins} pins)"


class Cell:
    """A placed cell instance.

    ``fixed`` marks cells the placer must not move (pads, macros, pinned
    registers); ``dont_touch`` marks registers the designer excluded from
    restructuring — Section 2 notes such "fixed or size-only" registers
    cannot be composed.
    """

    __slots__ = ("name", "libcell", "origin", "fixed", "dont_touch", "pins", "attrs")

    def __init__(
        self,
        name: str,
        libcell: LibCell,
        origin: Point = Point(0.0, 0.0),
        fixed: bool = False,
        dont_touch: bool = False,
    ) -> None:
        self.name = name
        self.libcell = libcell
        self.origin = origin
        self.fixed = fixed
        self.dont_touch = dont_touch
        self.pins: dict[str, Pin] = {d.name: Pin(self, d) for d in libcell.pins}
        self.attrs: dict[str, object] = {}

    # -- identity ------------------------------------------------------------

    @property
    def is_register(self) -> bool:
        return isinstance(self.libcell, RegisterCell)

    @property
    def register_cell(self) -> RegisterCell:
        if not isinstance(self.libcell, RegisterCell):
            raise TypeError(f"{self.name} is not a register")
        return self.libcell

    @property
    def width_bits(self) -> int:
        """Bit width: register bit count, 0 for non-registers."""
        return self.libcell.width_bits if isinstance(self.libcell, RegisterCell) else 0

    # -- geometry --------------------------------------------------------------

    @property
    def footprint(self) -> Rect:
        return Rect(
            self.origin.x,
            self.origin.y,
            self.origin.x + self.libcell.width,
            self.origin.y + self.libcell.height,
        )

    @property
    def center(self) -> Point:
        return Point(
            self.origin.x + self.libcell.width / 2.0,
            self.origin.y + self.libcell.height / 2.0,
        )

    def move_to(self, origin: Point) -> None:
        if self.fixed:
            raise ValueError(f"cell {self.name} is fixed and cannot move")
        self.origin = origin

    # -- connectivity ------------------------------------------------------------

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"cell {self.name} ({self.libcell.name}) has no pin {name!r}") from None

    def connected_pins(self) -> Iterator[Pin]:
        return (p for p in self.pins.values() if p.net is not None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.name}:{self.libcell.name})"
