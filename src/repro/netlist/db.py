"""The netlist object model: cells, pins, nets, and top-level ports.

Since the slotted-storage refactor these classes are *flyweight views* over
a :class:`repro.netlist.store.NetlistStore`: each instance holds only the
store reference plus an integer id, and every attribute read/write goes to
the store's columns.  Views are canonical — the store hands out at most one
live view per entity — so identity (``is``), hashing, and equality behave
exactly like the old one-object-per-entity model, and they are created
lazily, so a million-cell design only pays for the objects someone is
currently looking at.

Views are created by the store (via :class:`~repro.netlist.design.Design`
lookups and iteration), never constructed directly.

When an entity dies (cell removed, net removed, pins replaced by a libcell
swap) its live views are *detached*: the final state is snapshotted into the
view and the class is switched to a ``_Detached*`` twin, so stale references
keep reading the values the old model's orphaned objects kept — and never
touch store slots that may since have been recycled to new entities.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.library.cells import LibCell, PinDesc, PinDirection, RegisterCell
from repro.netlist.store import DONT_TOUCH, FIXED, NO_ID, NetlistStore


class Pin:
    """A pin of a placed cell instance.

    A pin's location is the cell origin plus the library pin offset, so pins
    track cell moves automatically.
    """

    __slots__ = ("_store", "_slot", "cell", "desc", "_dead", "__weakref__")

    _store: NetlistStore
    _slot: int
    cell: "Cell"
    desc: PinDesc

    @property
    def _tid(self) -> int:
        return self._slot << 1

    @property
    def name(self) -> str:
        return self.desc.name

    @property
    def full_name(self) -> str:
        return f"{self.cell.name}/{self.desc.name}"

    @property
    def direction(self) -> PinDirection:
        return self.desc.direction

    @property
    def is_input(self) -> bool:
        return self.desc.direction is PinDirection.INPUT

    @property
    def is_output(self) -> bool:
        return self.desc.direction is PinDirection.OUTPUT

    @property
    def cap(self) -> float:
        """Input capacitance presented to the driving net (pF)."""
        return self.desc.cap

    @property
    def net(self) -> "Net | None":
        nid = self._store.pin_net[self._slot]
        return self._store.net_view(int(nid)) if nid != NO_ID else None

    @property
    def location(self) -> Point:
        origin = self.cell.origin
        return Point(origin.x + self.desc.dx, origin.y + self.desc.dy)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pin({self.full_name})"


class _DetachedPin(Pin):
    """A pin of a removed (or libcell-swapped) cell: permanently unconnected."""

    __slots__ = ()

    @property
    def net(self) -> "Net | None":
        return None


class Port:
    """A top-level design port.

    Ports behave like pins for STA and wire-length purposes: an *input* port
    drives its net, an *output* port is a timing endpoint.  ``cap`` models
    the off-chip load on output ports.  Ports are never removed, so they
    have no detached twin.
    """

    __slots__ = ("_store", "_pid", "name", "__weakref__")

    _store: NetlistStore
    _pid: int
    name: str

    @property
    def _tid(self) -> int:
        return (self._pid << 1) | 1

    @property
    def direction(self) -> PinDirection:
        return PinDirection.OUTPUT if self._store.port_out[self._pid] else PinDirection.INPUT

    @property
    def location(self) -> Point:
        s = self._store
        return Point(float(s.port_x[self._pid]), float(s.port_y[self._pid]))

    @location.setter
    def location(self, value: Point) -> None:
        self._store.port_x[self._pid] = value.x
        self._store.port_y[self._pid] = value.y

    @property
    def cap(self) -> float:
        return float(self._store.port_cap[self._pid])

    @cap.setter
    def cap(self, value: float) -> None:
        self._store.port_cap[self._pid] = value

    @property
    def net(self) -> "Net | None":
        nid = self._store.port_net[self._pid]
        return self._store.net_view(int(nid)) if nid != NO_ID else None

    @property
    def full_name(self) -> str:
        return self.name

    @property
    def is_input(self) -> bool:
        """True when the port is a design input, i.e. it *drives* its net."""
        return not self._store.port_out[self._pid]

    @property
    def is_output(self) -> bool:
        return bool(self._store.port_out[self._pid])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.name})"


Terminal = Union[Pin, Port]


class Net:
    """A signal net connecting one driver terminal to sink terminals."""

    __slots__ = ("_store", "_nid", "name", "is_clock", "_dead", "__weakref__")

    _store: NetlistStore
    _nid: int
    name: str
    is_clock: bool

    @property
    def terminals(self) -> list[Terminal]:
        """The net's terminals in connection order (a fresh list)."""
        s = self._store
        return [s.terminal_view(tid) for tid in s.net_terminal_ids(self._nid)]

    @property
    def driver(self) -> Terminal | None:
        """The unique driving terminal: an output pin or an input port."""
        for t in self.terminals:
            if isinstance(t, Pin) and t.is_output:
                return t
            if isinstance(t, Port) and t.is_input:
                return t
        return None

    @property
    def sinks(self) -> list[Terminal]:
        """All driven terminals: input pins and output ports."""
        out: list[Terminal] = []
        for t in self.terminals:
            if isinstance(t, Pin) and t.is_input:
                out.append(t)
            elif isinstance(t, Port) and t.is_output:
                out.append(t)
        return out

    @property
    def num_pins(self) -> int:
        return int(self._store.net_count[self._nid])

    def sink_cap(self) -> float:
        """Total input-pin capacitance hanging on the net (pF)."""
        return sum(t.cap for t in self.sinks)

    def bbox(self, exclude: Terminal | None = None) -> Rect | None:
        """Bounding box of the net's terminal locations.

        ``exclude`` removes one terminal — Section 4.2 builds, for each MBR
        pin, the box of the *other* terminals of its net, then optimizes the
        MBR location against those boxes.  Returns ``None`` when no terminal
        remains.
        """
        box = self._store.net_bbox(
            self._nid, exclude._tid if exclude is not None else NO_ID
        )
        if box is None:
            return None
        return Rect(*box)

    def hpwl(self) -> float:
        """Half-perimeter wire length of the net (0 for degenerate nets)."""
        box = self.bbox()
        return box.half_perimeter if box is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Net({self.name}, {self.num_pins} pins)"


class _DetachedNet(Net):
    """A removed net: keeps the terminal list it died with."""

    __slots__ = ()

    @property
    def terminals(self) -> list[Terminal]:
        return self._dead

    @property
    def num_pins(self) -> int:
        return len(self._dead)

    def bbox(self, exclude: Terminal | None = None) -> Rect | None:
        points = [t.location for t in self._dead if t is not exclude]
        if not points:
            return None
        return Rect.from_points(points)


class Cell:
    """A placed cell instance.

    ``fixed`` marks cells the placer must not move (pads, macros, pinned
    registers); ``dont_touch`` marks registers the designer excluded from
    restructuring — Section 2 notes such "fixed or size-only" registers
    cannot be composed.
    """

    __slots__ = ("_store", "_cid", "name", "_pins", "_dead", "__weakref__")

    _store: NetlistStore
    _cid: int
    name: str

    # -- identity ------------------------------------------------------------

    @property
    def libcell(self) -> LibCell:
        s = self._store
        return s.libs[s.cell_lib[self._cid]].libcell

    @property
    def is_register(self) -> bool:
        s = self._store
        return s.libs[s.cell_lib[self._cid]].is_register

    @property
    def register_cell(self) -> RegisterCell:
        libcell = self.libcell
        if not isinstance(libcell, RegisterCell):
            raise TypeError(f"{self.name} is not a register")
        return libcell

    @property
    def width_bits(self) -> int:
        """Bit width: register bit count, 0 for non-registers."""
        libcell = self.libcell
        return libcell.width_bits if isinstance(libcell, RegisterCell) else 0

    @property
    def attrs(self) -> dict:
        s = self._store
        attrs = s.cell_attrs.get(self._cid)
        if attrs is None:
            attrs = s.cell_attrs[self._cid] = {}
        return attrs

    @attrs.setter
    def attrs(self, value: dict) -> None:
        self._store.cell_attrs[self._cid] = value

    # -- geometry --------------------------------------------------------------

    @property
    def origin(self) -> Point:
        s = self._store
        return Point(float(s.cell_x[self._cid]), float(s.cell_y[self._cid]))

    @origin.setter
    def origin(self, value: Point) -> None:
        self._store.cell_x[self._cid] = value.x
        self._store.cell_y[self._cid] = value.y

    @property
    def fixed(self) -> bool:
        return bool(self._store.cell_flags[self._cid] & FIXED)

    @fixed.setter
    def fixed(self, value: bool) -> None:
        if value:
            self._store.cell_flags[self._cid] |= FIXED
        else:
            self._store.cell_flags[self._cid] &= ~FIXED & 0xFF

    @property
    def dont_touch(self) -> bool:
        return bool(self._store.cell_flags[self._cid] & DONT_TOUCH)

    @dont_touch.setter
    def dont_touch(self, value: bool) -> None:
        if value:
            self._store.cell_flags[self._cid] |= DONT_TOUCH
        else:
            self._store.cell_flags[self._cid] &= ~DONT_TOUCH & 0xFF

    @property
    def footprint(self) -> Rect:
        origin = self.origin
        libcell = self.libcell
        return Rect(
            origin.x,
            origin.y,
            origin.x + libcell.width,
            origin.y + libcell.height,
        )

    @property
    def center(self) -> Point:
        origin = self.origin
        libcell = self.libcell
        return Point(
            origin.x + libcell.width / 2.0,
            origin.y + libcell.height / 2.0,
        )

    def move_to(self, origin: Point) -> None:
        if self.fixed:
            raise ValueError(f"cell {self.name} is fixed and cannot move")
        self.origin = origin

    # -- connectivity ------------------------------------------------------------

    @property
    def pins(self) -> dict[str, Pin]:
        """Pin views by name, in library pin order (cached per view)."""
        pins = self._pins
        if pins is None:
            s = self._store
            base = int(s.cell_pin0[self._cid])
            rec = s.libs[s.cell_lib[self._cid]]
            pins = self._pins = {
                d.name: s.pin_view(base + i, cell=self, desc=d)
                for i, d in enumerate(rec.pins)
            }
        return pins

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"cell {self.name} ({self.libcell.name}) has no pin {name!r}") from None

    def connected_pins(self) -> Iterator[Pin]:
        return (p for p in self.pins.values() if p.net is not None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cell({self.name}:{self.libcell.name})"


class _DetachedCell(Cell):
    """A removed cell: keeps the state it died with (all pins unconnected)."""

    __slots__ = ()

    # _dead = (libcell, x, y, flags, pins, attrs)

    @property
    def libcell(self) -> LibCell:
        return self._dead[0]

    @property
    def is_register(self) -> bool:
        return isinstance(self._dead[0], RegisterCell)

    @property
    def origin(self) -> Point:
        return Point(self._dead[1], self._dead[2])

    @property
    def fixed(self) -> bool:
        return bool(self._dead[3] & FIXED)

    @property
    def dont_touch(self) -> bool:
        return bool(self._dead[3] & DONT_TOUCH)

    @property
    def pins(self) -> dict[str, Pin]:
        return self._dead[4]

    @property
    def attrs(self) -> dict:
        return self._dead[5]
