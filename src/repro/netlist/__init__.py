"""Netlist database: cells, pins, nets, ports, and netlist editing.

This is the in-memory design representation every other substrate works on:
placement annotates cell origins, STA walks pins and nets, the composition
engine rewires registers into MBRs through :mod:`repro.netlist.edit`.
"""

from repro.netlist.change import ChangeRecord, ChangeTracker
from repro.netlist.db import Cell, Net, Pin, Port
from repro.netlist.design import Design
from repro.netlist.registers import RegisterBit, RegisterView
from repro.netlist.edit import ComposeError, compose_mbr
from repro.netlist.validate import ValidationIssue, validate_design

__all__ = [
    "Cell",
    "ChangeRecord",
    "ChangeTracker",
    "Net",
    "Pin",
    "Port",
    "Design",
    "RegisterBit",
    "RegisterView",
    "ComposeError",
    "compose_mbr",
    "ValidationIssue",
    "validate_design",
]
