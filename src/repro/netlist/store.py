"""Slotted array-of-struct storage backing the netlist object model.

`NetlistStore` keeps every cell, pin, net, and port of a design in flat
columns — interned name tables, integer ids, numpy-backed origin/flag/libcell
columns, and linked-list terminal connectivity — instead of one Python object
per entity.  The classes in :mod:`repro.netlist.db` (`Cell`, `Net`, `Pin`,
`Port`) are thin flyweight *views* over these columns: at most one live view
exists per entity (a per-store weak cache canonicalizes them), so object
identity, hashing, and ``is`` comparisons behave exactly as they did when the
views owned their data.

Why: per-instance objects with dict fan-out cap the repo at paper-scale
inputs.  At 10^6 registers a design holds tens of millions of pins; at ~200
bytes per Python object plus per-cell pin dicts that is tens of gigabytes.
The slotted columns bring steady-state storage down to a few dozen bytes per
pin, and views are only materialized while someone is looking at them.

Layout summary (all ids are dense ints; dead slots go to free-lists):

* cells   — ``name``, ``libcell id``, ``x``, ``y``, ``flags`` (fixed /
  dont_touch), ``pin0`` (first pin slot); a cell's pins occupy the
  contiguous block ``[pin0, pin0 + len(libcell.pins))`` in pin order.
* pins    — ``net id`` (-1 unconnected), ``owner cell id``, ``next``
  terminal in the net's ordered list.
* nets    — ``name``, ``is_clock`` flag, ``head``/``tail`` terminal ids and
  a terminal count; terminals form a singly linked list in *connection
  order* (appends at the tail), preserving the terminal ordering the old
  per-net Python lists had.
* ports   — ``name``, direction, location, cap, ``net id``, ``next``.

Terminal ids ("tid") encode pins and ports uniformly:
``tid = pin_slot << 1`` for pins, ``tid = (port_id << 1) | 1`` for ports.

Library cells are interned once per store (`LibRecord`): the pin-descriptor
tuple, a ``pin name -> index`` map, and an ``is_register`` flag are resolved
a single time instead of per instance — parsers and hot paths look pins up
by integer index.

Deletion discipline: freed cell/pin/net slots are recycled, so a stale view
must never read the store again after its entity dies.  `free_cell`,
`free_net`, and `rebind_pins` therefore *detach* any live cached views
(snapshotting their final state into the view, exactly the state the old
detached objects kept) and evict them from the weak cache before the slots
return to the free-lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator
from weakref import WeakValueDictionary

import numpy as np

from repro.library.cells import LibCell, PinDesc, RegisterCell

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (db imports nothing
    from repro.netlist.db import Cell, Net, Pin, Port  # from this module)

NO_ID = -1

# cell_flags bits
FIXED = 1
DONT_TOUCH = 2


class LibRecord:
    """Per-store interned data of one library cell.

    Resolving pin descriptors and the name->index map once per library cell
    (not once per instance, and not once per lookup) is what makes slotted
    pin blocks possible: a pin is identified by ``(cell id, desc index)``.
    """

    __slots__ = ("libcell", "pins", "pin_index", "n_pins", "is_register")

    def __init__(self, libcell: LibCell) -> None:
        self.libcell = libcell
        self.pins: tuple[PinDesc, ...] = libcell.pins
        self.pin_index: dict[str, int] = {d.name: i for i, d in enumerate(libcell.pins)}
        self.n_pins = len(libcell.pins)
        self.is_register = isinstance(libcell, RegisterCell)


def _grow(arr: np.ndarray, need: int, fill) -> np.ndarray:
    """Amortized-doubling growth for a column (returns the new array)."""
    cap = len(arr)
    if need <= cap:
        return arr
    out = np.full(max(need, cap * 2, 64), fill, arr.dtype)
    out[:cap] = arr
    return out


class NetlistStore:
    """Columnar storage for one design's cells, pins, nets, and ports."""

    def __init__(self) -> None:
        # -- library interning ------------------------------------------------
        self._lib_by_obj: dict[int, int] = {}  # id(libcell) -> lid
        self.libs: list[LibRecord] = []

        # -- cells ------------------------------------------------------------
        self.cell_ids: dict[str, int] = {}  # live cells, insertion-ordered
        self.cell_name: list[str | None] = []
        self.cell_lib = np.empty(0, np.int32)
        self.cell_x = np.empty(0, np.float64)
        self.cell_y = np.empty(0, np.float64)
        self.cell_flags = np.empty(0, np.uint8)
        self.cell_pin0 = np.empty(0, np.int64)
        self.cell_attrs: dict[int, dict] = {}  # sparse: most cells carry none
        self._cell_free: list[int] = []

        # -- pins -------------------------------------------------------------
        self.pin_net = np.empty(0, np.int64)
        self.pin_cell = np.empty(0, np.int64)
        self.pin_next = np.empty(0, np.int64)  # tid of next terminal on net
        self.pin_prev = np.empty(0, np.int64)  # tid of previous terminal on net
        self._pin_free: dict[int, list[int]] = {}  # block size -> block starts
        self._pin_top = 0

        # -- nets -------------------------------------------------------------
        self.net_ids: dict[str, int] = {}
        self.net_name: list[str | None] = []
        self.net_clock = np.empty(0, np.uint8)
        self.net_head = np.empty(0, np.int64)
        self.net_tail = np.empty(0, np.int64)
        self.net_count = np.empty(0, np.int64)
        self._net_free: list[int] = []

        # -- ports (never deleted) -------------------------------------------
        self.port_ids: dict[str, int] = {}
        self.port_name: list[str] = []
        self.port_out = np.empty(0, np.uint8)  # 1 = design output
        self.port_x = np.empty(0, np.float64)
        self.port_y = np.empty(0, np.float64)
        self.port_cap = np.empty(0, np.float64)
        self.port_net = np.empty(0, np.int64)
        self.port_next = np.empty(0, np.int64)
        self.port_prev = np.empty(0, np.int64)

        # -- canonical flyweight views ---------------------------------------
        self._cell_views: WeakValueDictionary[int, "Cell"] = WeakValueDictionary()
        self._pin_views: WeakValueDictionary[int, "Pin"] = WeakValueDictionary()
        self._net_views: WeakValueDictionary[int, "Net"] = WeakValueDictionary()
        self._port_views: WeakValueDictionary[int, "Port"] = WeakValueDictionary()

    # -- library interning ----------------------------------------------------

    def intern_libcell(self, libcell: LibCell) -> int:
        lid = self._lib_by_obj.get(id(libcell))
        if lid is None:
            lid = len(self.libs)
            self.libs.append(LibRecord(libcell))
            self._lib_by_obj[id(libcell)] = lid
        return lid

    # -- cells ----------------------------------------------------------------

    def new_cell(
        self,
        name: str,
        libcell: LibCell,
        x: float,
        y: float,
        fixed: bool = False,
        dont_touch: bool = False,
    ) -> int:
        """Allocate a cell slot plus its contiguous pin block; returns cid."""
        lid = self.intern_libcell(libcell)
        n_pins = self.libs[lid].n_pins
        if self._cell_free:
            cid = self._cell_free.pop()
        else:
            cid = len(self.cell_name)
            self.cell_name.append(None)
            need = cid + 1
            self.cell_lib = _grow(self.cell_lib, need, 0)
            self.cell_x = _grow(self.cell_x, need, 0.0)
            self.cell_y = _grow(self.cell_y, need, 0.0)
            self.cell_flags = _grow(self.cell_flags, need, 0)
            self.cell_pin0 = _grow(self.cell_pin0, need, NO_ID)
        pin0 = self._alloc_pin_block(n_pins, cid)
        self.cell_name[cid] = name
        self.cell_ids[name] = cid
        self.cell_lib[cid] = lid
        self.cell_x[cid] = x
        self.cell_y[cid] = y
        self.cell_flags[cid] = (FIXED if fixed else 0) | (DONT_TOUCH if dont_touch else 0)
        self.cell_pin0[cid] = pin0
        return cid

    def _alloc_pin_block(self, n_pins: int, cid: int) -> int:
        if n_pins == 0:
            return 0
        blocks = self._pin_free.get(n_pins)
        if blocks:
            pin0 = blocks.pop()
        else:
            pin0 = self._pin_top
            self._pin_top += n_pins
            need = self._pin_top
            self.pin_net = _grow(self.pin_net, need, NO_ID)
            self.pin_cell = _grow(self.pin_cell, need, NO_ID)
            self.pin_next = _grow(self.pin_next, need, NO_ID)
            self.pin_prev = _grow(self.pin_prev, need, NO_ID)
        self.pin_net[pin0 : pin0 + n_pins] = NO_ID
        self.pin_next[pin0 : pin0 + n_pins] = NO_ID
        self.pin_prev[pin0 : pin0 + n_pins] = NO_ID
        self.pin_cell[pin0 : pin0 + n_pins] = cid
        return pin0

    def free_cell(self, cid: int) -> None:
        """Retire a cell: detach live views, recycle its slot and pin block.

        The caller (``Design.remove_cell``) must already have disconnected
        every pin, so detached pin views correctly read as unconnected.
        """
        rec = self.libs[self.cell_lib[cid]]
        pin0 = int(self.cell_pin0[cid])
        self._detach_cell_views(cid, pin0, rec)
        name = self.cell_name[cid]
        del self.cell_ids[name]
        self.cell_name[cid] = None
        self.cell_attrs.pop(cid, None)
        if rec.n_pins:
            self._pin_free.setdefault(rec.n_pins, []).append(pin0)
        self.cell_pin0[cid] = NO_ID
        self._cell_free.append(cid)

    def rebind_pins(self, cid: int, new_libcell: LibCell) -> None:
        """Swap a cell to a new library cell: fresh pin block, old one freed.

        Mirrors the old model, where a libcell swap replaced every `Pin`
        object: stale pin views are detached (they read as unconnected — the
        caller disconnects them first) and new pin slots are allocated.
        """
        old_rec = self.libs[self.cell_lib[cid]]
        old_pin0 = int(self.cell_pin0[cid])
        self._detach_pin_views(old_pin0, old_rec.n_pins)
        cell = self._cell_views.get(cid)
        if cell is not None:
            cell._pins = None  # cached pin map points at the dead block
        if old_rec.n_pins:
            self._pin_free.setdefault(old_rec.n_pins, []).append(old_pin0)
        lid = self.intern_libcell(new_libcell)
        self.cell_lib[cid] = lid
        self.cell_pin0[cid] = self._alloc_pin_block(self.libs[lid].n_pins, cid)

    # -- nets -----------------------------------------------------------------

    def new_net(self, name: str, is_clock: bool = False) -> int:
        if self._net_free:
            nid = self._net_free.pop()
        else:
            nid = len(self.net_name)
            self.net_name.append(None)
            need = nid + 1
            self.net_clock = _grow(self.net_clock, need, 0)
            self.net_head = _grow(self.net_head, need, NO_ID)
            self.net_tail = _grow(self.net_tail, need, NO_ID)
            self.net_count = _grow(self.net_count, need, 0)
        self.net_name[nid] = name
        self.net_ids[name] = nid
        self.net_clock[nid] = 1 if is_clock else 0
        self.net_head[nid] = NO_ID
        self.net_tail[nid] = NO_ID
        self.net_count[nid] = 0
        return nid

    def free_net(self, nid: int) -> None:
        """Retire a net, clearing every terminal's net reference first."""
        self._detach_net_view(nid)
        tid = int(self.net_head[nid])
        while tid != NO_ID:
            nxt = self._get_next(tid)
            self._set_terminal_net(tid, NO_ID)
            self._set_next(tid, NO_ID)
            self._set_prev(tid, NO_ID)
            tid = nxt
        name = self.net_name[nid]
        del self.net_ids[name]
        self.net_name[nid] = None
        self.net_head[nid] = NO_ID
        self.net_tail[nid] = NO_ID
        self.net_count[nid] = 0
        self._net_free.append(nid)

    # -- ports ----------------------------------------------------------------

    def new_port(self, name: str, is_output: bool, x: float, y: float, cap: float) -> int:
        pid = len(self.port_name)
        self.port_name.append(name)
        self.port_ids[name] = pid
        need = pid + 1
        self.port_out = _grow(self.port_out, need, 0)
        self.port_x = _grow(self.port_x, need, 0.0)
        self.port_y = _grow(self.port_y, need, 0.0)
        self.port_cap = _grow(self.port_cap, need, 0.0)
        self.port_net = _grow(self.port_net, need, NO_ID)
        self.port_next = _grow(self.port_next, need, NO_ID)
        self.port_prev = _grow(self.port_prev, need, NO_ID)
        self.port_out[pid] = 1 if is_output else 0
        self.port_x[pid] = x
        self.port_y[pid] = y
        self.port_cap[pid] = cap
        return pid

    # -- terminal connectivity ------------------------------------------------
    # tid = pin_slot << 1  |  (port_id << 1) | 1

    def _get_next(self, tid: int) -> int:
        if tid & 1:
            return int(self.port_next[tid >> 1])
        return int(self.pin_next[tid >> 1])

    def _set_next(self, tid: int, value: int) -> None:
        if tid & 1:
            self.port_next[tid >> 1] = value
        else:
            self.pin_next[tid >> 1] = value

    def _get_prev(self, tid: int) -> int:
        if tid & 1:
            return int(self.port_prev[tid >> 1])
        return int(self.pin_prev[tid >> 1])

    def _set_prev(self, tid: int, value: int) -> None:
        if tid & 1:
            self.port_prev[tid >> 1] = value
        else:
            self.pin_prev[tid >> 1] = value

    def terminal_net(self, tid: int) -> int:
        if tid & 1:
            return int(self.port_net[tid >> 1])
        return int(self.pin_net[tid >> 1])

    def _set_terminal_net(self, tid: int, nid: int) -> None:
        if tid & 1:
            self.port_net[tid >> 1] = nid
        else:
            self.pin_net[tid >> 1] = nid

    def link(self, tid: int, nid: int) -> None:
        """Append a terminal to a net's ordered terminal list.

        The caller guarantees the terminal is currently unconnected
        (``Design.connect`` disconnects first), so appending at the tail
        reproduces the old ``list.append`` ordering exactly.
        """
        tail = int(self.net_tail[nid])
        if tail == NO_ID:
            self.net_head[nid] = tid
        else:
            self._set_next(tail, tid)
        self.net_tail[nid] = tid
        self._set_next(tid, NO_ID)
        self._set_prev(tid, tail)
        self._set_terminal_net(tid, nid)
        self.net_count[nid] += 1

    def unlink(self, tid: int) -> None:
        """Remove a terminal from its net's list (no-op when unconnected).

        O(1): the terminal list is doubly linked, so disconnecting one CK
        pin from a clock net with 10⁵ sinks costs the same as from a
        two-terminal data net — the difference between a linear and a
        quadratic composition pass on clock-dense designs.
        """
        nid = self.terminal_net(tid)
        if nid == NO_ID:
            return
        prev = self._get_prev(tid)
        nxt = self._get_next(tid)
        if prev == NO_ID:
            self.net_head[nid] = nxt
        else:
            self._set_next(prev, nxt)
        if nxt == NO_ID:
            self.net_tail[nid] = prev
        else:
            self._set_prev(nxt, prev)
        self._set_next(tid, NO_ID)
        self._set_prev(tid, NO_ID)
        self._set_terminal_net(tid, NO_ID)
        self.net_count[nid] -= 1

    def net_terminal_ids(self, nid: int) -> Iterator[int]:
        """Terminal ids of a net in connection order."""
        tid = int(self.net_head[nid])
        while tid != NO_ID:
            yield tid
            tid = self._get_next(tid)

    def terminal_xy(self, tid: int) -> tuple[float, float]:
        """A terminal's location without materializing a view."""
        if tid & 1:
            pid = tid >> 1
            return float(self.port_x[pid]), float(self.port_y[pid])
        slot = tid >> 1
        cid = int(self.pin_cell[slot])
        desc = self.libs[self.cell_lib[cid]].pins[slot - int(self.cell_pin0[cid])]
        return float(self.cell_x[cid]) + desc.dx, float(self.cell_y[cid]) + desc.dy

    def net_bbox(self, nid: int, exclude_tid: int = NO_ID):
        """Terminal bounding box ``(xlo, ylo, xhi, yhi)``; None when empty."""
        xlo = ylo = np.inf
        xhi = yhi = -np.inf
        seen = False
        for tid in self.net_terminal_ids(nid):
            if tid == exclude_tid:
                continue
            x, y = self.terminal_xy(tid)
            seen = True
            if x < xlo:
                xlo = x
            if x > xhi:
                xhi = x
            if y < ylo:
                ylo = y
            if y > yhi:
                yhi = y
        if not seen:
            return None
        return xlo, ylo, xhi, yhi

    # -- views ----------------------------------------------------------------

    def cell_view(self, cid: int) -> "Cell":
        view = self._cell_views.get(cid)
        if view is not None:
            return view
        from repro.netlist.db import Cell

        view = Cell.__new__(Cell)
        view._store = self
        view._cid = cid
        view.name = self.cell_name[cid]
        view._pins = None
        view._dead = None
        self._cell_views[cid] = view
        return view

    def pin_view(self, slot: int, cell: "Cell | None" = None, desc: PinDesc | None = None) -> "Pin":
        view = self._pin_views.get(slot)
        if view is not None:
            return view
        from repro.netlist.db import Pin

        if cell is None:
            cell = self.cell_view(int(self.pin_cell[slot]))
        if desc is None:
            rec = self.libs[self.cell_lib[cell._cid]]
            desc = rec.pins[slot - int(self.cell_pin0[cell._cid])]
        view = Pin.__new__(Pin)
        view._store = self
        view._slot = slot
        view.cell = cell
        view.desc = desc
        view._dead = None
        self._pin_views[slot] = view
        return view

    def net_view(self, nid: int) -> "Net":
        view = self._net_views.get(nid)
        if view is not None:
            return view
        from repro.netlist.db import Net

        view = Net.__new__(Net)
        view._store = self
        view._nid = nid
        view.name = self.net_name[nid]
        view.is_clock = bool(self.net_clock[nid])
        view._dead = None
        self._net_views[nid] = view
        return view

    def port_view(self, pid: int) -> "Port":
        view = self._port_views.get(pid)
        if view is not None:
            return view
        from repro.netlist.db import Port

        view = Port.__new__(Port)
        view._store = self
        view._pid = pid
        view.name = self.port_name[pid]
        self._port_views[pid] = view
        return view

    # -- detach (stale-view safety) -------------------------------------------

    def _detach_pin_views(self, pin0: int, n_pins: int) -> None:
        from repro.netlist.db import _DetachedPin

        for slot in range(pin0, pin0 + n_pins):
            view = self._pin_views.get(slot)
            if view is not None:
                view.__class__ = _DetachedPin
                del self._pin_views[slot]

    def _detach_cell_views(self, cid: int, pin0: int, rec: LibRecord) -> None:
        from repro.netlist.db import _DetachedCell

        view = self._cell_views.get(cid)
        if view is not None:
            # Materialize the pin map while the cell is still live: a
            # detached cell keeps (dead) pin views, just like removed cells
            # kept their Pin objects.  The fresh views enter the cache and
            # are converted by the detach pass below.
            pins = view.pins
        self._detach_pin_views(pin0, rec.n_pins)
        if view is not None:
            view._dead = (
                rec.libcell,
                float(self.cell_x[cid]),
                float(self.cell_y[cid]),
                int(self.cell_flags[cid]),
                pins,
                self.cell_attrs.get(cid, {}),
            )
            view.__class__ = _DetachedCell
            del self._cell_views[cid]

    def _detach_net_view(self, nid: int) -> None:
        from repro.netlist.db import _DetachedNet

        view = self._net_views.get(nid)
        if view is not None:
            # Removed nets kept their terminal list in the old model; the
            # change tracker reads it during the removal notification.
            view._dead = [self.terminal_view(tid) for tid in self.net_terminal_ids(nid)]
            view.__class__ = _DetachedNet
            del self._net_views[nid]

    def terminal_view(self, tid: int):
        if tid & 1:
            return self.port_view(tid >> 1)
        return self.pin_view(tid >> 1)

    # -- aggregate helpers ----------------------------------------------------

    def live_cell_ids(self) -> Iterator[int]:
        return iter(self.cell_ids.values())

    def cell_is_register(self, cid: int) -> bool:
        return self.libs[self.cell_lib[cid]].is_register

    @property
    def num_cells(self) -> int:
        return len(self.cell_ids)

    @property
    def num_nets(self) -> int:
        return len(self.net_ids)

    @property
    def num_ports(self) -> int:
        return len(self.port_ids)
