"""Netlist restructuring: merging registers into an MBR instance.

:func:`compose_mbr` is the single structural edit the composition flow
performs.  It replaces a group of compatible registers with one MBR library
cell, carrying over per-bit data nets, shared control nets, and the scan
chain, then removes the old cells and any nets that die with them (e.g. the
scan-stitch nets between two registers that are now chained inside the MBR).

It returns a :class:`~repro.netlist.change.ChangeRecord` describing the
edit — the new cell is ``record.new_cell`` — so callers can hand it to
:meth:`repro.sta.timer.Timer.apply_change` instead of blanket-invalidating.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.point import Point
from repro.library.cells import RegisterCell
from repro.library.functional import ScanStyle
from repro.netlist.change import ChangeRecord
from repro.netlist.db import Cell, Net
from repro.netlist.design import Design
from repro.netlist.registers import RegisterBit, RegisterView


class ComposeError(ValueError):
    """Raised when a group of registers cannot legally merge into the target
    MBR cell — the composition engine treats this as a rejected candidate."""


def _shared_net(views: list[RegisterView], getter, what: str) -> Net | None:
    # Hold strong references before comparing identities: net views are
    # flyweights in a WeakValueDictionary, so an unreferenced view dies the
    # moment id() returns and the next lookup builds a fresh object whose
    # address may or may not coincide with the old one.
    nets = [getter(v) for v in views]
    if len({id(n) for n in nets}) != 1:
        raise ComposeError(
            f"registers {[v.cell.name for v in views]} disagree on {what}"
        )
    return nets[0]


def compose_mbr(
    design: Design,
    group: list[Cell],
    target: RegisterCell,
    origin: Point,
    name: str | None = None,
    bit_order: list[RegisterBit] | None = None,
) -> ChangeRecord:
    """Replace ``group`` with a single instance of ``target`` at ``origin``.

    ``bit_order`` fixes the mapping of old bits onto the new cell's bit
    indices (defaults to group order then bit order), which also defines the
    internal scan order for ``ScanStyle.INTERNAL`` targets.  Bits beyond
    ``len(bit_order)`` are left unconnected (incomplete MBR).

    Returns the :class:`~repro.netlist.change.ChangeRecord` of the edit;
    the new cell is ``record.new_cell``.  Raises :class:`ComposeError` when
    the group's control nets or bit count cannot map onto ``target``.
    """
    if not group:
        raise ComposeError("cannot compose an empty register group")
    views = [RegisterView(c) for c in group]

    for v in views:
        if v.cell.dont_touch:
            raise ComposeError(f"register {v.cell.name} is dont_touch")
        if v.libcell.func_class != target.func_class:
            raise ComposeError(
                f"register {v.cell.name} class {v.libcell.func_class.name} "
                f"does not match target class {target.func_class.name}"
            )

    bits = bit_order if bit_order is not None else [
        b for v in views for b in v.connected_bits()
    ]
    if len(bits) > target.width_bits:
        raise ComposeError(
            f"{len(bits)} bits do not fit in {target.name} ({target.width_bits} bits)"
        )

    clock_net = _shared_net(views, lambda v: v.clock_net, "clock net")
    control_nets: dict[str, Net | None] = {}
    for ctrl in target.control_pins():
        control_nets[ctrl] = _shared_net(
            views, lambda v, c=ctrl: v.control_nets().get(c), f"control net {ctrl}"
        )

    new_name = name or design.unique_name("mbr")
    with design.track() as tracker:
        new_cell = design.add_cell(new_name, target, origin)

        if clock_net is not None:
            design.connect(new_cell.pin(target.clock_pin_name), clock_net)
        for ctrl, net in control_nets.items():
            if net is not None:
                design.connect(new_cell.pin(ctrl), net)

        # Per-bit data connections.  Capture the old nets first: removing the
        # old cells later must not race with rewiring.
        for new_index, old_bit in enumerate(bits):
            if old_bit.d_net is not None:
                design.connect(new_cell.pin(target.d_pin(new_index)), old_bit.d_net)
            if old_bit.q_net is not None:
                design.connect(new_cell.pin(target.q_pin(new_index)), old_bit.q_net)

        _stitch_scan(design, views, new_cell, target, bits)

        # Only nets that lose a terminal with the old cells can go dead:
        # capture them before removal so the sweep inspects nothing else.
        # Insertion-ordered (dict) so the removal order is deterministic.
        affected: dict[str, None] = {}
        for v in views:
            for pin in v.cell.pins.values():
                if pin.net is not None:
                    affected[pin.net.name] = None
        for v in views:
            design.remove_cell(v.cell)
        _sweep_dead_nets(design, affected)
    return tracker.record()


def _stitch_scan(
    design: Design,
    views: list[RegisterView],
    new_cell: Cell,
    target: RegisterCell,
    bits: list[RegisterBit],
) -> None:
    """Reconnect the scan chain through the new MBR.

    ``INTERNAL`` targets chain all bits inside the cell: the new SI takes the
    scan-in net of the first bit's source register, the new SO takes the
    scan-out net of the last bit's source register, and the old stitch nets
    between merged registers die (swept afterwards).  ``MULTI`` targets carry
    each source register's SI/SO through per-bit pins.
    """
    if not target.func_class.is_scan:
        return

    if target.scan_style is ScanStyle.MULTI:
        view_of = {v.cell.name: v for v in views}
        for new_index, old_bit in enumerate(bits):
            src = view_of[old_bit.cell.name]
            # Old internal-scan cells expose SI only at bit 0 and SO only at
            # the last bit; multi-scan cells expose one pair per bit.
            if src.scan_style is ScanStyle.MULTI:
                si = src.scan_in_net(old_bit.index)
                so = src.scan_out_net(old_bit.index)
            else:
                si = src.scan_in_net() if old_bit.index == 0 else None
                last = src.libcell.width_bits - 1
                so = src.scan_out_net() if old_bit.index == last else None
            if si is not None:
                design.connect(new_cell.pin(target.si_pin(new_index)), si)
            if so is not None:
                design.connect(new_cell.pin(target.so_pin(new_index)), so)
        return

    # INTERNAL target: single SI/SO pair.
    first_src = RegisterView(design.cells[bits[0].cell.name])
    last_src = RegisterView(design.cells[bits[-1].cell.name])
    si_net = first_src.scan_in_net()
    so_net = last_src.scan_out_net()
    if si_net is not None:
        design.connect(new_cell.pin(target.si_pin()), si_net)
    if so_net is not None:
        design.connect(new_cell.pin(target.so_pin()), so_net)


def _sweep_dead_nets(
    design: Design, candidates: Iterable[str] | None = None
) -> None:
    """Remove nets whose terminals all vanished with the replaced registers
    (typically scan-stitch nets now absorbed inside an MBR), and nets left
    with a driver but no sink that used to feed only removed scan-ins.

    ``candidates`` optionally names the nets that could have lost a
    terminal in the current edit (a superset of the dead ones); only those
    nets are fetched and inspected, making one sweep O(candidates) rather
    than O(all nets) — on a large design the composition pass applies
    hundreds of MBRs, and a full-netlist scan per apply is the difference
    between a linear pass and a quadratic one.  The single-terminal test
    runs first — ``driver``/``sinks`` scan the terminal list, so gating
    them on the cheap length check keeps each net's check O(1).
    """
    if candidates is None:
        pool = list(design.nets.values())
    else:
        nets = design.nets
        pool = [nets[name] for name in candidates if name in nets]
    dead = [
        net
        for net in pool
        if not net.terminals
        or (
            len(net.terminals) == 1
            and not net.is_clock
            and net.driver is not None
            and not net.sinks
            and _only_feeds_scan(net)
        )
    ]
    for net in dead:
        design.remove_net(net)


def _only_feeds_scan(net: Net) -> bool:
    """True when the net's lone remaining terminal is a scan-out pin."""
    t = net.terminals[0]
    return getattr(t, "name", "").startswith("SO")
