"""Register-centric view over netlist cells.

MBR composition reasons about registers bit by bit: each bit is a D/Q pin
pair with its own data nets, while clock, reset, enable, and scan-enable are
shared control pins.  :class:`RegisterView` exposes exactly that structure
for any register cell, whether a 1-bit flop or an 8-bit MBR from synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.cells import RegisterCell
from repro.library.functional import ScanStyle
from repro.netlist.db import Cell, Net, Pin


@dataclass(frozen=True)
class RegisterBit:
    """One D/Q bit of a register instance."""

    cell: Cell
    index: int
    d_pin: Pin
    q_pin: Pin

    @property
    def d_net(self) -> Net | None:
        return self.d_pin.net

    @property
    def q_net(self) -> Net | None:
        return self.q_pin.net

    @property
    def is_connected(self) -> bool:
        """False for the tied-off bits of an incomplete MBR."""
        return self.d_pin.net is not None or self.q_pin.net is not None


class RegisterView:
    """Structured access to a register instance's bits and control nets."""

    def __init__(self, cell: Cell) -> None:
        if not cell.is_register:
            raise TypeError(f"{cell.name} is not a register")
        self.cell = cell
        self.libcell: RegisterCell = cell.register_cell

    # -- bits ---------------------------------------------------------------

    def bits(self) -> list[RegisterBit]:
        return [
            RegisterBit(
                self.cell,
                b,
                self.cell.pin(self.libcell.d_pin(b)),
                self.cell.pin(self.libcell.q_pin(b)),
            )
            for b in range(self.libcell.width_bits)
        ]

    def connected_bits(self) -> list[RegisterBit]:
        """Bits whose D or Q is wired — excludes incomplete-MBR spare bits."""
        return [b for b in self.bits() if b.is_connected]

    @property
    def connected_bit_count(self) -> int:
        return len(self.connected_bits())

    # -- control ----------------------------------------------------------------

    @property
    def clock_pin(self) -> Pin:
        return self.cell.pin(self.libcell.clock_pin_name)

    @property
    def clock_net(self) -> Net | None:
        return self.clock_pin.net

    def control_nets(self) -> dict[str, Net | None]:
        """Map of control pin name (RN/SN/EN/SE) to its net.

        Functional compatibility (Section 2) requires two registers' control
        nets to be identical pin for pin.
        """
        return {
            name: self.cell.pin(name).net for name in self.libcell.control_pins()
        }

    # -- scan ---------------------------------------------------------------------

    @property
    def scan_style(self) -> ScanStyle:
        return self.libcell.scan_style

    def scan_in_net(self, bit: int = 0) -> Net | None:
        """External scan-in net (of ``bit`` for multi-scan cells)."""
        if not self.libcell.func_class.is_scan:
            return None
        return self.cell.pin(self.libcell.si_pin(bit)).net

    def scan_out_net(self, bit: int = 0) -> Net | None:
        if not self.libcell.func_class.is_scan:
            return None
        return self.cell.pin(self.libcell.so_pin(bit)).net

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RegisterView({self.cell.name}:{self.libcell.name})"
