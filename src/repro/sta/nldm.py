"""NLDM-style table lookup timing (slew-aware).

Production flows (the paper uses CCS models, of which NLDM is the
table-lookup ancestor) compute cell delay from two-dimensional lookup
tables indexed by input slew and output load, propagating slew along every
path.  The main :class:`repro.sta.Timer` uses the linear drive-resistance
model — the approximation Section 4.1 itself describes — and this module
provides the table-driven counterpart:

* :class:`LookupTable2D` — bilinear interpolation with clamped
  extrapolation, the standard Liberty semantics;
* :func:`synthesize_tables` — NLDM tables generated from a cell's linear
  model plus a slew-sensitivity term, so the default library gets
  plausible tables without hand-authored data (and with sensitivity 0 the
  table model reproduces the linear model exactly — property-tested);
* :func:`nldm_arrivals` — a slew-propagating forward pass over the same
  :class:`repro.sta.TimingGraph` the linear timer uses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import groupby

import numpy as np

from repro.library.cells import LibCell, RegisterCell
from repro.netlist.design import Design
from repro.sta.graph import TimingGraph
from repro.sta.timer import Timer


@dataclass(frozen=True)
class LookupTable2D:
    """A Liberty-style 2D table: rows = input slew, columns = load."""

    slews: tuple[float, ...]
    loads: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]  # values[i][j] at (slews[i], loads[j])

    def __post_init__(self) -> None:
        if len(self.values) != len(self.slews):
            raise ValueError("row count must match slew axis")
        if any(len(row) != len(self.loads) for row in self.values):
            raise ValueError("column count must match load axis")
        if list(self.slews) != sorted(self.slews) or list(self.loads) != sorted(self.loads):
            raise ValueError("table axes must be ascending")

    @staticmethod
    def _bracket(axis: tuple[float, ...], x: float) -> tuple[int, int, float]:
        """Indices (lo, hi) and interpolation fraction, clamped at the ends."""
        if x <= axis[0]:
            return 0, 0, 0.0
        if x >= axis[-1]:
            last = len(axis) - 1
            return last, last, 0.0
        hi = bisect.bisect_right(axis, x)
        lo = hi - 1
        frac = (x - axis[lo]) / (axis[hi] - axis[lo])
        return lo, hi, frac

    def lookup(self, slew: float, load: float) -> float:
        """Bilinear interpolation (clamped beyond the table corners)."""
        i0, i1, fi = self._bracket(self.slews, slew)
        j0, j1, fj = self._bracket(self.loads, load)
        v00 = self.values[i0][j0]
        v01 = self.values[i0][j1]
        v10 = self.values[i1][j0]
        v11 = self.values[i1][j1]
        top = v00 + (v01 - v00) * fj
        bot = v10 + (v11 - v10) * fj
        return top + (bot - top) * fi

    @staticmethod
    def _bracket_batch(
        axis: tuple[float, ...], x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_bracket`: element-wise identical indices and
        fractions.  ``np.searchsorted(side="right")`` is ``bisect_right``,
        and the fraction uses the same subtract/divide expression, so every
        element matches the scalar path bit for bit."""
        ax = np.asarray(axis, dtype=np.float64)
        last = len(ax) - 1
        lo = np.zeros(x.shape, dtype=np.intp)
        hi = np.zeros(x.shape, dtype=np.intp)
        frac = np.zeros(x.shape, dtype=np.float64)
        interior = (x > ax[0]) & (x < ax[-1])
        if interior.any():
            xi = x[interior]
            h = np.searchsorted(ax, xi, side="right")
            lo[interior] = h - 1
            hi[interior] = h
            frac[interior] = (xi - ax[h - 1]) / (ax[h] - ax[h - 1])
        high = x >= ax[-1]
        lo[high] = last
        hi[high] = last
        return lo, hi, frac

    def lookup_batch(self, slews, loads) -> np.ndarray:
        """Vectorized :meth:`lookup` over parallel slew/load arrays.

        Bit-identical to the scalar path element by element: bracketing,
        clamping, and the bilinear expression use the same float64
        operations in the same order.
        """
        s = np.asarray(slews, dtype=np.float64)
        ld = np.asarray(loads, dtype=np.float64)
        i0, i1, fi = self._bracket_batch(self.slews, s)
        j0, j1, fj = self._bracket_batch(self.loads, ld)
        vals = np.asarray(self.values, dtype=np.float64)
        v00 = vals[i0, j0]
        v01 = vals[i0, j1]
        v10 = vals[i1, j0]
        v11 = vals[i1, j1]
        top = v00 + (v01 - v00) * fj
        bot = v10 + (v11 - v10) * fj
        return top + (bot - top) * fi


@dataclass(frozen=True)
class TimingTables:
    """The delay and output-slew tables of one cell arc."""

    delay: LookupTable2D
    out_slew: LookupTable2D


DEFAULT_SLEW_AXIS = (0.005, 0.02, 0.08, 0.2)
DEFAULT_LOAD_AXIS = (0.001, 0.005, 0.02, 0.08)


def synthesize_tables(
    cell: LibCell,
    slew_sensitivity: float = 0.15,
    slews: tuple[float, ...] = DEFAULT_SLEW_AXIS,
    loads: tuple[float, ...] = DEFAULT_LOAD_AXIS,
) -> TimingTables:
    """NLDM tables consistent with a cell's linear model.

    ``delay(slew, load) = intrinsic + R*load + sensitivity*slew`` and
    ``out_slew(slew, load) = 2*R*load + 0.3*sensitivity*slew`` — the
    standard first-order shape of library tables.  With sensitivity 0 the
    delay table is exactly the linear model at every lattice point, so
    interpolation reproduces it everywhere.
    """
    intrinsic = cell.intrinsic_delay
    if isinstance(cell, RegisterCell):
        intrinsic += cell.clk_to_q
    delay_rows = tuple(
        tuple(
            intrinsic + cell.drive_resistance * load + slew_sensitivity * slew
            for load in loads
        )
        for slew in slews
    )
    slew_rows = tuple(
        tuple(
            2.0 * cell.drive_resistance * load + 0.3 * slew_sensitivity * slew + 0.002
            for load in loads
        )
        for slew in slews
    )
    return TimingTables(
        delay=LookupTable2D(slews, loads, delay_rows),
        out_slew=LookupTable2D(slews, loads, slew_rows),
    )


def _update(
    state: dict[int, tuple[float, float]],
    dst_id: int,
    new_arrival: float,
    new_slew: float,
) -> None:
    """Worst-case merge: independent maxes of arrival and slew.

    Order-independent — the final entry is ``(max arrivals, max slews)``
    whatever sequence the in-arcs land in, which is what licenses the
    batched path's per-level regrouping.
    """
    prev = state.get(dst_id)
    if prev is None or new_arrival > prev[0]:
        state[dst_id] = (new_arrival, max(new_slew, prev[1] if prev else 0.0))
    elif new_slew > prev[1]:
        state[dst_id] = (prev[0], new_slew)


def nldm_arrivals(
    design: Design,
    timer: Timer,
    slew_sensitivity: float = 0.15,
    input_slew: float = 0.02,
    wire_slew_per_um: float = 0.0002,
    batched: bool = True,
) -> dict[int, tuple[float, float]]:
    """Slew-propagating arrival analysis over the timer's timing graph.

    Returns ``id(terminal) -> (arrival, slew)``.  Cell arcs use synthesized
    NLDM tables (cached per library cell); wire arcs keep the graph's
    Manhattan delay and degrade slew by ``wire_slew_per_um`` per micron.
    Worst-case (max) semantics on both arrival and slew, as a setup-mode
    STA would propagate.

    ``batched=True`` (the default) sweeps level by level and issues one
    :meth:`LookupTable2D.lookup_batch` call per (libcell, level) group
    instead of a scalar lookup per arc.  The merge rule is an
    order-independent pair of maxes and the batch lookup is element-wise
    identical to the scalar one, so both paths return bit-identical maps
    (property-tested).
    """
    graph: TimingGraph = timer.graph
    tables: dict[str, TimingTables] = {}

    def tables_for(cell: LibCell) -> TimingTables:
        cached = tables.get(cell.name)
        if cached is None:
            cached = synthesize_tables(cell, slew_sensitivity)
            tables[cell.name] = cached
        return cached

    state: dict[int, tuple[float, float]] = {}
    for reg_cell, q in graph.launch_q:
        lc = reg_cell.register_cell
        load = graph.output_load(q)
        t = tables_for(lc)
        arrival = timer.skew.get(reg_cell.name, 0.0) + t.delay.lookup(input_slew, load)
        state[id(q)] = (arrival, t.out_slew.lookup(input_slew, load))
    for port in graph.input_ports:
        state[id(port)] = (timer.input_delay, input_slew)

    if not batched:
        for node in graph.topological_order():
            here = state.get(id(node))
            if here is None:
                continue
            arrival, slew = here
            for arc in graph.fanout.get(id(node), ()):
                src_cell = getattr(arc.src, "cell", None)
                dst_cell = getattr(arc.dst, "cell", None)
                if src_cell is not None and dst_cell is src_cell:
                    # Cell arc (input pin -> output pin of the same cell).
                    lc = src_cell.libcell
                    load = graph.output_load(arc.dst)
                    t = tables_for(lc)
                    new_arrival = arrival + t.delay.lookup(slew, load)
                    new_slew = t.out_slew.lookup(slew, load)
                else:
                    # Net arc: the graph's wire delay, plus slew degradation.
                    distance = (
                        arc.delay / graph.tech.wire_delay_per_um
                        if graph.tech.wire_delay_per_um > 0
                        else 0.0
                    )
                    new_arrival = arrival + arc.delay
                    new_slew = slew + wire_slew_per_um * distance
                _update(state, id(arc.dst), new_arrival, new_slew)
        return state

    levels = graph.levels()
    order = sorted(graph.topological_order(), key=lambda n: levels[id(n)])
    for _level, group in groupby(order, key=lambda n: levels[id(n)]):
        # Arcs within one level never feed each other (levels strictly
        # ascend along arcs), so the whole level batches safely.
        cell_arcs: dict[str, list[tuple[object, float, float, float]]] = {}
        libcells: dict[str, LibCell] = {}
        for node in group:
            here = state.get(id(node))
            if here is None:
                continue
            arrival, slew = here
            for arc in graph.fanout.get(id(node), ()):
                src_cell = getattr(arc.src, "cell", None)
                dst_cell = getattr(arc.dst, "cell", None)
                if src_cell is not None and dst_cell is src_cell:
                    lc = src_cell.libcell
                    libcells[lc.name] = lc
                    cell_arcs.setdefault(lc.name, []).append(
                        (arc.dst, arrival, slew, graph.output_load(arc.dst))
                    )
                else:
                    distance = (
                        arc.delay / graph.tech.wire_delay_per_um
                        if graph.tech.wire_delay_per_um > 0
                        else 0.0
                    )
                    _update(
                        state,
                        id(arc.dst),
                        arrival + arc.delay,
                        slew + wire_slew_per_um * distance,
                    )
        for name, rows in cell_arcs.items():
            t = tables_for(libcells[name])
            in_slews = np.fromiter((r[2] for r in rows), dtype=np.float64)
            loads = np.fromiter((r[3] for r in rows), dtype=np.float64)
            delays = t.delay.lookup_batch(in_slews, loads)
            out_slews = t.out_slew.lookup_batch(in_slews, loads)
            for (dst, arrival, _slew, _load), d, s in zip(rows, delays, out_slews):
                _update(state, id(dst), arrival + float(d), float(s))
    return state
