"""Array-backed timing kernel: CSR adjacency + vectorized level sweeps.

:class:`ArrayKernel` compiles the object-graph :class:`~repro.sta.graph.
TimingGraph` into flat numpy arrays — dense node slots, parallel arc
arrays (source slot, destination slot, float64 delay), and a level-ordered
CSR adjacency — and re-expresses arrival/required propagation as
vectorized sweeps over level groups.  Because ``max``/``min`` are
order-independent and every candidate is the same ``arrival[src] + delay``
float64 expression the dict :class:`~repro.sta.timer.Timer` evaluates, the
kernel's results are *bit-identical* to the reference propagation; the
``REPRO_STA_AUDIT`` shadow check and ``repro.check.diff_arraytimer_vs_dict``
both lean on that.

Absent values use infinity sentinels with the same algebra as the dict's
missing keys: an unreached arrival is ``-inf`` (``-inf + delay`` never wins
a max), an unconstrained required is ``+inf`` (``+inf - delay`` never wins
a min), and an unknown min-arrival is ``+inf``.

Incremental edits patch the arc arrays in place — arcs incident to the
:class:`~repro.sta.graph.GraphPatch`'s dirty nodes are *tombstoned* (alive
mask cleared), the current arcs are *appended* from the graph's adjacency,
and the arrays are *compacted* once the dead fraction crosses
:data:`COMPACT_DEAD_FRACTION`.  The CSR orderings are rebuilt lazily on
the next sweep.  Dirty-cone retiming is a masked sub-level sweep: dirty
slots are bucketed by level, each bucket is recomputed in one vectorized
gather/segment-reduce, and only the fanout of slots whose value actually
changed seeds deeper levels — the exact wavefront the dict retime walks
node by node.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

import numpy as np

from repro import obs
from repro.sta.graph import GraphPatch, TimingGraph

_NEG_INF = float("-inf")
_POS_INF = float("inf")

#: Compact the arc arrays when tombstoned arcs exceed this fraction.
COMPACT_DEAD_FRACTION = 0.25
#: ... but never bother compacting tiny arrays.
COMPACT_MIN_ARCS = 256


@dataclass
class _Csr:
    """Level-ordered CSR views over the alive arcs (rebuilt lazily).

    ``f*`` arrays order arcs by ``(level[dst], dst)`` — every arc with the
    same destination is contiguous, and destinations ascend by level, so a
    single pass of per-level ``reduceat`` segment maxima is a complete
    forward sweep.  ``b*`` arrays order by ``(level[src], src)`` for the
    backward sweep.  ``fanin_*``/``fanout_*`` index the same arrays per
    node slot for the masked retime gathers.
    """

    # forward (fanin-grouped) ordering
    fsrc: np.ndarray
    fdst: np.ndarray
    fdelay: np.ndarray
    fseg_bounds: np.ndarray  # segment boundaries into f*, len = nseg + 1
    fseg_dst: np.ndarray  # destination slot per segment
    flevels: np.ndarray  # distinct destination levels, ascending
    flevel_seg_ptr: np.ndarray  # segment range per level, len = nlevels + 1
    fanin_start: np.ndarray  # per-slot range into f*
    fanin_end: np.ndarray
    # backward (fanout-grouped) ordering
    bsrc: np.ndarray
    bdst: np.ndarray
    bdelay: np.ndarray
    bseg_bounds: np.ndarray
    bseg_src: np.ndarray
    blevels: np.ndarray  # distinct source levels, ascending
    blevel_seg_ptr: np.ndarray
    fanout_start: np.ndarray
    fanout_end: np.ndarray


def _segment_csr(
    keys: np.ndarray, levels: np.ndarray, n_slots: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Segment an arc ordering grouped by ``keys`` (already sorted by
    ``(levels, keys)``) into per-key segments, per-level segment ranges,
    and per-slot start/end lookups."""
    n = len(keys)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        zeros = np.zeros(n_slots, dtype=np.int64)
        return (
            np.zeros(1, dtype=np.int64),
            empty,
            empty,
            np.zeros(1, dtype=np.int64),
            zeros,
            zeros.copy(),
        )
    change = np.nonzero(keys[1:] != keys[:-1])[0] + 1
    seg_starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
    seg_bounds = np.concatenate((seg_starts, np.array([n], dtype=np.int64)))
    seg_key = keys[seg_starts]
    seg_level = levels[seg_starts]
    uniq_levels = np.unique(seg_level)
    level_ptr = np.concatenate(
        (
            np.searchsorted(seg_level, uniq_levels),
            np.array([len(seg_key)], dtype=np.int64),
        )
    )
    start = np.zeros(n_slots, dtype=np.int64)
    end = np.zeros(n_slots, dtype=np.int64)
    start[seg_key] = seg_starts
    end[seg_key] = seg_bounds[1:]
    return seg_bounds, seg_key, uniq_levels, level_ptr, start, end


def _concat_ranges(
    starts: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate ``[starts[i], starts[i]+counts[i])`` ranges.

    Returns ``(indices, bounds, nz)`` where ``indices`` is the flattened
    index vector, ``bounds`` the reduceat boundaries of the *non-empty*
    ranges, and ``nz`` the positions of those non-empty ranges in the
    input.  Empty ranges are dropped (``reduceat`` cannot express them).
    """
    nz = np.nonzero(counts)[0]
    if len(nz) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, nz
    s = starts[nz]
    c = counts[nz]
    total = int(c.sum())
    bounds = np.zeros(len(c), dtype=np.int64)
    np.cumsum(c[:-1], out=bounds[1:])
    out = np.ones(total, dtype=np.int64)
    out[0] = s[0]
    if len(s) > 1:
        out[bounds[1:]] = s[1:] - (s[:-1] + c[:-1] - 1)
    np.cumsum(out, out=out)
    return out, bounds, nz


class ArrayKernel:
    """Flat-array mirror of one :class:`TimingGraph`, with vectorized sweeps.

    The kernel owns the authoritative float64 value arrays (``arrival``,
    ``required``, ``arrival_min``); the timer's dict state is materialized
    from them after full sweeps and co-updated during retimes, so every
    query path stays unchanged and bit-identical.
    """

    def __init__(self, graph: TimingGraph) -> None:
        self.graph = graph
        self.has_min = False
        self._csr: _Csr | None = None
        with obs.span("sta.kernel.compile", cat="sta") as sp:
            ids: list[int] = []
            index: dict[int, int] = {}
            for nid in graph._nodes:
                index[nid] = len(ids)
                ids.append(nid)
            for nid in (*graph.input_ports_by_id, *graph.output_ports_by_id):
                if nid not in index:
                    index[nid] = len(ids)
                    ids.append(nid)
            self._ids = ids
            self._index = index
            self._free: list[int] = []
            cap = max(len(ids), 16)
            self._node_alive = np.zeros(cap, dtype=bool)
            self._node_alive[: len(ids)] = True
            self._level = np.zeros(cap, dtype=np.int64)
            self._arrival = np.full(cap, _NEG_INF)
            self._required = np.full(cap, _POS_INF)
            self._arrival_min = np.full(cap, _POS_INF)

            arcs = [a for fo in graph.fanout.values() for a in fo]
            n = len(arcs)
            acap = max(n, 16)
            self._asrc = np.empty(acap, dtype=np.int64)
            self._adst = np.empty(acap, dtype=np.int64)
            self._adelay = np.empty(acap, dtype=np.float64)
            self._aalive = np.zeros(acap, dtype=bool)
            self._asrc[:n] = np.fromiter(
                (index[id(a.src)] for a in arcs), dtype=np.int64, count=n
            )
            self._adst[:n] = np.fromiter(
                (index[id(a.dst)] for a in arcs), dtype=np.int64, count=n
            )
            self._adelay[:n] = np.fromiter(
                (a.delay for a in arcs), dtype=np.float64, count=n
            )
            self._aalive[:n] = True
            self._n_arcs = n
            self._n_dead = 0
            sp.set(nodes=len(ids), arcs=n)
        reg = obs.get_registry()
        reg.counter("sta.kernel.compiles").inc()

    # -- slots ---------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return len(self._ids)

    def slot(self, nid: int) -> int:
        return self._index[nid]

    def node_array(self, fill: float) -> np.ndarray:
        """A fresh per-slot float array initialized to ``fill``."""
        return np.full(len(self._ids), fill)

    def _grow_nodes(self, need: int) -> None:
        cap = len(self._node_alive)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)

        def grown(arr: np.ndarray, fill) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=arr.dtype)
            out[:cap] = arr
            return out

        self._node_alive = grown(self._node_alive, False)
        self._level = grown(self._level, 0)
        self._arrival = grown(self._arrival, _NEG_INF)
        self._required = grown(self._required, _POS_INF)
        self._arrival_min = grown(self._arrival_min, _POS_INF)

    def ensure_slot(self, nid: int) -> int:
        s = self._index.get(nid)
        if s is not None:
            return s
        if self._free:
            s = self._free.pop()
            self._ids[s] = nid
        else:
            s = len(self._ids)
            self._ids.append(nid)
            self._grow_nodes(s + 1)
        self._index[nid] = s
        self._node_alive[s] = True
        self._level[s] = 0
        self._arrival[s] = _NEG_INF
        self._required[s] = _POS_INF
        self._arrival_min[s] = _POS_INF
        return s

    def drop_slot(self, nid: int) -> None:
        s = self._index.pop(nid, None)
        if s is None:
            return
        self._node_alive[s] = False
        self._arrival[s] = _NEG_INF
        self._required[s] = _POS_INF
        self._arrival_min[s] = _POS_INF
        self._level[s] = 0
        self._free.append(s)

    # -- patching ------------------------------------------------------------

    def _append_arc_rows(
        self, src: list[int], dst: list[int], delay: list[float]
    ) -> None:
        k = len(src)
        if k == 0:
            return
        n = self._n_arcs
        cap = len(self._aalive)
        if n + k > cap:
            new_cap = max(n + k, 2 * cap)

            def grown(arr: np.ndarray, fill) -> np.ndarray:
                out = np.full(new_cap, fill, dtype=arr.dtype)
                out[:n] = arr[:n]
                return out

            self._asrc = grown(self._asrc, 0)
            self._adst = grown(self._adst, 0)
            self._adelay = grown(self._adelay, 0.0)
            self._aalive = grown(self._aalive, False)
        self._asrc[n : n + k] = src
        self._adst[n : n + k] = dst
        self._adelay[n : n + k] = delay
        self._aalive[n : n + k] = True
        self._n_arcs = n + k

    def apply_patch(self, patch: GraphPatch) -> None:
        """Mirror one :meth:`TimingGraph.apply_change` into the arc arrays.

        Every arc the graph added or removed has both endpoints in
        ``patch.dirty`` (see ``_add_arc``/``_unlink``), so tombstoning all
        arcs incident to the dirty and removed slots and re-appending the
        graph's current arcs around the dirty nodes reproduces the live
        arc multiset exactly.
        """
        g = self.graph
        self._csr = None
        affected = patch.dirty | patch.removed
        slots = [self._index[nid] for nid in affected if nid in self._index]
        n = self._n_arcs
        if slots and n:
            sl = np.fromiter(slots, dtype=np.int64, count=len(slots))
            sl.sort()
            alive = self._aalive[:n]
            hit = alive & (
                np.isin(self._asrc[:n], sl) | np.isin(self._adst[:n], sl)
            )
            dead = int(hit.sum())
            if dead:
                alive[hit] = False
                self._n_dead += dead
        for nid in patch.removed:
            if not g.contains(nid):
                self.drop_slot(nid)
            else:
                # Released and re-added within one patch (e.g. a rebuilt
                # net's driver): the timer popped its dict state, so clear
                # the slot too — the retime reinstates both from the seed.
                s = self._index.get(nid)
                if s is not None:
                    self._arrival[s] = _NEG_INF
                    self._required[s] = _POS_INF
                    self._arrival_min[s] = _POS_INF
        seen: set[int] = set()
        src: list[int] = []
        dst: list[int] = []
        delay: list[float] = []
        for nid in patch.dirty:
            if not g.contains(nid):
                self.drop_slot(nid)
                continue
            self.ensure_slot(nid)
            for arc in (*g.fanout.get(nid, ()), *g.fanin.get(nid, ())):
                key = id(arc)
                if key in seen:
                    continue
                seen.add(key)
                src.append(self.ensure_slot(id(arc.src)))
                dst.append(self.ensure_slot(id(arc.dst)))
                delay.append(arc.delay)
        self._append_arc_rows(src, dst, delay)
        if (
            self._n_arcs > COMPACT_MIN_ARCS
            and self._n_dead > COMPACT_DEAD_FRACTION * self._n_arcs
        ):
            self._compact()

    def _compact(self) -> None:
        n = self._n_arcs
        keep = np.nonzero(self._aalive[:n])[0]
        k = len(keep)
        self._asrc[:k] = self._asrc[keep]
        self._adst[:k] = self._adst[keep]
        self._adelay[:k] = self._adelay[keep]
        self._aalive[:k] = True
        self._aalive[k:n] = False
        self._n_arcs = k
        self._n_dead = 0
        obs.get_registry().counter("sta.kernel.compactions").inc()

    # -- CSR -----------------------------------------------------------------

    def _ensure_csr(self) -> _Csr:
        if self._csr is not None:
            return self._csr
        g = self.graph
        lv = g.levels()
        level = self._level
        for nid, s in self._index.items():
            level[s] = lv.get(nid, 0)
        n = self._n_arcs
        alive_idx = np.nonzero(self._aalive[:n])[0]
        src = self._asrc[alive_idx]
        dst = self._adst[alive_idx]
        delay = self._adelay[alive_idx]
        n_slots = len(self._ids)

        dlv = level[dst]
        order = np.lexsort((dst, dlv))
        fsrc = src[order]
        fdst = dst[order]
        fdelay = delay[order]
        fbounds, fkey, flevels, fptr, fanin_start, fanin_end = _segment_csr(
            fdst, dlv[order], n_slots
        )

        slv = level[src]
        order = np.lexsort((src, slv))
        bsrc = src[order]
        bdst = dst[order]
        bdelay = delay[order]
        bbounds, bkey, blevels, bptr, fanout_start, fanout_end = _segment_csr(
            bsrc, slv[order], n_slots
        )

        self._csr = _Csr(
            fsrc=fsrc,
            fdst=fdst,
            fdelay=fdelay,
            fseg_bounds=fbounds,
            fseg_dst=fkey,
            flevels=flevels,
            flevel_seg_ptr=fptr,
            fanin_start=fanin_start,
            fanin_end=fanin_end,
            bsrc=bsrc,
            bdst=bdst,
            bdelay=bdelay,
            bseg_bounds=bbounds,
            bseg_src=bkey,
            blevels=blevels,
            blevel_seg_ptr=bptr,
            fanout_start=fanout_start,
            fanout_end=fanout_end,
        )
        return self._csr

    # -- full sweeps ---------------------------------------------------------

    def full_forward(self, seed: np.ndarray, minimize: bool = False) -> dict[int, float]:
        """Level-ordered forward sweep from per-slot seeds.

        ``minimize`` selects shortest-path (hold) semantics; the result is
        stored as the kernel's authoritative array and returned as the
        dict the timer state expects.
        """
        csr = self._ensure_csr()
        arr = seed
        op = np.minimum if minimize else np.maximum
        ptr = csr.flevel_seg_ptr
        bounds = csr.fseg_bounds
        for li in range(len(csr.flevels)):
            seg_lo = ptr[li]
            seg_hi = ptr[li + 1]
            a_lo = bounds[seg_lo]
            a_hi = bounds[seg_hi]
            cand = arr[csr.fsrc[a_lo:a_hi]] + csr.fdelay[a_lo:a_hi]
            seg = op.reduceat(cand, bounds[seg_lo:seg_hi] - a_lo)
            dsts = csr.fseg_dst[seg_lo:seg_hi]
            arr[dsts] = op(arr[dsts], seg)
        n = len(self._ids)
        if minimize:
            self._arrival_min[:n] = arr
            self.has_min = True
            sentinel = _POS_INF
        else:
            self._arrival[:n] = arr
            sentinel = _NEG_INF
        obs.get_registry().counter("sta.kernel.sweeps").inc()
        return self._as_dict(arr, sentinel)

    def full_backward(self, seed: np.ndarray) -> dict[int, float]:
        """Level-ordered backward sweep (required times) from seeds."""
        csr = self._ensure_csr()
        req = seed
        ptr = csr.blevel_seg_ptr
        bounds = csr.bseg_bounds
        for li in range(len(csr.blevels) - 1, -1, -1):
            seg_lo = ptr[li]
            seg_hi = ptr[li + 1]
            a_lo = bounds[seg_lo]
            a_hi = bounds[seg_hi]
            cand = req[csr.bdst[a_lo:a_hi]] - csr.bdelay[a_lo:a_hi]
            seg = np.minimum.reduceat(cand, bounds[seg_lo:seg_hi] - a_lo)
            srcs = csr.bseg_src[seg_lo:seg_hi]
            req[srcs] = np.minimum(req[srcs], seg)
        n = len(self._ids)
        self._required[:n] = req
        obs.get_registry().counter("sta.kernel.sweeps").inc()
        return self._as_dict(req, _POS_INF)

    def _as_dict(self, arr: np.ndarray, sentinel: float) -> dict[int, float]:
        n = len(self._ids)
        live = np.nonzero(self._node_alive[:n] & (arr[:n] != sentinel))[0]
        vals = arr[live].tolist()
        ids = self._ids
        return {ids[s]: v for s, v in zip(live.tolist(), vals)}

    # -- masked dirty-cone retime ---------------------------------------------

    def _recompute(
        self,
        slots: np.ndarray,
        seed: np.ndarray,
        values: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        neighbor: np.ndarray,
        arc_delay: np.ndarray,
        sign: float,
        minimize: bool,
    ) -> np.ndarray:
        """Recompute ``max/min(seed, neighbor value ± delay)`` per slot."""
        counts = end[slots] - start[slots]
        out = seed.copy()
        idx, bounds, nz = _concat_ranges(start[slots], counts)
        if len(nz) == 0:
            return out
        cand = values[neighbor[idx]] + sign * arc_delay[idx]
        if minimize:
            seg = np.minimum.reduceat(cand, bounds)
            out[nz] = np.minimum(out[nz], seg)
        else:
            seg = np.maximum.reduceat(cand, bounds)
            out[nz] = np.maximum(out[nz], seg)
        return out

    def retime(self, timer) -> int:
        """Masked sub-level re-propagation of the timer's dirty cones.

        Mirrors ``Timer._retime`` batch-for-batch: dirty slots are drained
        in level order, each level's batch is recomputed in one vectorized
        gather, and only slots whose value changed push their fanout
        (arrival) or fanin (required) deeper.  The timer's dict state and
        changed-cell set are co-updated so queries and
        ``drain_changed_cells`` behave identically to the dict kernel.
        """
        g = self.graph
        csr = self._ensure_csr()
        st = timer._state
        track_min = st.arrival_min is not None
        level = self._level
        ids = self._ids
        touched: set[int] = set()
        batches = 0
        reg = obs.get_registry()

        def note_changed(nid: int) -> None:
            cell = getattr(g._nodes.get(nid), "cell", None)
            if cell is not None:
                timer._changed_cells.add(cell.name)

        def drop_stale(nid: int) -> None:
            st.arrival.pop(nid, None)
            st.required.pop(nid, None)
            if track_min:
                st.arrival_min.pop(nid, None)
            self.drop_slot(nid)

        # Forward cone: arrivals ascend by level.
        buckets: dict[int, set[int]] = {}
        heap: list[int] = []

        def push_fwd(s: int) -> None:
            lv = int(level[s])
            b = buckets.get(lv)
            if b is None:
                buckets[lv] = b = {s}
                heappush(heap, lv)
            else:
                b.add(s)

        for nid in timer._dirty_fwd:
            if g.contains(nid):
                push_fwd(self.ensure_slot(nid))
            else:
                drop_stale(nid)

        while heap:
            lv = heappop(heap)
            batch = buckets.pop(lv)
            touched |= batch
            batches += 1
            reg.histogram("sta.kernel.batch_nodes", obs.COUNT_BUCKETS).observe(
                len(batch)
            )
            slots = np.fromiter(batch, dtype=np.int64, count=len(batch))
            slots.sort()
            seed = np.full(len(slots), _NEG_INF)
            for i, s in enumerate(slots.tolist()):
                sv = timer._arrival_seed(g, ids[s])
                if sv is not None:
                    seed[i] = sv
            new = self._recompute(
                slots, seed, self._arrival,
                csr.fanin_start, csr.fanin_end, csr.fsrc, csr.fdelay,
                1.0, minimize=False,
            )
            changed = new != self._arrival[slots]
            if track_min:
                seed_min = np.where(seed == _NEG_INF, _POS_INF, seed)
                new_min = self._recompute(
                    slots, seed_min, self._arrival_min,
                    csr.fanin_start, csr.fanin_end, csr.fsrc, csr.fdelay,
                    1.0, minimize=True,
                )
                changed_min = new_min != self._arrival_min[slots]
                changed_any = changed | changed_min
            else:
                changed_any = changed
            idx = np.nonzero(changed_any)[0]
            if len(idx) == 0:
                continue
            self._arrival[slots] = new
            if track_min:
                self._arrival_min[slots] = new_min
            for i in idx.tolist():
                s = int(slots[i])
                nid = ids[s]
                if changed[i]:
                    v = new[i]
                    if v == _NEG_INF:
                        st.arrival.pop(nid, None)
                    else:
                        st.arrival[nid] = v
                if track_min and changed_min[i]:
                    vm = new_min[i]
                    if vm == _POS_INF:
                        st.arrival_min.pop(nid, None)
                    else:
                        st.arrival_min[nid] = vm
                note_changed(nid)
            ch = slots[idx]
            tidx, _, _ = _concat_ranges(
                csr.fanout_start[ch], csr.fanout_end[ch] - csr.fanout_start[ch]
            )
            if len(tidx):
                for t in np.unique(csr.bdst[tidx]).tolist():
                    push_fwd(int(t))

        # Backward cone: required times descend by level.
        buckets.clear()
        heap.clear()

        def push_bwd(s: int) -> None:
            lv = -int(level[s])
            b = buckets.get(lv)
            if b is None:
                buckets[lv] = b = {s}
                heappush(heap, lv)
            else:
                b.add(s)

        for nid in timer._dirty_bwd:
            if g.contains(nid):
                push_bwd(self.ensure_slot(nid))
            else:
                drop_stale(nid)

        while heap:
            lv = heappop(heap)
            batch = buckets.pop(lv)
            touched |= batch
            batches += 1
            reg.histogram("sta.kernel.batch_nodes", obs.COUNT_BUCKETS).observe(
                len(batch)
            )
            slots = np.fromiter(batch, dtype=np.int64, count=len(batch))
            slots.sort()
            seed = np.full(len(slots), _POS_INF)
            for i, s in enumerate(slots.tolist()):
                sv = timer._required_seed(g, ids[s])
                if sv is not None:
                    seed[i] = sv
            new = self._recompute(
                slots, seed, self._required,
                csr.fanout_start, csr.fanout_end, csr.bdst, csr.bdelay,
                -1.0, minimize=True,
            )
            changed = new != self._required[slots]
            idx = np.nonzero(changed)[0]
            if len(idx) == 0:
                continue
            self._required[slots] = new
            for i in idx.tolist():
                s = int(slots[i])
                nid = ids[s]
                v = new[i]
                if v == _POS_INF:
                    st.required.pop(nid, None)
                else:
                    st.required[nid] = v
                note_changed(nid)
            ch = slots[idx]
            tidx, _, _ = _concat_ranges(
                csr.fanin_start[ch], csr.fanin_end[ch] - csr.fanin_start[ch]
            )
            if len(tidx):
                for t in np.unique(csr.fsrc[tidx]).tolist():
                    push_bwd(int(t))

        reg.counter("sta.kernel.retime_batches").inc(batches)
        return len(touched)
