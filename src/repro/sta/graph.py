"""Timing graph construction and in-place patching.

Nodes are netlist terminals (cell pins and design ports); edges are

* *net arcs* — net driver to each sink, delayed by Manhattan wire delay;
* *cell arcs* — input to output through combinational cells, delayed by the
  linear drive model (the output's load includes sink pin caps plus wire
  capacitance from the net's HPWL);
* *launch arcs* — register CK to Q (clock-to-q plus drive delay), realized
  as arrival seeds rather than explicit edges.

Register D pins, register control pins, and output ports terminate paths;
register Q pins, input ports, and CK pins originate them.  Clock nets do not
propagate as data: clock arrival at each register is modelled separately
(ideal clock + per-register useful-skew offset).

The graph is *patchable*: :meth:`TimingGraph.apply_change` consumes a
:class:`~repro.netlist.change.ChangeRecord` and rebuilds only the arcs owned
by the edited nets and cells, returning a :class:`GraphPatch` with the node
ids whose timing became stale.  Ownership indexes (`net name -> arcs`,
`cell name -> arcs/seed pins`) make each patch O(edited neighborhood), and
node refcounts retire terminals exactly when their last arc or seed role
disappears — the patched graph matches a fresh build arc-for-arc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.cells import ClockBufferCell, ClockGateCell, CombCell, RegisterCell
from repro.library.library import Technology
from repro.netlist.change import ChangeRecord
from repro.netlist.db import Cell, Net, Pin, Port, Terminal
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class TimingArc:
    """A directed delay edge of the timing graph."""

    src: Terminal
    dst: Terminal
    delay: float


@dataclass
class GraphPatch:
    """The fallout of one :meth:`TimingGraph.apply_change`.

    ``dirty`` holds node ids whose arrival/required values may have changed
    (new seeds, re-delayed or re-routed arcs); the timer re-propagates their
    forward and backward cones.  ``removed`` holds node ids that left the
    graph — the timer must purge their cached state, both for correctness
    and because ``id()`` values can be recycled by later allocations.
    """

    dirty: set[int] = field(default_factory=set)
    removed: set[int] = field(default_factory=set)


@dataclass
class _NetEntry:
    """Arcs owned by one net, plus the driver's node reference."""

    driver: Terminal | None
    arcs: list[TimingArc]


class TimingGraph:
    """The levelized timing graph of a design.

    Build is O(pins + nets).  After netlist edits the graph is either
    rebuilt from scratch (:class:`repro.sta.timer.Timer.dirty`) or patched
    in place via :meth:`apply_change`; both yield identical arcs and seeds.
    """

    def __init__(self, design: Design, technology: Technology | None = None) -> None:
        self.design = design
        self.tech = technology or design.library.technology
        self.fanout: dict[int, list[TimingArc]] = {}
        self.fanin: dict[int, list[TimingArc]] = {}
        self._nodes: dict[int, Terminal] = {}
        self._refs: dict[int, int] = {}
        self.launch_by_id: dict[int, tuple[Cell, Pin]] = {}
        self.capture_by_id: dict[int, tuple[Cell, Pin]] = {}
        self.launch_delay: dict[int, float] = {}  # id(Q pin) -> ck->q delay
        self.input_ports_by_id: dict[int, Port] = {}
        self.output_ports_by_id: dict[int, Port] = {}
        self._net_arcs: dict[str, _NetEntry] = {}
        self._cell_arcs: dict[str, list[TimingArc]] = {}
        self._cell_seeds: dict[str, list[Pin]] = {}
        self._topo: list[Terminal] | None = None
        self._levels: dict[int, int] | None = None
        self._build()

    # -- compatibility views ------------------------------------------------

    @property
    def nodes(self) -> list[Terminal]:
        return list(self._nodes.values())

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def launch_q(self) -> list[tuple[Cell, Pin]]:
        return list(self.launch_by_id.values())

    @property
    def capture_d(self) -> list[tuple[Cell, Pin]]:
        return list(self.capture_by_id.values())

    @property
    def input_ports(self) -> list[Port]:
        return list(self.input_ports_by_id.values())

    @property
    def output_ports(self) -> list[Port]:
        return list(self.output_ports_by_id.values())

    def contains(self, node_id: int) -> bool:
        """True while the id names a live node or seeded terminal."""
        return (
            node_id in self._nodes
            or node_id in self.input_ports_by_id
            or node_id in self.output_ports_by_id
        )

    def seed_pins(self, cell_name: str) -> list[Pin]:
        """The registered D/Q pins of a cell (empty if none connected)."""
        return list(self._cell_seeds.get(cell_name, ()))

    # -- delay model --------------------------------------------------------

    def output_load(self, pin: Terminal) -> float:
        """Capacitive load on a driver: sink pin caps + wire capacitance."""
        net = pin.net
        if net is None:
            return 0.0
        return net.sink_cap() + self.tech.wire_cap_per_um * net.hpwl()

    def wire_delay(self, src: Terminal, dst: Terminal) -> float:
        """Manhattan-distance wire delay between two terminals."""
        return self.tech.wire_delay_per_um * src.location.manhattan_to(dst.location)

    # -- node/arc bookkeeping ----------------------------------------------

    def _ensure(self, t: Terminal) -> None:
        nid = id(t)
        refs = self._refs.get(nid)
        if refs is None:
            self._refs[nid] = 1
            self._nodes[nid] = t
            self._topo = None
            if self._levels is not None:
                self._levels.setdefault(nid, 0)
        else:
            self._refs[nid] = refs + 1

    def _release(self, t: Terminal, patch: GraphPatch) -> None:
        nid = id(t)
        refs = self._refs.get(nid, 0)
        if refs <= 1:
            self._refs.pop(nid, None)
            self._nodes.pop(nid, None)
            patch.removed.add(nid)
            self._topo = None
            if self._levels is not None:
                self._levels.pop(nid, None)
        else:
            self._refs[nid] = refs - 1

    def _add_arc(
        self, src: Terminal, dst: Terminal, delay: float, patch: GraphPatch
    ) -> TimingArc:
        arc = TimingArc(src, dst, delay)
        self._ensure(src)
        self._ensure(dst)
        self.fanout.setdefault(id(src), []).append(arc)
        self.fanin.setdefault(id(dst), []).append(arc)
        patch.dirty.add(id(src))
        patch.dirty.add(id(dst))
        self._topo = None
        self._bump_level(src, dst)
        return arc

    def _bump_level(self, src: Terminal, dst: Terminal) -> None:
        """Restore the level invariant after inserting arc src -> dst.

        :meth:`levels` only needs a valid topological numbering (every arc
        strictly ascends), not tight longest-path values — so insertions
        push the destination (and, cascading, its fanout) up instead of
        invalidating the whole cache, and removals cost nothing: deleting
        an arc cannot break strict ascent on the arcs that remain.  The
        cascade is bounded; a runaway (a cycle just formed, or levels
        crept loose across many patches) drops the cache so the next
        :meth:`levels` rebuilds tight values from scratch — and the full
        topological sort is where real loops get diagnosed.
        """
        lv = self._levels
        if lv is None:
            return
        ls = lv.setdefault(id(src), 0)
        if lv.setdefault(id(dst), 0) > ls:
            return
        lv[id(dst)] = ls + 1
        stack = [dst]
        budget = 4 * len(self._nodes) + 64
        while stack:
            budget -= 1
            if budget < 0:
                self._levels = None
                return
            n = stack.pop()
            base = lv[id(n)] + 1
            for arc in self.fanout.get(id(n), ()):
                if lv.setdefault(id(arc.dst), 0) < base:
                    lv[id(arc.dst)] = base
                    stack.append(arc.dst)

    def _unlink(self, arc: TimingArc, patch: GraphPatch) -> None:
        sid, did = id(arc.src), id(arc.dst)
        fo = self.fanout[sid]
        fo.remove(arc)
        if not fo:
            del self.fanout[sid]
        fi = self.fanin[did]
        fi.remove(arc)
        if not fi:
            del self.fanin[did]
        patch.dirty.add(sid)
        patch.dirty.add(did)
        self._release(arc.src, patch)
        self._release(arc.dst, patch)
        self._topo = None

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        patch = GraphPatch()  # discarded: a fresh build has no stale state
        design = self.design

        # Net arcs (data nets only — the clock network is ideal here).
        for net in design.nets.values():
            self._add_net_arcs(net, patch)

        # Cell arcs and register launch/capture seeds.
        for cell in design.cells.values():
            self._add_cell_entries(cell, patch)

        for port in design.ports.values():
            self._register_port(port)

    def _add_net_arcs(self, net: Net, patch: GraphPatch) -> None:
        if net.is_clock:
            return
        driver = net.driver
        if driver is None:
            return
        self._ensure(driver)
        patch.dirty.add(id(driver))
        arcs = [
            self._add_arc(driver, sink, self.wire_delay(driver, sink), patch)
            for sink in net.sinks
        ]
        self._net_arcs[net.name] = _NetEntry(driver, arcs)

    def _drop_net_arcs(self, name: str, patch: GraphPatch) -> None:
        entry = self._net_arcs.pop(name, None)
        if entry is None:
            return
        for arc in entry.arcs:
            self._unlink(arc, patch)
        if entry.driver is not None:
            patch.dirty.add(id(entry.driver))
            self._release(entry.driver, patch)

    def _add_cell_entries(self, cell: Cell, patch: GraphPatch) -> None:
        lc = cell.libcell
        if isinstance(lc, RegisterCell):
            self._register_entries(cell, lc, patch)
        elif isinstance(lc, (CombCell, ClockBufferCell, ClockGateCell)):
            self._comb_entries(cell, lc, patch)

    def _comb_entries(self, cell: Cell, lc, patch: GraphPatch) -> None:
        arcs: list[TimingArc] = []
        for pout in lc.output_pins:
            out = cell.pin(pout.name)
            if out.net is None or out.net.is_clock:
                continue
            load = self.output_load(out)
            delay = lc.delay(load)
            for pdesc in lc.input_pins:
                inp = cell.pin(pdesc.name)
                if inp.net is None or inp.net.is_clock:
                    continue
                arcs.append(self._add_arc(inp, out, delay, patch))
        if arcs:
            self._cell_arcs[cell.name] = arcs

    def _register_entries(self, cell: Cell, lc: RegisterCell, patch: GraphPatch) -> None:
        seeds: list[Pin] = []
        for bit in range(lc.width_bits):
            d = cell.pin(lc.d_pin(bit))
            q = cell.pin(lc.q_pin(bit))
            if d.net is not None:
                self._ensure(d)
                seeds.append(d)
                self.capture_by_id[id(d)] = (cell, d)
                patch.dirty.add(id(d))
            if q.net is not None:
                self._ensure(q)
                seeds.append(q)
                load = self.output_load(q)
                self.launch_by_id[id(q)] = (cell, q)
                # The Timer seeds arrival(Q) = clk_arrival + this delay.
                self.launch_delay[id(q)] = lc.clk_to_q + lc.drive_resistance * load
                patch.dirty.add(id(q))
        if seeds:
            self._cell_seeds[cell.name] = seeds

    def _drop_cell_entries(self, name: str, patch: GraphPatch) -> None:
        for arc in self._cell_arcs.pop(name, ()):
            self._unlink(arc, patch)
        for pin in self._cell_seeds.pop(name, ()):
            nid = id(pin)
            patch.dirty.add(nid)
            self.capture_by_id.pop(nid, None)
            if self.launch_by_id.pop(nid, None) is not None:
                self.launch_delay.pop(nid, None)
            self._release(pin, patch)

    def _register_port(self, port: Port) -> None:
        if port.net is None or port.net.is_clock:
            return
        if port.is_input:
            self.input_ports_by_id[id(port)] = port
        else:
            self.output_ports_by_id[id(port)] = port

    def _refresh_port(self, name: str, patch: GraphPatch) -> None:
        port = self.design.ports.get(name)
        if port is None:
            return
        pid = id(port)
        self.input_ports_by_id.pop(pid, None)
        self.output_ports_by_id.pop(pid, None)
        self._register_port(port)
        patch.dirty.add(pid)

    # -- incremental patching ----------------------------------------------

    def apply_change(self, record: ChangeRecord) -> GraphPatch:
        """Patch the graph after a netlist edit, in place.

        Only arcs owned by the edited nets/cells are rebuilt; drivers of
        rewired nets have their delay model refreshed (their load changed
        even when their own connectivity did not).  Returns the
        :class:`GraphPatch` seeding the timer's dirty cones.
        """
        patch = GraphPatch()
        design = self.design

        # Nets whose arcs must be rebuilt: explicitly rewired ones, plus
        # every net attached to a moved cell (all its wire delays and its
        # drivers' loads shifted with the pin locations).
        rebuild_nets: dict[str, Net] = {}
        for name in record.rewired_nets:
            net = design.nets.get(name)
            if net is not None and not net.is_clock:
                rebuild_nets[name] = net
        for cname in record.moved:
            cell = design.cells.get(cname)
            if cell is None:
                continue
            for pin in cell.pins.values():
                net = pin.net
                if net is not None and not net.is_clock:
                    rebuild_nets.setdefault(net.name, net)

        # Cells whose arcs/seeds must be rebuilt.  Resized cells replaced
        # every pin object; touched cells changed pin connectivity; moved
        # cells changed their output loads; added cells are new.
        rebuild_cells: dict[str, Cell] = {}
        for cname in (*record.touched, *record.resized, *record.moved):
            cell = design.cells.get(cname)
            if cell is not None:
                rebuild_cells[cname] = cell
        for cell in record.added:
            if design.cells.get(cell.name) is cell:
                rebuild_cells[cell.name] = cell

        # 1. Drop arcs owned by dead and rebuilt nets.
        for name in record.removed_nets:
            self._drop_net_arcs(name, patch)
        for name in rebuild_nets:
            self._drop_net_arcs(name, patch)

        # 2. Drop entries of dead and rebuilt cells (retires stale pins).
        for cname in record.removed:
            self._drop_cell_entries(cname, patch)
        for cname in rebuild_cells:
            self._drop_cell_entries(cname, patch)

        # 3. Rebuild cell entries against the current netlist.
        for cell in rebuild_cells.values():
            self._add_cell_entries(cell, patch)

        # 4. Rebuild net arcs with fresh wire delays.
        for net in rebuild_nets.values():
            self._add_net_arcs(net, patch)

        # 5. Refresh drivers whose load changed without their own rebuild.
        for net in rebuild_nets.values():
            self._refresh_driver(net, rebuild_cells, patch)

        # 6. Re-register edited ports.
        for pname in record.ports_touched:
            self._refresh_port(pname, patch)

        return patch

    def _refresh_driver(
        self, net: Net, rebuilt: dict[str, Cell], patch: GraphPatch
    ) -> None:
        """Re-derive the delay model of a rewired net's driver cell.

        A net rewire changes the driver's output load (sink caps + HPWL),
        which feeds the comb delay or the register clk->q launch delay.
        """
        driver = net.driver
        if driver is None:
            return
        cell = getattr(driver, "cell", None)
        if cell is None or cell.name in rebuilt:
            return  # a port, or already rebuilt with fresh loads
        lc = cell.libcell
        if isinstance(lc, RegisterCell):
            nid = id(driver)
            if nid in self.launch_delay:
                delay = lc.clk_to_q + lc.drive_resistance * self.output_load(driver)
                if delay != self.launch_delay[nid]:
                    self.launch_delay[nid] = delay
                    patch.dirty.add(nid)
        elif isinstance(lc, (CombCell, ClockBufferCell, ClockGateCell)):
            self._drop_cell_entries(cell.name, patch)
            self._add_cell_entries(cell, patch)
            rebuilt[cell.name] = cell

    # -- topology --------------------------------------------------------------

    def topological_order(self) -> list[Terminal]:
        """Kahn topological order over all graph nodes (cached)."""
        if self._topo is not None:
            return self._topo
        nodes = list(self._nodes.values())
        indeg: dict[int, int] = {nid: 0 for nid in self._nodes}
        for arcs in self.fanout.values():
            for arc in arcs:
                indeg[id(arc.dst)] = indeg.get(id(arc.dst), 0) + 1
        ready = [n for n in nodes if indeg[id(n)] == 0]
        order: list[Terminal] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for arc in self.fanout.get(id(n), ()):
                indeg[id(arc.dst)] -= 1
                if indeg[id(arc.dst)] == 0:
                    ready.append(arc.dst)
        if len(order) != len(nodes):
            raise ValueError(
                "combinational loop detected: "
                f"{len(nodes) - len(order)} nodes unreachable in topological sort"
            )
        self._topo = order
        return order

    def levels(self) -> dict[int, int]:
        """Longest-path level per node id (sources at 0, cached).

        Levels order the dirty-cone worklists: every arc goes from a lower
        to a strictly higher level, so draining a min-heap of levels visits
        each dirty node after all of its dirty predecessors.
        """
        if self._levels is None:
            order = self.topological_order()
            levels = {id(n): 0 for n in order}
            for n in order:
                base = levels[id(n)] + 1
                for arc in self.fanout.get(id(n), ()):
                    if levels[id(arc.dst)] < base:
                        levels[id(arc.dst)] = base
            self._levels = levels
        return self._levels
