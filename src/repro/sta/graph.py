"""Timing graph construction from a placed design.

Nodes are netlist terminals (cell pins and design ports); edges are

* *net arcs* — net driver to each sink, delayed by Manhattan wire delay;
* *cell arcs* — input to output through combinational cells, delayed by the
  linear drive model (the output's load includes sink pin caps plus wire
  capacitance from the net's HPWL);
* *launch arcs* — register CK to Q (clock-to-q plus drive delay).

Register D pins, register control pins, and output ports terminate paths;
register Q pins, input ports, and CK pins originate them.  Clock nets do not
propagate as data: clock arrival at each register is modelled separately
(ideal clock + per-register useful-skew offset).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.library.cells import ClockBufferCell, ClockGateCell, CombCell, RegisterCell
from repro.library.library import Technology
from repro.netlist.db import Cell, Net, Pin, Port, Terminal
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class TimingArc:
    """A directed delay edge of the timing graph."""

    src: Terminal
    dst: Terminal
    delay: float


class TimingGraph:
    """The levelized timing graph of a design.

    Build is O(pins + nets); the graph is immutable once built — the
    :class:`repro.sta.timer.Timer` rebuilds it after netlist edits (the
    incremental flow re-times only at composition checkpoints, which keeps
    full rebuilds cheap at benchmark scale).
    """

    def __init__(self, design: Design, technology: Technology | None = None) -> None:
        self.design = design
        self.tech = technology or design.library.technology
        self.fanout: dict[int, list[TimingArc]] = {}
        self.fanin: dict[int, list[TimingArc]] = {}
        self.nodes: list[Terminal] = []
        self.launch_q: list[tuple[Cell, Pin]] = []  # register (cell, Q pin)
        self.capture_d: list[tuple[Cell, Pin]] = []  # register (cell, D pin)
        self.launch_delay: dict[int, float] = {}  # id(Q pin) -> ck->q delay
        self.input_ports: list[Port] = []
        self.output_ports: list[Port] = []
        self._topo: list[Terminal] | None = None
        self._build()

    # -- construction -------------------------------------------------------

    def _add_arc(self, src: Terminal, dst: Terminal, delay: float) -> None:
        arc = TimingArc(src, dst, delay)
        self.fanout.setdefault(id(src), []).append(arc)
        self.fanin.setdefault(id(dst), []).append(arc)

    def _node_seen(self, t: Terminal, seen: set[int]) -> None:
        if id(t) not in seen:
            seen.add(id(t))
            self.nodes.append(t)

    def output_load(self, pin: Terminal) -> float:
        """Capacitive load on a driver: sink pin caps + wire capacitance."""
        net = pin.net
        if net is None:
            return 0.0
        return net.sink_cap() + self.tech.wire_cap_per_um * net.hpwl()

    def wire_delay(self, src: Terminal, dst: Terminal) -> float:
        """Manhattan-distance wire delay between two terminals."""
        return self.tech.wire_delay_per_um * src.location.manhattan_to(dst.location)

    def _build(self) -> None:
        seen: set[int] = set()
        design = self.design

        # Net arcs (data nets only — the clock network is ideal here).
        for net in design.nets.values():
            if net.is_clock:
                continue
            driver = net.driver
            if driver is None:
                continue
            self._node_seen(driver, seen)
            for sink in net.sinks:
                self._node_seen(sink, seen)
                self._add_arc(driver, sink, self.wire_delay(driver, sink))

        # Cell arcs.
        for cell in design.cells.values():
            lc = cell.libcell
            if isinstance(lc, RegisterCell):
                self._register_arcs(cell, lc, seen)
            elif isinstance(lc, (CombCell, ClockBufferCell, ClockGateCell)):
                self._comb_arcs(cell, lc, seen)

        for port in design.ports.values():
            if port.net is None or port.net.is_clock:
                continue
            if port.is_input:
                self.input_ports.append(port)
            else:
                self.output_ports.append(port)

    def _comb_arcs(self, cell: Cell, lc, seen: set[int]) -> None:
        outs = [cell.pin(p.name) for p in lc.output_pins]
        for out in outs:
            if out.net is None or out.net.is_clock:
                continue
            load = self.output_load(out)
            delay = lc.delay(load)
            for pdesc in lc.input_pins:
                inp = cell.pin(pdesc.name)
                if inp.net is None or inp.net.is_clock:
                    continue
                self._node_seen(inp, seen)
                self._node_seen(out, seen)
                self._add_arc(inp, out, delay)

    def _register_arcs(self, cell: Cell, lc: RegisterCell, seen: set[int]) -> None:
        for bit in range(lc.width_bits):
            d = cell.pin(lc.d_pin(bit))
            q = cell.pin(lc.q_pin(bit))
            if d.net is not None:
                self._node_seen(d, seen)
                self.capture_d.append((cell, d))
            if q.net is not None:
                self._node_seen(q, seen)
                load = self.output_load(q)
                self.launch_q.append((cell, q))
                # The Timer seeds arrival(Q) = clk_arrival + this delay.
                self.launch_delay[id(q)] = lc.clk_to_q + lc.drive_resistance * load

    # -- topology --------------------------------------------------------------

    def topological_order(self) -> list[Terminal]:
        """Kahn topological order over all graph nodes (cached)."""
        if self._topo is not None:
            return self._topo
        indeg: dict[int, int] = {id(n): 0 for n in self.nodes}
        for arcs in self.fanout.values():
            for arc in arcs:
                indeg[id(arc.dst)] = indeg.get(id(arc.dst), 0) + 1
        ready = [n for n in self.nodes if indeg[id(n)] == 0]
        order: list[Terminal] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for arc in self.fanout.get(id(n), ()):
                indeg[id(arc.dst)] -= 1
                if indeg[id(arc.dst)] == 0:
                    ready.append(arc.dst)
        if len(order) != len(self.nodes):
            raise ValueError(
                "combinational loop detected: "
                f"{len(self.nodes) - len(order)} nodes unreachable in topological sort"
            )
        self._topo = order
        return order
