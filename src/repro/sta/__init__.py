"""Static timing analysis.

A graph-based STA over the placed netlist with the linear delay model of
Section 4.1 (drive resistance x load + intrinsic) and Manhattan wire delays,
giving the quantities the composition flow consumes:

* per-register **D-pin slack** (setup margin of the path *into* the
  register) and **Q-pin slack** (worst margin of the paths *out of* it) —
  the inputs to timing compatibility (Section 2) and feasible-region
  computation;
* **WNS / TNS / failing endpoints** — the Table 1 QoR guard-rails;
* per-register **clock arrival offsets** so useful skew (Section 5 / [5])
  can be applied and re-evaluated.

Clocks are ideal plus an explicit per-register skew map: composition runs
before CTS, exactly as in the paper's flow (Fig. 4).
"""

from repro.sta.graph import GraphPatch, TimingGraph
from repro.sta.timer import (
    EndpointSlack,
    RegisterSlack,
    Timer,
    TimerStats,
    TimingAuditError,
    TimingSummary,
)
from repro.sta.nldm import LookupTable2D, TimingTables, nldm_arrivals, synthesize_tables

__all__ = [
    "GraphPatch",
    "TimingGraph",
    "Timer",
    "TimerStats",
    "TimingAuditError",
    "TimingSummary",
    "EndpointSlack",
    "RegisterSlack",
    "LookupTable2D",
    "TimingTables",
    "nldm_arrivals",
    "synthesize_tables",
]
