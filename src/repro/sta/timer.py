"""The Timer: arrival/required propagation, slacks, and QoR summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.library.cells import RegisterCell
from repro.library.library import Technology
from repro.netlist.db import Cell, Pin, Port, Terminal
from repro.netlist.design import Design
from repro.sta.graph import TimingGraph

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(frozen=True, slots=True)
class EndpointSlack:
    """Setup slack at one timing endpoint (register D bit or output port)."""

    name: str
    slack: float

    @property
    def failing(self) -> bool:
        return self.slack < 0.0


@dataclass(frozen=True, slots=True)
class RegisterSlack:
    """The D/Q slack pair of one register cell, as Section 2 consumes it.

    ``d_slack``
        Worst setup slack over the register's connected D bits — margin of
        the paths *into* the register.
    ``q_slack``
        Worst downstream slack over the register's connected Q bits — margin
        of the paths *out of* it (the backward-propagated required-minus-
        arrival at Q).
    """

    cell_name: str
    d_slack: float
    q_slack: float


@dataclass(frozen=True, slots=True)
class TimingSummary:
    """Design-level QoR numbers matching Table 1's timing columns."""

    wns: float
    tns: float
    failing_endpoints: int
    total_endpoints: int


@dataclass
class _TimingState:
    arrival: dict[int, float] = field(default_factory=dict)
    required: dict[int, float] = field(default_factory=dict)
    arrival_min: dict[int, float] | None = None  # computed lazily for hold


class Timer:
    """Setup-mode static timing over a placed design.

    ``clock_period`` is the single clock's period (gated clocks share it).
    ``skew`` maps register cell names to clock-arrival offsets — the useful
    skew of [5]: a positive offset delays the register's clock, relaxing its
    D-side check and tightening its Q-side launches.

    The timer is lazily evaluated and invalidated explicitly: call
    :meth:`dirty` after editing the netlist or moving cells, then query.
    """

    def __init__(
        self,
        design: Design,
        clock_period: float,
        skew: dict[str, float] | None = None,
        input_delay: float = 0.0,
        output_delay: float = 0.0,
        technology: Technology | None = None,
    ) -> None:
        self.design = design
        self.clock_period = clock_period
        self.skew = dict(skew or {})
        self.input_delay = input_delay
        self.output_delay = output_delay
        self.tech = technology or design.library.technology
        self._graph: TimingGraph | None = None
        self._state: _TimingState | None = None

    # -- lifecycle -------------------------------------------------------------

    def dirty(self) -> None:
        """Invalidate cached timing after any netlist/placement change."""
        self._graph = None
        self._state = None

    def set_skew(self, cell_name: str, offset: float) -> None:
        """Assign a useful-skew clock offset to one register."""
        self.skew[cell_name] = offset
        self._state = None  # graph unchanged, timing stale

    def set_skews(self, offsets: dict[str, float]) -> None:
        """Batch-assign skew offsets with a single timing invalidation."""
        self.skew.update(offsets)
        if offsets:
            self._state = None

    @property
    def graph(self) -> TimingGraph:
        if self._graph is None:
            self._graph = TimingGraph(self.design, self.tech)
        return self._graph

    def _clock_arrival(self, cell: Cell) -> float:
        return self.skew.get(cell.name, 0.0)

    # -- propagation ----------------------------------------------------------

    def _compute(self) -> _TimingState:
        if self._state is not None:
            return self._state
        g = self.graph
        st = _TimingState()

        # Forward: arrivals.
        for cell, q in g.launch_q:
            st.arrival[id(q)] = self._clock_arrival(cell) + g.launch_delay[id(q)]
        for port in g.input_ports:
            st.arrival[id(port)] = self.input_delay

        for node in g.topological_order():
            a = st.arrival.get(id(node), _NEG_INF)
            if a == _NEG_INF:
                continue
            for arc in g.fanout.get(id(node), ()):
                cand = a + arc.delay
                if cand > st.arrival.get(id(arc.dst), _NEG_INF):
                    st.arrival[id(arc.dst)] = cand

        # Backward: required times.
        for cell, d in g.capture_d:
            lc = cell.register_cell
            st.required[id(d)] = (
                self.clock_period + self._clock_arrival(cell) - lc.setup
            )
        for port in g.output_ports:
            st.required[id(port)] = self.clock_period - self.output_delay

        for node in reversed(g.topological_order()):
            r = st.required.get(id(node), _POS_INF)
            for arc in g.fanout.get(id(node), ()):
                r_dst = st.required.get(id(arc.dst), _POS_INF)
                if r_dst != _POS_INF:
                    r = min(r, r_dst - arc.delay)
            if r != _POS_INF:
                st.required[id(node)] = r

        self._state = st
        return st

    # -- queries ------------------------------------------------------------------

    def slack_at(self, terminal: Terminal) -> float | None:
        """Setup slack at a terminal, ``None`` when unconstrained."""
        st = self._compute()
        a = st.arrival.get(id(terminal))
        r = st.required.get(id(terminal))
        if a is None or r is None:
            return None
        return r - a

    def arrival_at(self, terminal: Terminal) -> float | None:
        return self._compute().arrival.get(id(terminal))

    def endpoint_slacks(self) -> list[EndpointSlack]:
        """Slack at every constrained endpoint (register D bits, output ports)."""
        st = self._compute()
        out: list[EndpointSlack] = []
        for _cell, d in self.graph.capture_d:
            a = st.arrival.get(id(d))
            if a is None:
                continue  # D tied off / undriven: unconstrained
            out.append(EndpointSlack(d.full_name, st.required[id(d)] - a))
        for port in self.graph.output_ports:
            a = st.arrival.get(id(port))
            if a is None:
                continue
            out.append(EndpointSlack(port.name, st.required[id(port)] - a))
        return out

    def summary(self) -> TimingSummary:
        slacks = self.endpoint_slacks()
        neg = [e.slack for e in slacks if e.failing]
        return TimingSummary(
            wns=min((e.slack for e in slacks), default=0.0),
            tns=sum(neg),
            failing_endpoints=len(neg),
            total_endpoints=len(slacks),
        )

    # -- hold (min-delay) analysis ------------------------------------------------------

    def _compute_min_arrivals(self) -> dict[int, float]:
        """Earliest arrivals (shortest paths), for hold checks."""
        st = self._compute()
        if st.arrival_min is not None:
            return st.arrival_min
        g = self.graph
        arrival_min: dict[int, float] = {}
        for cell, q in g.launch_q:
            arrival_min[id(q)] = self._clock_arrival(cell) + g.launch_delay[id(q)]
        for port in g.input_ports:
            arrival_min[id(port)] = self.input_delay
        for node in g.topological_order():
            a = arrival_min.get(id(node))
            if a is None:
                continue
            for arc in g.fanout.get(id(node), ()):
                cand = a + arc.delay
                prev = arrival_min.get(id(arc.dst))
                if prev is None or cand < prev:
                    arrival_min[id(arc.dst)] = cand
        st.arrival_min = arrival_min
        return arrival_min

    def hold_slacks(self) -> list[EndpointSlack]:
        """Hold slack at every register D bit.

        With an ideal clock plus per-register skew, data launched at the
        capturing edge must arrive no earlier than the capture clock plus
        the hold requirement: ``slack = min_arrival(D) - skew(capture) -
        t_hold``.  Composition and useful skew must not create hold
        violations; the flow benchmarks check this stays clean.
        """
        arrival_min = self._compute_min_arrivals()
        out: list[EndpointSlack] = []
        for cell, d in self.graph.capture_d:
            a = arrival_min.get(id(d))
            if a is None:
                continue
            lc = cell.register_cell
            slack = a - self._clock_arrival(cell) - lc.hold
            out.append(EndpointSlack(d.full_name, slack))
        return out

    def hold_summary(self) -> TimingSummary:
        """WNS/TNS/violation counts for the hold (min-delay) check."""
        slacks = self.hold_slacks()
        neg = [e.slack for e in slacks if e.failing]
        return TimingSummary(
            wns=min((e.slack for e in slacks), default=0.0),
            tns=sum(neg),
            failing_endpoints=len(neg),
            total_endpoints=len(slacks),
        )

    # -- register-centric queries ----------------------------------------------------

    def register_slack(self, cell: Cell) -> RegisterSlack:
        """The (D, Q) slack pair of a register cell (Section 2's inputs).

        Unconstrained sides report +inf; the compatibility logic treats them
        as "anything goes" on that side.
        """
        if not isinstance(cell.libcell, RegisterCell):
            raise TypeError(f"{cell.name} is not a register")
        st = self._compute()
        lc = cell.libcell
        d_slack = _POS_INF
        q_slack = _POS_INF
        for bit in range(lc.width_bits):
            d = cell.pins.get(lc.d_pin(bit))
            if d is not None and d.net is not None:
                a = st.arrival.get(id(d))
                r = st.required.get(id(d))
                if a is not None and r is not None:
                    d_slack = min(d_slack, r - a)
            q = cell.pins.get(lc.q_pin(bit))
            if q is not None and q.net is not None:
                a = st.arrival.get(id(q))
                r = st.required.get(id(q))
                if a is not None and r is not None:
                    q_slack = min(q_slack, r - a)
        return RegisterSlack(cell.name, d_slack, q_slack)

    def register_slacks(self) -> dict[str, RegisterSlack]:
        """D/Q slack pairs for every register in the design."""
        return {
            c.name: self.register_slack(c)
            for c in self.design.cells.values()
            if c.is_register
        }
