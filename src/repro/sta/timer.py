"""The Timer: arrival/required propagation, slacks, and QoR summaries.

Timing is maintained *incrementally*: netlist edits hand the timer a
:class:`~repro.netlist.change.ChangeRecord` via :meth:`Timer.apply_change`,
which patches the cached timing graph in place and re-propagates only the
dirty cones — arrivals forward from the changed nodes, required times
backward — stopping at the frontier where recomputed values stop changing.
Because the incremental pass recomputes each node with exactly the same
arithmetic as a full pass, results are bit-identical; ``REPRO_STA_AUDIT=1``
(or ``Timer.audit_mode``) shadow-checks that equivalence after every patch
by rebuilding from scratch and comparing.  :meth:`Timer.dirty` remains the
blanket full-rebuild fallback.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field, replace

from repro import obs
from repro.library.cells import RegisterCell
from repro.library.library import Technology
from repro.netlist.change import ChangeRecord
from repro.netlist.db import Cell, Terminal
from repro.netlist.design import Design
from repro.sta.arraygraph import ArrayKernel
from repro.sta.graph import TimingGraph

_NEG_INF = float("-inf")
_POS_INF = float("inf")

AUDIT_ENV = "REPRO_STA_AUDIT"
KERNEL_ENV = "REPRO_STA_KERNEL"
KERNELS = ("array", "dict")


def _audit_env_enabled() -> bool:
    return os.environ.get(AUDIT_ENV, "") not in ("", "0")


def _kernel_from_env() -> str:
    """The propagation kernel selected by ``REPRO_STA_KERNEL`` (default
    ``array``; set ``dict`` to opt out of the vectorized kernel)."""
    val = os.environ.get(KERNEL_ENV, "").strip().lower()
    if not val:
        return "array"
    if val not in KERNELS:
        raise ValueError(
            f"{KERNEL_ENV}={val!r}: expected one of {', '.join(KERNELS)}"
        )
    return val


class TimingAuditError(AssertionError):
    """Incremental timing diverged from a from-scratch recompute."""


@dataclass(frozen=True, slots=True)
class EndpointSlack:
    """Setup slack at one timing endpoint (register D bit or output port)."""

    name: str
    slack: float

    @property
    def failing(self) -> bool:
        return self.slack < 0.0


@dataclass(frozen=True, slots=True)
class RegisterSlack:
    """The D/Q slack pair of one register cell, as Section 2 consumes it.

    ``d_slack``
        Worst setup slack over the register's connected D bits — margin of
        the paths *into* the register.
    ``q_slack``
        Worst downstream slack over the register's connected Q bits — margin
        of the paths *out of* it (the backward-propagated required-minus-
        arrival at Q).
    """

    cell_name: str
    d_slack: float
    q_slack: float


@dataclass(frozen=True, slots=True)
class TimingSummary:
    """Design-level QoR numbers matching Table 1's timing columns."""

    wns: float
    tns: float
    failing_endpoints: int
    total_endpoints: int


@dataclass
class TimerStats:
    """Incremental-timing effort counters (surfaced by ``--trace``).

    ``retimed_nodes`` accumulates across incremental passes;
    ``last_retimed_nodes`` is the most recent pass alone.  ``graph_nodes``
    is the graph size at the last propagation — the denominator that shows
    how small the dirty cones are.
    """

    full_timings: int = 0
    incremental_timings: int = 0
    changes_applied: int = 0
    retimed_nodes: int = 0
    last_retimed_nodes: int = 0
    graph_nodes: int = 0
    kernel_sweeps: int = 0  # vectorized level sweeps run by the array kernel

    def snapshot(self) -> "TimerStats":
        return replace(self)

    def publish(self) -> None:
        """Fold this stats object into the ``repro.obs`` metrics registry
        (gauges mirror the current values; the per-event counters are
        incremented at the propagation sites)."""
        reg = obs.get_registry()
        reg.gauge("sta.graph_nodes").set(self.graph_nodes)
        reg.gauge("sta.last_retimed_nodes").set(self.last_retimed_nodes)


@dataclass
class _TimingState:
    arrival: dict[int, float] = field(default_factory=dict)
    required: dict[int, float] = field(default_factory=dict)
    arrival_min: dict[int, float] | None = None  # computed lazily for hold


class Timer:
    """Setup-mode static timing over a placed design.

    ``clock_period`` is the single clock's period (gated clocks share it).
    ``skew`` maps register cell names to clock-arrival offsets — the useful
    skew of [5]: a positive offset delays the register's clock, relaxing its
    D-side check and tightening its Q-side launches.

    The timer is lazily evaluated.  Netlist edits should flow in through
    :meth:`apply_change` (scoped invalidation + dirty-cone retime on the
    next query); :meth:`dirty` is the coarse fallback that drops the graph
    and state entirely.
    """

    def __init__(
        self,
        design: Design,
        clock_period: float,
        skew: dict[str, float] | None = None,
        input_delay: float = 0.0,
        output_delay: float = 0.0,
        technology: Technology | None = None,
        audit_mode: bool | None = None,
        kernel: str | None = None,
    ) -> None:
        self.design = design
        self.clock_period = clock_period
        self.skew = dict(skew or {})
        self.input_delay = input_delay
        self.output_delay = output_delay
        self.tech = technology or design.library.technology
        self.audit_mode = _audit_env_enabled() if audit_mode is None else audit_mode
        if kernel is None:
            kernel = _kernel_from_env()
        elif kernel not in KERNELS:
            raise ValueError(
                f"unknown timing kernel {kernel!r}: expected one of "
                + ", ".join(KERNELS)
            )
        self.kernel = kernel
        self._kernel: ArrayKernel | None = None
        self.stats = TimerStats()
        self._graph: TimingGraph | None = None
        self._state: _TimingState | None = None
        self._dirty_fwd: set[int] = set()
        self._dirty_bwd: set[int] = set()
        self._audit_pending = False
        self._changed_cells: set[str] = set()
        self._changed_all = True

    # -- lifecycle -------------------------------------------------------------

    def dirty(self) -> None:
        """Invalidate cached timing entirely (full-rebuild fallback)."""
        self._graph = None
        self._kernel = None
        self._state = None
        self._dirty_fwd.clear()
        self._dirty_bwd.clear()
        self._audit_pending = False
        self._changed_all = True
        self._changed_cells.clear()

    def update(self) -> None:
        """Force evaluation now: flush pending dirt into the cached state."""
        self._compute()

    def drain_changed_cells(self) -> set[str] | None:
        """Cells with a pin whose arrival/required changed since the last drain.

        Forces evaluation first, so pending dirt is realized before the
        answer.  Returns ``None`` after any full (from-scratch) propagation —
        "everything may have changed" — and resets that flag, so consumers
        that react with their own full rebuild start a clean epoch.  The
        composition cache (:class:`repro.flow.session.EcoSession`) drains
        this to turn timing ripples into dirty registers.
        """
        self._compute()
        if self._changed_all:
            self._changed_all = False
            self._changed_cells.clear()
            return None
        out = self._changed_cells
        self._changed_cells = set()
        return out

    def apply_change(self, record: ChangeRecord) -> None:
        """Absorb a netlist edit: patch the graph, dirty the edit's cones.

        Also the authoritative point where skew entries of removed cells
        are purged — otherwise a stale offset could silently re-attach to
        a future cell that reuses the name.
        """
        for name in record.cells_removed:
            self.skew.pop(name, None)
        if record.is_empty:
            return
        self.stats.changes_applied += 1
        obs.get_registry().counter("sta.changes_applied").inc()
        if self._graph is None:
            return  # nothing cached; the next query builds fresh
        patch = self._graph.apply_change(record)
        if self._kernel is not None:
            self._kernel.apply_patch(patch)
        self._audit_pending = True
        if self._state is None:
            return  # graph is current again; state recomputes fully on query
        st = self._state
        for nid in patch.removed:
            st.arrival.pop(nid, None)
            st.required.pop(nid, None)
            if st.arrival_min is not None:
                st.arrival_min.pop(nid, None)
        self._dirty_fwd |= patch.dirty
        self._dirty_bwd |= patch.dirty

    def set_skew(self, cell_name: str, offset: float) -> None:
        """Assign a useful-skew clock offset to one register.

        No-op when the offset equals the installed value (absent entries
        count as 0.0), so speculative zero-assignments cost nothing.
        """
        if self.skew.get(cell_name, 0.0) == offset:
            return
        self.skew[cell_name] = offset
        self._invalidate_skew(cell_name)

    def set_skews(self, offsets: dict[str, float]) -> None:
        """Batch-assign skew offsets, skipping no-op entries."""
        for name, offset in offsets.items():
            self.set_skew(name, offset)

    def _invalidate_skew(self, cell_name: str) -> None:
        """Retime only the launch/capture cones of one register's skew."""
        if self._state is None or self._graph is None:
            return  # next query recomputes fully anyway
        g = self._graph
        pins = g.seed_pins(cell_name)
        if not pins:
            # Not in the graph: either the register has no connected bits
            # (skew is then timing-neutral) or the graph is out of sync —
            # fall back to a full recompute unless provably neutral.
            cell = self.design.cells.get(cell_name)
            if cell is not None and cell.is_register:
                self._state = None
                self._dirty_fwd.clear()
                self._dirty_bwd.clear()
            return
        for pin in pins:
            nid = id(pin)
            if nid in g.launch_by_id:
                self._dirty_fwd.add(nid)  # arrival seed at Q shifted
            if nid in g.capture_by_id:
                self._dirty_bwd.add(nid)  # required seed at D shifted
        self._audit_pending = True

    @property
    def graph(self) -> TimingGraph:
        if self._graph is None:
            self._graph = TimingGraph(self.design, self.tech)
        return self._graph

    def _ensure_kernel(self, g: TimingGraph) -> ArrayKernel:
        if self._kernel is None or self._kernel.graph is not g:
            self._kernel = ArrayKernel(g)
        return self._kernel

    def _clock_arrival(self, cell: Cell) -> float:
        return self.skew.get(cell.name, 0.0)

    # -- propagation ----------------------------------------------------------

    def _arrival_seed(self, g: TimingGraph, nid: int) -> float | None:
        entry = g.launch_by_id.get(nid)
        if entry is not None:
            return self._clock_arrival(entry[0]) + g.launch_delay[nid]
        if nid in g.input_ports_by_id:
            return self.input_delay
        return None

    def _required_seed(self, g: TimingGraph, nid: int) -> float | None:
        entry = g.capture_by_id.get(nid)
        if entry is not None:
            cell = entry[0]
            lc = cell.register_cell
            return self.clock_period + self._clock_arrival(cell) - lc.setup
        if nid in g.output_ports_by_id:
            return self.clock_period - self.output_delay
        return None

    def _full_state(self, g: TimingGraph) -> _TimingState:
        """From-scratch forward/backward propagation (also the audit oracle)."""
        st = _TimingState()

        # Forward: arrivals.
        for cell, q in g.launch_by_id.values():
            st.arrival[id(q)] = self._clock_arrival(cell) + g.launch_delay[id(q)]
        for port in g.input_ports_by_id.values():
            st.arrival[id(port)] = self.input_delay

        for node in g.topological_order():
            a = st.arrival.get(id(node), _NEG_INF)
            if a == _NEG_INF:
                continue
            for arc in g.fanout.get(id(node), ()):
                cand = a + arc.delay
                if cand > st.arrival.get(id(arc.dst), _NEG_INF):
                    st.arrival[id(arc.dst)] = cand

        # Backward: required times.
        for cell, d in g.capture_by_id.values():
            lc = cell.register_cell
            st.required[id(d)] = (
                self.clock_period + self._clock_arrival(cell) - lc.setup
            )
        for port in g.output_ports_by_id.values():
            st.required[id(port)] = self.clock_period - self.output_delay

        for node in reversed(g.topological_order()):
            r = st.required.get(id(node), _POS_INF)
            for arc in g.fanout.get(id(node), ()):
                r_dst = st.required.get(id(arc.dst), _POS_INF)
                if r_dst != _POS_INF:
                    r = min(r, r_dst - arc.delay)
            if r != _POS_INF:
                st.required[id(node)] = r

        return st

    # -- array-kernel propagation (bit-identical to the dict reference) ------

    def _arrival_seeds(self, k: ArrayKernel, g: TimingGraph, sentinel: float = _NEG_INF):
        """Per-slot arrival seeds (``sentinel`` = unseeded: ``-inf`` for the
        max sweep, ``+inf`` for the min sweep), same arithmetic as the dict
        pass."""
        seed = k.node_array(sentinel)
        for nid, (cell, _q) in g.launch_by_id.items():
            seed[k.slot(nid)] = self._clock_arrival(cell) + g.launch_delay[nid]
        for nid in g.input_ports_by_id:
            seed[k.slot(nid)] = self.input_delay
        return seed

    def _required_seeds(self, k: ArrayKernel, g: TimingGraph):
        seed = k.node_array(_POS_INF)
        for nid, (cell, _d) in g.capture_by_id.items():
            lc = cell.register_cell
            seed[k.slot(nid)] = (
                self.clock_period + self._clock_arrival(cell) - lc.setup
            )
        for nid in g.output_ports_by_id:
            seed[k.slot(nid)] = self.clock_period - self.output_delay
        return seed

    def _full_state_array(self, g: TimingGraph) -> _TimingState:
        """From-scratch propagation through the vectorized array kernel."""
        k = self._ensure_kernel(g)
        k.has_min = False
        st = _TimingState()
        st.arrival = k.full_forward(self._arrival_seeds(k, g))
        st.required = k.full_backward(self._required_seeds(k, g))
        self.stats.kernel_sweeps += 2
        return st

    def _compute(self) -> _TimingState:
        if (
            self._state is not None
            and not self._dirty_fwd
            and not self._dirty_bwd
        ):
            return self._state
        g = self.graph
        if self._state is None:
            with obs.span("sta.full_timing", cat="sta") as sp:
                if self.kernel == "array":
                    self._state = self._full_state_array(g)
                else:
                    self._state = self._full_state(g)
                sp.set(graph_nodes=g.node_count)
            self._dirty_fwd.clear()
            self._dirty_bwd.clear()
            self._changed_all = True
            self._changed_cells.clear()
            self.stats.full_timings += 1
            self.stats.graph_nodes = g.node_count
            obs.get_registry().counter("sta.full_timings").inc()
            self.stats.publish()
        else:
            with obs.span("sta.retime", cat="sta") as sp:
                self._retime(g)
                sp.set(
                    retimed_nodes=self.stats.last_retimed_nodes,
                    graph_nodes=self.stats.graph_nodes,
                )
        if self._audit_pending:
            if self.audit_mode:
                self._audit(g)
            self._audit_pending = False
        return self._state

    def _retime(self, g: TimingGraph) -> None:
        """Drain the dirty sets: levelized re-propagation of both cones.

        Each node is recomputed from its full fanin (arrival) or fanout
        (required) plus its seed — the same max/min the batch pass
        evaluates — so values match a full recompute bit for bit, and the
        wave stops as soon as recomputed values equal the cached ones.
        The array kernel runs the identical wavefront as masked per-level
        batches (:meth:`~repro.sta.arraygraph.ArrayKernel.retime`).
        """
        if self.kernel == "array":
            touched = self._ensure_kernel(g).retime(self)
        else:
            touched = self._retime_dict(g)
        self._dirty_fwd.clear()
        self._dirty_bwd.clear()
        self.stats.incremental_timings += 1
        self.stats.retimed_nodes += touched
        self.stats.last_retimed_nodes = touched
        self.stats.graph_nodes = g.node_count
        reg = obs.get_registry()
        reg.counter("sta.incremental_timings").inc()
        reg.counter("sta.retimed_nodes").inc(touched)
        if g.node_count:
            reg.histogram(
                "sta.retime.cone_fraction", obs.FRACTION_BUCKETS
            ).observe(touched / g.node_count)
        self.stats.publish()

    def _retime_dict(self, g: TimingGraph) -> int:
        """The per-node reference wavefront over the dict state."""
        st = self._state
        assert st is not None
        levels = g.levels()
        track_min = st.arrival_min is not None
        touched: set[int] = set()

        def note_changed(nid: int) -> None:
            # Record the owning cell of a node whose value actually changed;
            # drained by drain_changed_cells() for register-level consumers.
            cell = getattr(g._nodes.get(nid), "cell", None)
            if cell is not None:
                self._changed_cells.add(cell.name)

        # Forward cone: arrivals ascend by level.
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()

        def push_fwd(nid: int) -> None:
            if nid not in queued:
                queued.add(nid)
                heapq.heappush(heap, (levels.get(nid, 0), nid))

        for nid in self._dirty_fwd:
            if g.contains(nid):
                push_fwd(nid)
            else:  # node left the graph: drop any lingering state
                st.arrival.pop(nid, None)
                st.required.pop(nid, None)
                if track_min:
                    st.arrival_min.pop(nid, None)
        while heap:
            _, nid = heapq.heappop(heap)
            queued.discard(nid)
            touched.add(nid)
            changed = False
            seed = self._arrival_seed(g, nid)
            best = seed
            for arc in g.fanin.get(nid, ()):
                a = st.arrival.get(id(arc.src))
                if a is not None:
                    cand = a + arc.delay
                    if best is None or cand > best:
                        best = cand
            if best != st.arrival.get(nid):
                if best is None:
                    st.arrival.pop(nid, None)
                else:
                    st.arrival[nid] = best
                changed = True
            if track_min:
                worst = seed
                for arc in g.fanin.get(nid, ()):
                    a = st.arrival_min.get(id(arc.src))
                    if a is not None:
                        cand = a + arc.delay
                        if worst is None or cand < worst:
                            worst = cand
                if worst != st.arrival_min.get(nid):
                    if worst is None:
                        st.arrival_min.pop(nid, None)
                    else:
                        st.arrival_min[nid] = worst
                    changed = True
            if changed:
                note_changed(nid)
                for arc in g.fanout.get(nid, ()):
                    push_fwd(id(arc.dst))

        # Backward cone: required times descend by level.
        heap.clear()
        queued.clear()

        def push_bwd(nid: int) -> None:
            if nid not in queued:
                queued.add(nid)
                heapq.heappush(heap, (-levels.get(nid, 0), nid))

        for nid in self._dirty_bwd:
            if g.contains(nid):
                push_bwd(nid)
            else:
                st.arrival.pop(nid, None)
                st.required.pop(nid, None)
                if track_min:
                    st.arrival_min.pop(nid, None)
        while heap:
            _, nid = heapq.heappop(heap)
            queued.discard(nid)
            touched.add(nid)
            seed = self._required_seed(g, nid)
            best = seed
            for arc in g.fanout.get(nid, ()):
                r = st.required.get(id(arc.dst))
                if r is not None:
                    cand = r - arc.delay
                    if best is None or cand < best:
                        best = cand
            if best != st.required.get(nid):
                if best is None:
                    st.required.pop(nid, None)
                else:
                    st.required[nid] = best
                note_changed(nid)
                for arc in g.fanin.get(nid, ()):
                    push_bwd(id(arc.src))

        return len(touched)

    # -- audit ---------------------------------------------------------------

    def _audit(self, g: TimingGraph) -> None:
        """Shadow-run a from-scratch build+propagation and assert equality."""
        fresh = TimingGraph(self.design, self.tech)

        def arc_multiset(graph: TimingGraph) -> dict:
            counts: dict[tuple[int, int, float], int] = {}
            for arcs in graph.fanout.values():
                for arc in arcs:
                    key = (id(arc.src), id(arc.dst), arc.delay)
                    counts[key] = counts.get(key, 0) + 1
            return counts

        mismatches: list[str] = []
        if arc_multiset(g) != arc_multiset(fresh):
            mismatches.append("arc set")
        if g.launch_delay != fresh.launch_delay:
            mismatches.append("launch delays")
        if set(g.launch_by_id) != set(fresh.launch_by_id):
            mismatches.append("launch pins")
        if set(g.capture_by_id) != set(fresh.capture_by_id):
            mismatches.append("capture pins")
        if set(g.input_ports_by_id) != set(fresh.input_ports_by_id):
            mismatches.append("input ports")
        if set(g.output_ports_by_id) != set(fresh.output_ports_by_id):
            mismatches.append("output ports")

        st = self._state
        assert st is not None
        oracle = self._full_state(fresh)
        if st.arrival != oracle.arrival:
            mismatches.append("arrivals")
        if st.required != oracle.required:
            mismatches.append("required times")
        if st.arrival_min is not None:
            if st.arrival_min != self._min_arrivals(fresh):
                mismatches.append("min arrivals")
        if mismatches:
            raise TimingAuditError(
                "incremental timing diverged from full recompute: "
                + ", ".join(mismatches)
            )

    # -- queries ------------------------------------------------------------------

    def slack_at(self, terminal: Terminal) -> float | None:
        """Setup slack at a terminal, ``None`` when unconstrained."""
        st = self._compute()
        a = st.arrival.get(id(terminal))
        r = st.required.get(id(terminal))
        if a is None or r is None:
            return None
        return r - a

    def arrival_at(self, terminal: Terminal) -> float | None:
        return self._compute().arrival.get(id(terminal))

    def endpoint_slacks(self) -> list[EndpointSlack]:
        """Slack at every constrained endpoint (register D bits, output ports)."""
        st = self._compute()
        out: list[EndpointSlack] = []
        for _cell, d in self.graph.capture_by_id.values():
            a = st.arrival.get(id(d))
            if a is None:
                continue  # D tied off / undriven: unconstrained
            out.append(EndpointSlack(d.full_name, st.required[id(d)] - a))
        for port in self.graph.output_ports_by_id.values():
            a = st.arrival.get(id(port))
            if a is None:
                continue
            out.append(EndpointSlack(port.name, st.required[id(port)] - a))
        # Name order, not graph order: keeps TNS summation bit-identical
        # between a fresh build and an incrementally patched graph.
        out.sort(key=lambda e: e.name)
        return out

    def summary(self) -> TimingSummary:
        slacks = self.endpoint_slacks()
        neg = [e.slack for e in slacks if e.failing]
        return TimingSummary(
            wns=min((e.slack for e in slacks), default=0.0),
            tns=sum(neg),
            failing_endpoints=len(neg),
            total_endpoints=len(slacks),
        )

    # -- hold (min-delay) analysis ------------------------------------------------------

    def _min_arrivals(self, g: TimingGraph) -> dict[int, float]:
        """Earliest arrivals (shortest paths) over one graph."""
        arrival_min: dict[int, float] = {}
        for cell, q in g.launch_by_id.values():
            arrival_min[id(q)] = self._clock_arrival(cell) + g.launch_delay[id(q)]
        for port in g.input_ports_by_id.values():
            arrival_min[id(port)] = self.input_delay
        for node in g.topological_order():
            a = arrival_min.get(id(node))
            if a is None:
                continue
            for arc in g.fanout.get(id(node), ()):
                cand = a + arc.delay
                prev = arrival_min.get(id(arc.dst))
                if prev is None or cand < prev:
                    arrival_min[id(arc.dst)] = cand
        return arrival_min

    def _compute_min_arrivals(self) -> dict[int, float]:
        """Earliest arrivals, cached on the state (and retimed with it)."""
        st = self._compute()
        if st.arrival_min is not None:
            return st.arrival_min
        if self.kernel == "array":
            g = self.graph
            k = self._ensure_kernel(g)
            st.arrival_min = k.full_forward(
                self._arrival_seeds(k, g, _POS_INF), minimize=True
            )
            self.stats.kernel_sweeps += 1
        else:
            st.arrival_min = self._min_arrivals(self.graph)
        return st.arrival_min

    def hold_slacks(self) -> list[EndpointSlack]:
        """Hold slack at every register D bit.

        With an ideal clock plus per-register skew, data launched at the
        capturing edge must arrive no earlier than the capture clock plus
        the hold requirement: ``slack = min_arrival(D) - skew(capture) -
        t_hold``.  Composition and useful skew must not create hold
        violations; the flow benchmarks check this stays clean.
        """
        arrival_min = self._compute_min_arrivals()
        out: list[EndpointSlack] = []
        for cell, d in self.graph.capture_by_id.values():
            a = arrival_min.get(id(d))
            if a is None:
                continue
            lc = cell.register_cell
            slack = a - self._clock_arrival(cell) - lc.hold
            out.append(EndpointSlack(d.full_name, slack))
        out.sort(key=lambda e: e.name)  # order-independent TNS (see above)
        return out

    def hold_summary(self) -> TimingSummary:
        """WNS/TNS/violation counts for the hold (min-delay) check."""
        slacks = self.hold_slacks()
        neg = [e.slack for e in slacks if e.failing]
        return TimingSummary(
            wns=min((e.slack for e in slacks), default=0.0),
            tns=sum(neg),
            failing_endpoints=len(neg),
            total_endpoints=len(slacks),
        )

    # -- register-centric queries ----------------------------------------------------

    def register_slack(self, cell: Cell) -> RegisterSlack:
        """The (D, Q) slack pair of a register cell (Section 2's inputs).

        Unconstrained sides report +inf; the compatibility logic treats them
        as "anything goes" on that side.
        """
        if not isinstance(cell.libcell, RegisterCell):
            raise TypeError(f"{cell.name} is not a register")
        st = self._compute()
        lc = cell.libcell
        d_slack = _POS_INF
        q_slack = _POS_INF
        for bit in range(lc.width_bits):
            d = cell.pins.get(lc.d_pin(bit))
            if d is not None and d.net is not None:
                a = st.arrival.get(id(d))
                r = st.required.get(id(d))
                if a is not None and r is not None:
                    d_slack = min(d_slack, r - a)
            q = cell.pins.get(lc.q_pin(bit))
            if q is not None and q.net is not None:
                a = st.arrival.get(id(q))
                r = st.required.get(id(q))
                if a is not None and r is not None:
                    q_slack = min(q_slack, r - a)
        return RegisterSlack(cell.name, d_slack, q_slack)

    def register_slacks(self) -> dict[str, RegisterSlack]:
        """D/Q slack pairs for every register in the design."""
        return {
            c.name: self.register_slack(c)
            for c in self.design.cells.values()
            if c.is_register
        }
