"""Geometry kernel used throughout the MBR composition flow.

The composition algorithms of the paper manipulate simple planar geometry:

* rectangles, for cell footprints, net bounding boxes, and the
  timing-feasible placement regions of Section 2;
* convex polygons, for the "test polygon" of Section 3.2 that determines
  the placement-aware candidate weights;
* point-in-polygon tests, to count blocking registers.

Everything here is pure Python over floats, with Manhattan (half-perimeter)
distances, since placement and wire-length estimation in the paper are
Manhattan-metric throughout.
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect
from repro.geometry.hull import convex_hull, polygon_area, point_in_convex_polygon
from repro.geometry.region import FeasibleRegion

__all__ = [
    "Point",
    "manhattan",
    "Rect",
    "convex_hull",
    "polygon_area",
    "point_in_convex_polygon",
    "FeasibleRegion",
]
