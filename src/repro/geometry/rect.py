"""Axis-aligned rectangles: cell footprints, bounding boxes, feasible regions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``.

    Degenerate rectangles (zero width and/or height) are allowed: a point is
    the degenerate rectangle of a fully constrained placement, which Section 2
    of the paper uses for negative-slack registers that cannot move.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"malformed Rect: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given dimensions centered on ``center``."""
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @staticmethod
    def from_points(points: list[Point]) -> "Rect":
        """The bounding box of a non-empty list of points."""
        if not points:
            raise ValueError("bounding box of an empty point set is undefined")
        return Rect(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    @staticmethod
    def point(p: Point) -> "Rect":
        """The degenerate rectangle containing exactly ``p``."""
        return Rect(p.x, p.y, p.x, p.y)

    # -- basic properties --------------------------------------------------

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def half_perimeter(self) -> float:
        """HPWL contribution of this box: width + height."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def corners(self) -> list[Point]:
        """The four corner points (degenerate corners may coincide)."""
        return [
            Point(self.xlo, self.ylo),
            Point(self.xhi, self.ylo),
            Point(self.xhi, self.yhi),
            Point(self.xlo, self.yhi),
        ]

    # -- predicates --------------------------------------------------------

    def contains_point(self, p: Point, tol: float = 0.0) -> bool:
        """Whether ``p`` lies inside the closed rectangle (± ``tol``)."""
        return (
            self.xlo - tol <= p.x <= self.xhi + tol
            and self.ylo - tol <= p.y <= self.yhi + tol
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """Whether the closed rectangles share at least a point."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    # -- combinators -------------------------------------------------------

    def intersect(self, other: "Rect") -> "Rect | None":
        """The intersection rectangle, or ``None`` when disjoint."""
        xlo = max(self.xlo, other.xlo)
        ylo = max(self.ylo, other.ylo)
        xhi = min(self.xhi, other.xhi)
        yhi = min(self.yhi, other.yhi)
        if xhi < xlo or yhi < ylo:
            return None
        return Rect(xlo, ylo, xhi, yhi)

    def union_bbox(self, other: "Rect") -> "Rect":
        """The bounding box of both rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side (clamped to a point)."""
        xlo = self.xlo - margin
        ylo = self.ylo - margin
        xhi = self.xhi + margin
        yhi = self.yhi + margin
        if xhi < xlo:
            xlo = xhi = (xlo + xhi) / 2.0
        if yhi < ylo:
            ylo = yhi = (ylo + yhi) / 2.0
        return Rect(xlo, ylo, xhi, yhi)

    def clamp_point(self, p: Point) -> Point:
        """The point of this rectangle nearest to ``p`` (Manhattan = Euclidean
        for axis-aligned clamping)."""
        return Point(
            min(max(p.x, self.xlo), self.xhi),
            min(max(p.y, self.ylo), self.yhi),
        )

    def manhattan_to_point(self, p: Point) -> float:
        """Manhattan distance from ``p`` to the rectangle (0 when inside)."""
        return p.manhattan_to(self.clamp_point(p))


def bounding_box(rects: list[Rect]) -> Rect:
    """Bounding box of a non-empty list of rectangles."""
    if not rects:
        raise ValueError("bounding box of an empty rectangle set is undefined")
    return Rect(
        min(r.xlo for r in rects),
        min(r.ylo for r in rects),
        max(r.xhi for r in rects),
        max(r.yhi for r in rects),
    )


def intersect_all(rects: list[Rect]) -> Rect | None:
    """Intersection of a non-empty list of rectangles (``None`` when empty).

    Single pass over the bounds: the running intersection is empty at some
    step iff the final running bounds are empty, so no intermediate ``Rect``
    objects are materialized (this sits on the candidate-validation hot path).
    """
    if not rects:
        raise ValueError("intersection of an empty rectangle set is undefined")
    first = rects[0]
    xlo, ylo, xhi, yhi = first.xlo, first.ylo, first.xhi, first.yhi
    for r in rects[1:]:
        if r.xlo > xlo:
            xlo = r.xlo
        if r.ylo > ylo:
            ylo = r.ylo
        if r.xhi < xhi:
            xhi = r.xhi
        if r.yhi < yhi:
            yhi = r.yhi
    if xhi < xlo or yhi < ylo:
        return None
    return Rect(xlo, ylo, xhi, yhi)
