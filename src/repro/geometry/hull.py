"""Convex hulls and point-in-polygon tests for candidate-MBR weighting.

Section 3.2 of the paper defines, for every candidate MBR, a *test polygon*:
the convex hull of the outer corner points of the registers the candidate
would merge.  Registers whose center lies inside that polygon — and that are
not themselves part of the candidate — count as *blocking* registers and
drive the weight formula.
"""

from __future__ import annotations

from repro.geometry.point import Point

__all__ = ["convex_hull", "hull_xy", "polygon_area", "point_in_convex_polygon"]


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of the cross product (a - o) x (b - o)."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def hull_xy(points: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Monotone-chain core over raw ``(x, y)`` tuples.

    The tuple twin of :func:`convex_hull` — same dedup, same lexicographic
    sort, same cross-product arithmetic, so the two can never disagree on a
    vertex.  Hot paths (the candidate-weight pass builds thousands of test
    polygons per compose) call this directly to skip Point construction.
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return pts

    lower: list[tuple[float, float]] = []
    for p in pts:
        px, py = p
        while len(lower) >= 2:
            ox, oy = lower[-2]
            ax, ay = lower[-1]
            if (ax - ox) * (py - oy) - (ay - oy) * (px - ox) <= 0:
                lower.pop()
            else:
                break
        lower.append(p)

    upper: list[tuple[float, float]] = []
    for p in reversed(pts):
        px, py = p
        while len(upper) >= 2:
            ox, oy = upper[-2]
            ax, ay = upper[-1]
            if (ax - ox) * (py - oy) - (ay - oy) * (px - ox) <= 0:
                upper.pop()
            else:
                break
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # all input points collinear
        return [pts[0], pts[-1]]
    return hull


def convex_hull(points: list[Point]) -> list[Point]:
    """Convex hull via Andrew's monotone chain, in counter-clockwise order.

    Collinear points on the hull boundary are dropped, so the result is the
    minimal vertex set.  Degenerate inputs are handled: a single point or a
    set of collinear points returns the (deduplicated) extreme points, which
    still works with :func:`point_in_convex_polygon`.
    """
    return [Point(x, y) for x, y in hull_xy([(p.x, p.y) for p in points])]


def polygon_area(polygon: list[Point]) -> float:
    """Signed shoelace area; positive for counter-clockwise vertex order."""
    if len(polygon) < 3:
        return 0.0
    area = 0.0
    n = len(polygon)
    for i in range(n):
        a = polygon[i]
        b = polygon[(i + 1) % n]
        area += a.x * b.y - b.x * a.y
    return area / 2.0


def point_in_convex_polygon(
    p: Point, polygon: list[Point], include_boundary: bool = True, eps: float = 1e-9
) -> bool:
    """Whether ``p`` lies inside a convex polygon given in CCW order.

    ``include_boundary`` controls whether boundary points count as inside.
    The paper counts a register as blocking when its *center is inside* the
    test polygon; we treat the boundary as inside by default, the conservative
    choice (a register touching the hull boundary still competes for the
    routing resources of the region).  ``eps`` absorbs floating-point noise
    in the cross products — points within ``eps`` of an edge's supporting
    line count as boundary points.

    Degenerate polygons are supported: a segment (2 vertices) contains only
    its boundary points, a single vertex contains only itself.
    """
    if not polygon:
        return False
    if len(polygon) == 1:
        on_vertex = (
            abs(p.x - polygon[0].x) <= eps and abs(p.y - polygon[0].y) <= eps
        )
        return on_vertex and include_boundary
    if len(polygon) == 2:
        a, b = polygon
        scale = max(abs(b.x - a.x), abs(b.y - a.y), 1.0)
        if abs(_cross(a, b, p)) > eps * scale:
            return False
        within = (
            min(a.x, b.x) - eps <= p.x <= max(a.x, b.x) + eps
            and min(a.y, b.y) - eps <= p.y <= max(a.y, b.y) + eps
        )
        return within and include_boundary

    on_boundary = False
    for i in range(len(polygon)):
        a = polygon[i]
        b = polygon[(i + 1) % len(polygon)]
        scale = max(abs(b.x - a.x), abs(b.y - a.y), 1.0)
        side = _cross(a, b, p)
        if side < -eps * scale:
            return False
        if side <= eps * scale:
            # On (or within eps of) the supporting line of this edge; for a
            # convex CCW polygon that passed every other side test, this is
            # a boundary point.
            on_boundary = True
    return include_boundary if on_boundary else True
