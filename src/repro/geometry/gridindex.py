"""Shared spatial index for the flow's neighbor queries.

Three places in the flow risk quadratic neighbor scans — compatibility-pair
generation over feasible-region rectangles, the legalizer's free-gap search
along a row, and CTS's per-domain sink collection.  This module centralizes
the two structures they reduce to:

* :class:`GridBinIndex` — a uniform grid hash over axis-aligned rectangles
  with duplicate-free candidate-pair enumeration and rectangle queries;
* :class:`RowIntervals` — sorted, disjoint occupied intervals on one row
  with a bisect-based nearest-free-gap search whose cost is bounded by the
  distance to the answer, not by the number of intervals in the row.

Both are deliberately deterministic: pair enumeration follows bucket
insertion order, and gap search breaks ties toward the leftmost placement,
so swapping them in under an existing caller is a pure performance change.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Iterable, Iterator


class GridBinIndex:
    """Uniform grid hash over axis-aligned rectangles.

    Rectangles are added with :meth:`add` and receive consecutive integer
    indices.  :meth:`candidate_pairs` yields every pair of rectangles whose
    grid bins intersect (a superset of the truly-overlapping pairs —
    callers apply their own exact predicate), each pair exactly once.
    """

    __slots__ = ("cell_size", "buckets", "spans")

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        self.spans: list[tuple[int, int, int, int]] = []

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, xlo: float, ylo: float, xhi: float, yhi: float) -> int:
        """Insert a rectangle; returns its index (insertion order)."""
        cs = self.cell_size
        bx0, bx1 = int(xlo // cs), int(xhi // cs)
        by0, by1 = int(ylo // cs), int(yhi // cs)
        idx = len(self.spans)
        self.spans.append((bx0, by0, bx1, by1))
        buckets = self.buckets
        for bx in range(bx0, bx1 + 1):
            for by in range(by0, by1 + 1):
                buckets[(bx, by)].append(idx)
        return idx

    def candidate_pairs(self) -> Iterator[tuple[int, int]]:
        """Index pairs whose rectangles may overlap, each emitted once.

        Two rectangles' shared bins form a rectangle of bins whose lowest-
        indexed corner is the componentwise max of their lower bin bounds;
        each pair is emitted from exactly that bin.  This keeps
        deduplication O(1) per encounter with no pair-sized ``seen`` set —
        memory stays O(bins + rectangles) however many bins a pair shares.
        """
        spans = self.spans
        for (bx, by), members in self.buckets.items():
            for i_pos, i in enumerate(members):
                ix0, iy0, _, _ = spans[i]
                for j in members[i_pos + 1 :]:
                    jx0, jy0, _, _ = spans[j]
                    if bx == max(ix0, jx0) and by == max(iy0, jy0):
                        yield (i, j) if i < j else (j, i)

    def query(self, xlo: float, ylo: float, xhi: float, yhi: float) -> Iterator[int]:
        """Indices of rectangles whose bins intersect the query window.

        A superset of the true overlaps (bin-granular), each index at most
        once, in first-encounter order scanning bins column-major.
        """
        cs = self.cell_size
        buckets = self.buckets
        seen: set[int] = set()
        for bx in range(int(xlo // cs), int(xhi // cs) + 1):
            for by in range(int(ylo // cs), int(yhi // cs) + 1):
                for idx in buckets.get((bx, by), ()):
                    if idx not in seen:
                        seen.add(idx)
                        yield idx


class RowIntervals:
    """Occupied site intervals of one row, kept sorted and disjoint.

    :meth:`occupy` merges overlapping or touching intervals on insert, so
    ``starts``/``ends`` always describe the occupied set exactly; the free
    gaps are then the complements between consecutive intervals, and
    :meth:`nearest_gap` finds the best one by expanding outward from the
    gap nearest the desired site — O(log n + gaps inspected), where the
    inspected gaps are bounded by the displacement of the answer.
    """

    __slots__ = ("starts", "ends")

    def __init__(self) -> None:
        self.starts: list[int] = []
        self.ends: list[int] = []

    def occupy(self, lo: int, hi: int) -> None:
        """Mark [lo, hi) occupied, merging with any neighbors it touches."""
        starts, ends = self.starts, self.ends
        i = bisect.bisect_left(starts, lo)
        if i > 0 and ends[i - 1] >= lo:
            i -= 1
            lo = starts[i]
        j = i
        while j < len(starts) and starts[j] <= hi:
            hi = max(hi, ends[j])
            j += 1
        starts[i:j] = [lo]
        ends[i:j] = [hi]

    def fits(self, lo: int, hi: int) -> bool:
        """Whether [lo, hi) is entirely free."""
        starts, ends = self.starts, self.ends
        i = bisect.bisect_right(starts, lo) - 1
        if i >= 0 and ends[i] > lo:
            return False
        if i + 1 < len(starts) and starts[i + 1] < hi:
            return False
        return True

    def intervals(self) -> Iterable[tuple[int, int]]:
        return zip(self.starts, self.ends)

    def nearest_gap(self, desired: int, width: int, limit: int) -> int | None:
        """Start site of the ``width``-wide free placement nearest
        ``desired`` within ``[0, limit)``; ties go to the leftmost
        placement.  ``None`` when no gap is wide enough.
        """
        starts, ends = self.starts, self.ends
        n = len(starts)
        best_cost: int | None = None
        best_x: int | None = None

        def consider(k: int) -> None:
            nonlocal best_cost, best_x
            lo = ends[k - 1] if k > 0 else 0
            hi = starts[k] if k < n else limit
            if hi - lo < width:
                return
            x = min(max(desired, lo), hi - width)
            cost = abs(x - desired)
            if best_cost is None or cost < best_cost or (cost == best_cost and x < best_x):
                best_cost, best_x = cost, x

        # Gap k separates interval k-1 from interval k (k = 0..n, with the
        # row edges closing the ends).  Start at the gap at/right of
        # ``desired`` and expand outward; each direction stops once even the
        # nearest point of its next gap cannot beat the best found.
        k0 = bisect.bisect_right(starts, desired)
        consider(k0)
        left, right = k0 - 1, k0 + 1
        while True:
            moved = False
            if left >= 0:
                # Every gap left of k0 ends at starts[left] <= desired, so
                # any placement in it costs at least desired - hi + width.
                if best_cost is not None and desired - starts[left] + width > best_cost:
                    left = -1
                else:
                    consider(left)
                    left -= 1
                    moved = True
            if right <= n:
                # Every gap right of k0 begins at ends[right-1] > desired,
                # costing exactly lo - desired; a tie loses to the left.
                if best_cost is not None and ends[right - 1] - desired >= best_cost:
                    right = n + 1
                else:
                    consider(right)
                    right += 1
                    moved = True
            if not moved:
                return best_x
