"""2-D points with the Manhattan metric used by placement and timing."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the placement plane (microns)."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points.

    Wire-length and timing-feasible-region computations in the paper are all
    Manhattan-metric, matching routed-wire behaviour on a grid.
    """
    return a.manhattan_to(b)


def centroid(points: list[Point]) -> Point:
    """Arithmetic mean of a non-empty list of points."""
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    n = float(len(points))
    return Point(sum(p.x for p in points) / n, sum(p.y for p in points) / n)
