"""Timing-feasible placement regions (Section 2 of the paper).

For each register pin with positive timing slack, the slack converts to an
equivalent Manhattan distance the pin can move without creating a violation.
The per-pin feasible region is a rectangle (the Manhattan diamond's bounding
box, following the rectangle-based region algebra of INTEGRA [9]) around the
pin's net anchor.  A cell's feasible region is the intersection of its pins'
regions; two registers are *placement compatible* when their regions overlap.

Negative-slack pins restrict the region to the intersection of the violating
net's bounding box with the regions of the other pins, degenerating to the
cell footprint when that intersection is empty — the cell cannot move, but it
still offers its own footprint as a region other registers may move into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.rect import Rect, intersect_all


@dataclass(frozen=True, slots=True)
class FeasibleRegion:
    """The timing-feasible placement region of a register (or candidate MBR).

    ``rect``
        The rectangular region where the register's origin may be placed
        without creating a new timing violation.
    ``pinned``
        True when negative slack (or designer constraints) anchors the cell:
        the region equals the cell footprint and the cell itself must not
        move, although *other* registers may still merge into this region.
    """

    rect: Rect
    pinned: bool = False

    def overlaps(self, other: "FeasibleRegion") -> bool:
        """Placement compatibility test between two regions.

        Two pinned regions never merge (neither cell can move to the other),
        so they are placement-incompatible even if their footprints touch.
        """
        if self.pinned and other.pinned:
            return False
        return self.rect.overlaps(other.rect)

    def intersect(self, other: "FeasibleRegion") -> "FeasibleRegion | None":
        """Common region of two compatible registers (``None`` if disjoint)."""
        common = self.rect.intersect(other.rect)
        if common is None:
            return None
        return FeasibleRegion(common, pinned=self.pinned or other.pinned)


def common_region(regions: list[FeasibleRegion]) -> FeasibleRegion | None:
    """Shared feasible region of a group of registers, or ``None``.

    A candidate MBR is only placeable when every constituent register's
    feasible region shares a common rectangle; at most one constituent may be
    pinned (two pinned registers cannot co-locate).
    """
    if not regions:
        raise ValueError("common region of an empty group is undefined")
    if sum(1 for r in regions if r.pinned) > 1:
        return None
    rect = intersect_all([r.rect for r in regions])
    if rect is None:
        return None
    return FeasibleRegion(rect, pinned=any(r.pinned for r in regions))


@dataclass(slots=True)
class SlackToDistance:
    """Conversion between timing slack and Manhattan move distance.

    The paper transforms "the positive timing slack of the input D and output
    Q pins to an equivalent distance that it can move without causing a
    timing violation".  With a linear wire-delay model of ``delay_per_micron``
    seconds of extra path delay per micron of added Manhattan wire length,
    a slack of ``s`` seconds allows a move of ``s / delay_per_micron``
    microns.  ``max_distance`` caps the region so enormous slacks do not
    produce die-sized regions (which would defeat the *nearby* register
    intent and blow up the compatibility graph).
    """

    delay_per_micron: float
    max_distance: float = field(default=float("inf"))

    def distance(self, slack: float) -> float:
        """Move budget in microns for a given slack (0 for negative slack)."""
        if slack <= 0.0:
            return 0.0
        if self.delay_per_micron <= 0.0:
            return self.max_distance
        return min(slack / self.delay_per_micron, self.max_distance)
