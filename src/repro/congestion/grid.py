"""Directional RUDY congestion grid and overflow-edge counting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class CongestionReport:
    """Summary of one congestion analysis."""

    overflow_edges: int
    total_edges: int
    max_usage_ratio: float
    mean_usage_ratio: float

    @property
    def overflow_fraction(self) -> float:
        return self.overflow_edges / self.total_edges if self.total_edges else 0.0


class CongestionGrid:
    """A global-routing grid with directional demand estimation.

    The die is cut into ``bins_x`` x ``bins_y`` g-cells.  Vertical grid edges
    (between horizontally adjacent g-cells) carry horizontal wires; their
    capacity is ``tracks_per_um * bin_height``.  A net whose bounding box
    spans a vertical edge contributes crossing demand equal to the fraction
    of its box height overlapping that edge's g-cell row (and symmetrically
    for horizontal edges / vertical wires).  Overflow edges are those whose
    demand exceeds capacity — the paper's Table 1 metric.
    """

    def __init__(
        self,
        die: Rect,
        bins_x: int = 24,
        bins_y: int = 24,
        tracks_per_um: float = 8.0,
    ) -> None:
        if bins_x < 2 or bins_y < 2:
            raise ValueError("need at least a 2x2 grid to have edges")
        self.die = die
        self.bins_x = bins_x
        self.bins_y = bins_y
        self.bin_w = die.width / bins_x
        self.bin_h = die.height / bins_y
        self.tracks_per_um = tracks_per_um
        # usage_v[i, j]: crossing demand over the vertical boundary between
        # g-cells (i, j) and (i+1, j); usage_h[i, j] between (i, j), (i, j+1).
        self.usage_v = np.zeros((bins_x - 1, bins_y), dtype=float)
        self.usage_h = np.zeros((bins_x, bins_y - 1), dtype=float)

    # -- demand accumulation ---------------------------------------------------

    def add_net_box(self, box: Rect, weight: float = 1.0) -> None:
        """Add one net's bounding box to the demand model."""
        if box.width <= 0 and box.height <= 0:
            return
        self._add_directional(box, weight, horizontal=True)
        self._add_directional(box, weight, horizontal=False)

    def _overlap_fractions(self, lo: float, hi: float, origin: float, size: float, n: int):
        """Per-bin overlap fraction of span [lo, hi] with each of n bins.

        For a degenerate span (lo == hi) the single containing bin gets 1.0.
        """
        frac = np.zeros(n, dtype=float)
        if hi <= lo:
            b = int(min(max((lo - origin) / size, 0), n - 1))
            frac[b] = 1.0
            return frac
        b0 = int(max(np.floor((lo - origin) / size), 0))
        b1 = int(min(np.ceil((hi - origin) / size), n))
        span = hi - lo
        for b in range(b0, b1):
            bin_lo = origin + b * size
            bin_hi = bin_lo + size
            overlap = min(hi, bin_hi) - max(lo, bin_lo)
            if overlap > 0:
                frac[b] = overlap / span
        return frac

    def _add_directional(self, box: Rect, weight: float, horizontal: bool) -> None:
        if horizontal:
            # Horizontal wires cross vertical boundaries strictly inside the box.
            y_frac = self._overlap_fractions(
                box.ylo, box.yhi, self.die.ylo, self.bin_h, self.bins_y
            )
            for i in range(self.bins_x - 1):
                bx = self.die.xlo + (i + 1) * self.bin_w
                if box.xlo < bx < box.xhi:
                    self.usage_v[i, :] += weight * y_frac
        else:
            x_frac = self._overlap_fractions(
                box.xlo, box.xhi, self.die.xlo, self.bin_w, self.bins_x
            )
            for j in range(self.bins_y - 1):
                by = self.die.ylo + (j + 1) * self.bin_h
                if box.ylo < by < box.yhi:
                    self.usage_h[:, j] += weight * x_frac

    @staticmethod
    def of_design(
        design: Design,
        bins_x: int = 24,
        bins_y: int = 24,
        tracks_per_um: float = 8.0,
    ) -> "CongestionGrid":
        grid = CongestionGrid(design.die, bins_x, bins_y, tracks_per_um)
        for net in design.nets.values():
            box = net.bbox()
            if box is not None and net.num_pins >= 2:
                grid.add_net_box(box)
        return grid

    # -- reporting ----------------------------------------------------------------

    @property
    def capacity_v(self) -> float:
        """Track capacity of one vertical edge (horizontal wires)."""
        return self.tracks_per_um * self.bin_h

    @property
    def capacity_h(self) -> float:
        return self.tracks_per_um * self.bin_w

    def report(self) -> CongestionReport:
        ratios = np.concatenate(
            [
                (self.usage_v / self.capacity_v).ravel(),
                (self.usage_h / self.capacity_h).ravel(),
            ]
        )
        overflow = int((ratios > 1.0).sum())
        return CongestionReport(
            overflow_edges=overflow,
            total_edges=int(ratios.size),
            max_usage_ratio=float(ratios.max(initial=0.0)),
            mean_usage_ratio=float(ratios.mean()) if ratios.size else 0.0,
        )
