"""Directional RUDY congestion grid and overflow-edge counting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rect import Rect
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class CongestionReport:
    """Summary of one congestion analysis."""

    overflow_edges: int
    total_edges: int
    max_usage_ratio: float
    mean_usage_ratio: float

    @property
    def overflow_fraction(self) -> float:
        return self.overflow_edges / self.total_edges if self.total_edges else 0.0


class CongestionGrid:
    """A global-routing grid with directional demand estimation.

    The die is cut into ``bins_x`` x ``bins_y`` g-cells.  Vertical grid edges
    (between horizontally adjacent g-cells) carry horizontal wires; their
    capacity is ``tracks_per_um * bin_height``.  A net whose bounding box
    spans a vertical edge contributes crossing demand equal to the fraction
    of its box height overlapping that edge's g-cell row (and symmetrically
    for horizontal edges / vertical wires).  Overflow edges are those whose
    demand exceeds capacity — the paper's Table 1 metric.
    """

    def __init__(
        self,
        die: Rect,
        bins_x: int = 24,
        bins_y: int = 24,
        tracks_per_um: float = 8.0,
    ) -> None:
        if bins_x < 2 or bins_y < 2:
            raise ValueError("need at least a 2x2 grid to have edges")
        self.die = die
        self.bins_x = bins_x
        self.bins_y = bins_y
        self.bin_w = die.width / bins_x
        self.bin_h = die.height / bins_y
        self.tracks_per_um = tracks_per_um
        # usage_v[i, j]: crossing demand over the vertical boundary between
        # g-cells (i, j) and (i+1, j); usage_h[i, j] between (i, j), (i, j+1).
        self.usage_v = np.zeros((bins_x - 1, bins_y), dtype=float)
        self.usage_h = np.zeros((bins_x, bins_y - 1), dtype=float)
        # Interior boundary coordinates, computed with the same arithmetic
        # the per-boundary scalar loop used (origin + (i+1) * bin_size), so
        # the vectorized crossing tests keep the exact float comparisons.
        self._bxs = die.xlo + np.arange(1, bins_x) * self.bin_w
        self._bys = die.ylo + np.arange(1, bins_y) * self.bin_h

    # -- demand accumulation ---------------------------------------------------

    def add_net_box(self, box: Rect, weight: float = 1.0) -> None:
        """Add one net's bounding box to the demand model."""
        if box.width <= 0 and box.height <= 0:
            return
        self._add_directional(box, weight, horizontal=True)
        self._add_directional(box, weight, horizontal=False)

    def _overlap_fractions(self, lo: float, hi: float, origin: float, size: float, n: int):
        """Per-bin overlap fraction of span [lo, hi] with each of n bins.

        For a degenerate span (lo == hi) the single containing bin gets 1.0.
        """
        frac = np.zeros(n, dtype=float)
        if hi <= lo:
            b = int(min(max((lo - origin) / size, 0), n - 1))
            frac[b] = 1.0
            return frac
        b0 = int(max(np.floor((lo - origin) / size), 0))
        b1 = int(min(np.ceil((hi - origin) / size), n))
        if b1 <= b0:
            return frac
        span = hi - lo
        # Element-wise the same min/max/divide expressions the per-bin loop
        # evaluated, so every fraction matches it bit for bit.
        bin_lo = origin + np.arange(b0, b1) * size
        overlap = np.minimum(hi, bin_lo + size) - np.maximum(lo, bin_lo)
        frac[b0:b1] = np.where(overlap > 0, overlap / span, 0.0)
        return frac

    def _add_directional(self, box: Rect, weight: float, horizontal: bool) -> None:
        # Every usage element still receives exactly one addition of the
        # same ``weight * frac`` product, so the slice-assignment form is
        # bit-identical to the former per-boundary loop.
        if horizontal:
            # Horizontal wires cross vertical boundaries strictly inside the box.
            y_frac = self._overlap_fractions(
                box.ylo, box.yhi, self.die.ylo, self.bin_h, self.bins_y
            )
            cross = (box.xlo < self._bxs) & (self._bxs < box.xhi)
            if cross.any():
                self.usage_v[cross, :] += weight * y_frac
        else:
            x_frac = self._overlap_fractions(
                box.xlo, box.xhi, self.die.xlo, self.bin_w, self.bins_x
            )
            cross = (box.ylo < self._bys) & (self._bys < box.yhi)
            if cross.any():
                self.usage_h[:, cross] += (weight * x_frac)[:, None]

    def _add_boxes(self, boxes: "np.ndarray", weights: "np.ndarray") -> None:
        """Accumulate many net boxes at once, in row order.

        Equivalent to ``add_net_box`` per row: fraction rows use the same
        min/max/divide expressions, and ``np.add.at`` applies the
        (net, boundary) contributions in index order — net-major, boundary
        ascending — exactly the sequence the per-net loop produced, so every
        usage element sees the same additions in the same order.
        """
        if not len(boxes):
            return
        xlo, ylo, xhi, yhi = boxes.T
        span_x = xhi - xlo
        span_y = yhi - ylo
        for horizontal in (True, False):
            if horizontal:
                origin, size, n = self.die.ylo, self.bin_h, self.bins_y
                lo, hi, span = ylo, yhi, span_y
                bounds, blo, bhi = self._bxs, xlo, xhi
                usage = self.usage_v
            else:
                origin, size, n = self.die.xlo, self.bin_w, self.bins_x
                lo, hi, span = xlo, xhi, span_x
                bounds, blo, bhi = self._bys, ylo, yhi
                usage = self.usage_h
            bin_lo = origin + np.arange(n) * size
            overlap = np.minimum(hi[:, None], bin_lo + size) - np.maximum(
                lo[:, None], bin_lo
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                frac = np.where(overlap > 0, overlap / span[:, None], 0.0)
            degenerate = hi <= lo
            if degenerate.any():
                frac[degenerate] = 0.0
                b = np.clip(
                    ((lo[degenerate] - origin) / size).astype(int), 0, n - 1
                )
                frac[np.flatnonzero(degenerate), b] = 1.0
            frac *= weights[:, None]
            # (net, crossing boundary) pairs in net-major order.
            net_idx, edge_idx = np.nonzero(
                (blo[:, None] < bounds) & (bounds < bhi[:, None])
            )
            if horizontal:
                np.add.at(usage, edge_idx, frac[net_idx])
            else:
                np.add.at(usage.T, edge_idx, frac[net_idx])

    @staticmethod
    def of_design(
        design: Design,
        bins_x: int = 24,
        bins_y: int = 24,
        tracks_per_um: float = 8.0,
    ) -> "CongestionGrid":
        grid = CongestionGrid(design.die, bins_x, bins_y, tracks_per_um)
        boxes = []
        for net in design.nets.values():
            box = net.bbox()
            if (
                box is not None
                and net.num_pins >= 2
                and (box.width > 0 or box.height > 0)
            ):
                boxes.append((box.xlo, box.ylo, box.xhi, box.yhi))
        arr = np.array(boxes, dtype=float).reshape(-1, 4)
        grid._add_boxes(arr, np.ones(len(arr)))
        return grid

    # -- reporting ----------------------------------------------------------------

    @property
    def capacity_v(self) -> float:
        """Track capacity of one vertical edge (horizontal wires)."""
        return self.tracks_per_um * self.bin_h

    @property
    def capacity_h(self) -> float:
        return self.tracks_per_um * self.bin_w

    def report(self) -> CongestionReport:
        ratios = np.concatenate(
            [
                (self.usage_v / self.capacity_v).ravel(),
                (self.usage_h / self.capacity_h).ravel(),
            ]
        )
        overflow = int((ratios > 1.0).sum())
        return CongestionReport(
            overflow_edges=overflow,
            total_edges=int(ratios.size),
            max_usage_ratio=float(ratios.max(initial=0.0)),
            mean_usage_ratio=float(ratios.mean()) if ratios.size else 0.0,
        )
