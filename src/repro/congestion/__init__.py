"""Routing-congestion estimation.

Table 1 of the paper reports 'Ovfl Edges' — the number of overflowed edges
of the global-routing grid graph, after Sapatnekar et al.'s congestion
estimation framework [15].  We estimate per-edge routing demand with a
directional RUDY-style model: every net spreads its bounding-box wire length
uniformly over the box, and a grid edge's usage is the summed crossing
demand of the nets whose boxes span it.
"""

from repro.congestion.grid import CongestionGrid, CongestionReport

__all__ = ["CongestionGrid", "CongestionReport"]
