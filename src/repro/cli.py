"""Command-line driver: MBR composition over liberty/verilog/DEF files.

Usage::

    python -m repro.cli run --preset D1 --scale 0.25 \\
        [--trace-out t.json] [--manifest-out m.json] [--workers 4]
    python -m repro.cli compose --lib repro28.lib --verilog design.v \\
        --def design.def --period 1.2 --out-prefix composed \\
        [--heuristic] [--workers 4] [--trace] [--trace-out t.json]
    python -m repro.cli trace out.json --preset D1
    python -m repro.cli generate --preset D1 --scale 0.25 --out-prefix d1
    python -m repro.cli report --lib repro28.lib --verilog d.v --def d.def --period 1.2
    python -m repro.cli eco --preset D1 --moves 20 [--audit]
    python -m repro.cli check --preset D1 --storms 5 --seed 7 [--replay f.json]
    python -m repro.cli bench report [--history BENCH_history.jsonl] [--check]
    python -m repro.cli obs critical-path trace.json
    python -m repro.cli obs diff manifest_a.json manifest_b.json
    python -m repro.cli serve --designs D1 D1 --scale 0.25 --port 7821
    python -m repro.cli submit eco --design D1-0 --params '{"seed":7,"moves":3}'

``run`` executes the full flow on a synthetic preset (no files needed)
and can export the observability artifacts: ``--trace-out`` writes a
Chrome ``trace_event`` JSON (open it in Perfetto / ``chrome://tracing``),
``--manifest-out`` writes the validated run manifest (config + metrics
registry + span roll-up).  ``trace OUT.json`` is shorthand for ``run
--trace-out OUT.json``.  ``generate`` writes a synthetic benchmark to
disk; ``compose`` runs the paper's flow on files and writes the composed
netlist/placement; ``report`` prints the Table-1-style metrics of a
placed design; ``eco`` demonstrates incremental recomposition — a seeded
storm of localized register moves, each followed by
``EcoSession.recompose()``, reporting how much cached work every edit
reused (``--audit``, or ``REPRO_ECO_AUDIT=1``, shadow-checks each
recompose against a from-scratch compose).  ``check`` runs seeded edit
storms through an ``EcoSession`` with every invariant checker and
differential oracle armed (``repro.check``): exit 0 when clean, else a
violation report plus a deterministic reproducer JSON that ``--replay``
re-executes.  Structured run logs are available everywhere via
``REPRO_LOG=1`` (text) / ``REPRO_LOG_JSON=1`` (JSON lines).

``serve`` starts the compose-as-a-service front-end (:mod:`repro.serve`):
named preset designs behind long-lived ``EcoSession`` s, one process-wide
component cache (optionally spilled to ``--spill-dir``), a bounded job
queue with explicit ``queue_full`` rejections, and a JSON-lines TCP
protocol.  ``submit`` is the matching one-shot client: one job per
invocation, or ``--stdin`` to pipe request frames.

Performance intelligence: ``--profile out.folded`` (or
``REPRO_PROFILE=1``) samples the run's span stacks into a
collapsed-stack flamegraph file; ``--progress`` (or ``REPRO_PROGRESS=1``)
emits heartbeat progress events with ETA on stderr; ``bench report``
judges the ``BENCH_history.jsonl`` trajectories against
``bench_policy.json`` (``--check`` is the CI regression gate); ``obs
critical-path`` / ``obs diff`` analyze exported traces and manifests.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro import obs
from repro.bench import generate_design, preset
from repro.flow import EcoSession, FlowConfig, run_flow
from repro.geometry.point import Point
from repro.io import (
    read_def,
    read_liberty,
    read_verilog,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import default_library
from repro.metrics import collect_metrics
from repro.reporting import format_stage_counters, format_stage_runtimes, format_table1
from repro.scan import ScanModel
from repro.sta import Timer


def _load(args):
    library = read_liberty(args.lib) if args.lib else default_library()
    design = read_verilog(args.verilog, library)
    read_def(args.def_file, design)
    scan_model = ScanModel.from_design(design)
    timer = Timer(design, clock_period=args.period)
    return library, design, scan_model, timer


def _install_obs(args) -> None:
    """Run-scoped observability: fresh registry always; tracer only when an
    artifact that needs spans was requested (tracing off = near-zero cost).

    ``--profile`` (or ``REPRO_PROFILE=1``/``=path``) additionally starts
    the sampling profiler — which needs spans, so it forces the tracer
    on.  ``--progress`` (or ``REPRO_PROGRESS=1``) starts the heartbeat
    emitter on stderr; the RSS/CPU resource sampler runs whenever a
    manifest or progress was requested, so long runs leave a timeline.
    """
    from repro.obs.profile import (
        default_profile_path,
        profile_env_enabled,
        progress_env_enabled,
    )

    obs.configure_logging()
    obs.set_registry(obs.MetricsRegistry())
    manifest_out = getattr(args, "manifest_out", None)
    profile_out = getattr(args, "profile", None)
    if not profile_out and profile_env_enabled():
        profile_out = default_profile_path()
    args.profile_out = profile_out
    progress_on = bool(getattr(args, "progress", False) or progress_env_enabled())
    traced = bool(getattr(args, "trace_out", None) or manifest_out or profile_out)
    obs.install_tracer(enabled=traced)
    if profile_out:
        obs.install_profiler()
    if progress_on or manifest_out:
        args._resources = obs.ResourceSampler().start()
        hb = obs.Heartbeat(stream=sys.stderr if progress_on else None)
        obs.set_heartbeat(hb)
        hb.start()


def _flow_summary(report) -> dict:
    """The manifest's ``flow`` section: headline results of one run."""
    comp = report.composition
    return {
        "design": report.design_name,
        "runtime_seconds": round(report.runtime_seconds, 6),
        "registers_before": comp.registers_before,
        "registers_after": comp.registers_after,
        "register_reduction": comp.register_reduction,
        "composed_groups": len(comp.composed),
        "ilp_nodes": comp.ilp_nodes,
        "wns": report.final.wns,
        "tns": report.final.tns,
    }


def _export_obs(args, design_name: str, config=None, flow: dict | None = None) -> None:
    """Write ``--trace-out``/``--manifest-out``/``--profile`` artifacts."""
    tracer = obs.get_tracer()
    trace_out = getattr(args, "trace_out", None)
    manifest_out = getattr(args, "manifest_out", None)
    profiler = obs.set_profiler(None)
    if profiler is not None:
        profiler.stop()
        stacks = profiler.write_folded(args.profile_out)
        print(
            f"wrote folded profile: {args.profile_out} "
            f"({stacks} stacks, {profiler.total_samples} samples, "
            f"{profiler.idle_samples} idle)"
        )
    heartbeat = obs.set_heartbeat(None)
    progress = None
    if heartbeat is not None:
        heartbeat.stop()
        progress = heartbeat.as_dict()
    sampler = getattr(args, "_resources", None)
    resources = None
    if sampler is not None:
        sampler.stop()
        resources = sampler.as_dict()
        print(
            f"resources: peak RSS {resources['peak_rss_bytes'] / 1e6:.1f} MB "
            f"over {resources['samples']} samples"
        )
    if trace_out and tracer is not None:
        tracer.write_chrome_trace(trace_out)
        print(f"wrote Chrome trace: {trace_out} ({len(tracer.records())} spans)")
    if manifest_out:
        manifest = obs.build_manifest(
            {"name": design_name},
            config=config,
            flow=flow,
            resources=resources,
            progress=progress,
        )
        obs.write_manifest(manifest_out, manifest)
        print(f"wrote run manifest: {manifest_out}")


def _print_trace(report, timer) -> None:
    print()
    print(format_stage_runtimes([report]))
    print()
    print(format_stage_counters([report]))
    print()
    print(report.trace.format())
    stats = timer.stats
    print()
    print(
        f"incremental timing: {stats.changes_applied} changes, "
        f"{stats.incremental_timings} incremental / {stats.full_timings} full "
        f"propagations; {stats.retimed_nodes} nodes retimed total, "
        f"last cone {stats.last_retimed_nodes}/{stats.graph_nodes} nodes"
    )


def cmd_run(args) -> int:
    """Run the full flow on a synthetic preset; export trace/manifest."""
    _install_obs(args)
    library = default_library()
    bundle = generate_design(preset(args.preset, scale=args.scale), library)
    config = FlowConfig(
        algorithm="heuristic" if args.heuristic else "ilp",
        decompose_widths=tuple(args.decompose) if args.decompose else (),
    )
    config.composer.workers = args.workers
    report = run_flow(bundle.design, bundle.timer, bundle.scan_model, config)
    print(format_table1([report]))
    if args.trace:
        _print_trace(report, bundle.timer)
    _export_obs(args, report.design_name, config=config, flow=_flow_summary(report))
    return 0


def cmd_generate(args) -> int:
    library = default_library()
    bundle = generate_design(preset(args.preset, scale=args.scale), library)
    write_liberty(library, f"{args.out_prefix}.lib")
    write_verilog(bundle.design, f"{args.out_prefix}.v")
    write_def(bundle.design, f"{args.out_prefix}.def")
    print(
        f"wrote {args.out_prefix}.lib/.v/.def: "
        f"{len(bundle.design.cells)} cells, "
        f"{bundle.design.total_register_count()} registers, "
        f"clock period {bundle.clock_period} ns"
    )
    return 0


def cmd_compose(args) -> int:
    _install_obs(args)
    _, design, scan_model, timer = _load(args)
    config = FlowConfig(
        algorithm="heuristic" if args.heuristic else "ilp",
        decompose_widths=tuple(args.decompose) if args.decompose else (),
    )
    config.composer.workers = args.workers
    report = run_flow(design, timer, scan_model, config)
    print(format_table1([report]))
    if args.trace:
        _print_trace(report, timer)
    _export_obs(args, report.design_name, config=config, flow=_flow_summary(report))
    if args.out_prefix:
        write_verilog(design, f"{args.out_prefix}.v")
        write_def(design, f"{args.out_prefix}.def")
        print(f"wrote {args.out_prefix}.v and {args.out_prefix}.def")
    return 0


def cmd_trace(args) -> int:
    """``repro trace OUT.json`` — shorthand for ``run --trace-out OUT.json``."""
    args.trace_out = args.output
    return cmd_run(args)


def cmd_eco(args) -> int:
    """Seeded ECO storm: localized register moves + incremental recompose."""
    _install_obs(args)
    library = default_library()
    bundle = generate_design(preset(args.preset, scale=args.scale), library)
    design, timer = bundle.design, bundle.timer
    session = EcoSession(
        design,
        timer,
        bundle.scan_model,
        audit_mode=True if args.audit else None,
    )

    t0 = time.perf_counter()
    prime = session.recompose()
    print(
        f"prime: {design.name} composed {len(prime.result.composed)} groups, "
        f"{prime.result.registers_before} -> {prime.result.registers_after} "
        f"registers in {time.perf_counter() - t0:.2f}s"
    )

    rng = random.Random(args.seed)
    totals: dict[str, list[float]] = {}
    eco_seconds = 0.0
    for move in range(args.moves):
        movable = [
            c for c in design.registers() if not c.fixed and not c.dont_touch
        ]
        if not movable:
            print("no movable registers left")
            break
        cell = rng.choice(movable)
        r = args.radius
        x = min(
            max(design.die.xlo, cell.origin.x + rng.uniform(-r, r)),
            design.die.xhi - cell.libcell.width,
        )
        y = min(
            max(design.die.ylo, cell.origin.y + rng.uniform(-r, r)),
            design.die.yhi - cell.libcell.height,
        )
        with session.edit():
            design.move_cell(cell, Point(x, y))
        t0 = time.perf_counter()
        stats = session.recompose()
        dt = time.perf_counter() - t0
        eco_seconds += dt
        for key, (reused, recomputed) in stats.reuse.items():
            slot = totals.setdefault(key, [0.0, 0.0])
            slot[0] += reused
            slot[1] += recomputed
        line = (
            f"move {move:>3}: {cell.name:<12} dirty={stats.dirty_registers:>4} "
            f"composed={len(stats.result.composed)} {dt * 1e3:6.1f}ms"
        )
        if stats.audit_checked:
            line += "  [audit ok]"
        print(line)

    summary = timer.summary()
    print(
        f"\n{args.moves} edits in {eco_seconds:.2f}s; "
        f"WNS {summary.wns:.3f} TNS {summary.tns:.2f}"
    )
    for key, (reused, recomputed) in sorted(totals.items()):
        whole = reused + recomputed
        frac = (recomputed / whole) if whole else 0.0
        print(
            f"  {key:<12} reused {reused:>7.0f}  recomputed {recomputed:>7.0f}"
            f"  ({frac:.1%} recomputed)"
        )
    print(_cache_efficiency_line())
    _export_obs(args, f"eco-{args.preset}")
    return 0


def _cache_efficiency_line() -> str:
    """One-line cache-efficiency summary, sourced from the metrics registry."""
    counters = obs.get_registry().snapshot()["counters"]
    hits = counters.get("compose.cache.hits", 0)
    misses = counters.get("compose.cache.misses", 0)
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    line = (
        f"cache: {hits}/{lookups} component hits ({rate:.1%}), "
        f"{counters.get('compose.cache.evictions', 0)} evictions"
    )
    incr_n = counters.get("eco.incremental_recomposes", 0)
    full_n = counters.get("eco.full_recomposes", 0)
    if incr_n and full_n:
        incr_avg = counters.get("eco.incremental_seconds", 0.0) / incr_n
        full_avg = counters.get("eco.full_seconds", 0.0) / full_n
        saved = 1.0 - incr_avg / full_avg if full_avg > 0 else 0.0
        line += (
            f"; incremental recompose {incr_avg * 1e3:.1f}ms avg "
            f"vs {full_avg * 1e3:.1f}ms full ({saved:.1%} runtime saved)"
        )
    return line


def cmd_check(args) -> int:
    """Edit-storm fuzzing with every invariant checker and oracle armed.

    Exits 0 when every storm stays clean; on any violation, prints the
    report and dumps a deterministic reproducer JSON (seed + concrete
    edit trace) that ``repro check --replay FILE`` re-executes.
    """
    from repro.check.fuzz import replay, run_check, write_reproducer

    _install_obs(args)
    if args.replay:
        report = replay(args.replay)
    else:
        report = run_check(
            preset_name=args.preset,
            scale=args.scale,
            storms=args.storms,
            seed=args.seed,
            edits_per_storm=args.edits_per_storm,
            inject_fault=args.inject_fault,
        )
    print(report.format())
    _export_obs(args, f"check-{report.preset}")
    if report.ok:
        return 0
    out = write_reproducer(report, args.reproducer_out)
    print(f"wrote reproducer: {out} (replay with: repro check --replay {out})")
    return 1


def cmd_report(args) -> int:
    _, design, scan_model, timer = _load(args)
    metrics = collect_metrics(design, timer, scan_model)
    print(f"design {design.name}")
    print(f"  area               {metrics.area:.1f} um^2")
    print(f"  cells              {metrics.total_cells}")
    print(f"  registers          {metrics.total_regs} "
          f"({metrics.comp_regs} composable)")
    print(f"  width histogram    {metrics.width_histogram}")
    print(f"  clock buffers      {metrics.clk_bufs}")
    print(f"  clock capacitance  {metrics.clk_cap:.4f} pF")
    print(f"  WNS / TNS          {metrics.wns:.3f} / {metrics.tns:.2f} ns")
    print(f"  failing endpoints  {metrics.failing_endpoints}/{metrics.total_endpoints}")
    print(f"  overflow edges     {metrics.overflow_edges}")
    print(f"  wirelength         clk {metrics.wirelength_clk:.0f} + "
          f"other {metrics.wirelength_other:.0f} um")
    return 0


def cmd_bench_report(args) -> int:
    """The regression sentinel: judge every ``BENCH_history.jsonl``
    trajectory against ``bench_policy.json``; ``--check`` makes any
    regression a nonzero exit (the CI gate)."""
    from repro.obs import sentinel

    policy_path = args.policy or sentinel.default_policy_path()
    if os.path.exists(policy_path):
        policy = sentinel.load_policy(policy_path)
    elif args.policy:
        print(f"policy file not found: {policy_path}", file=sys.stderr)
        return 2
    else:
        policy = sentinel.Policy()
    try:
        records = sentinel.load_history(args.history)
    except FileNotFoundError:
        print(f"history file not found: {args.history}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = sentinel.evaluate_history(records, policy)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote report JSON: {args.json_out}")
    print(report.format())
    return 1 if (args.check and not report.ok) else 0


def cmd_serve(args) -> int:
    """Run the compose job server until interrupted (SIGINT/SIGTERM)."""
    import asyncio
    import signal

    from repro.serve import ComposeServer, DesignRegistry, SharedComponentCache

    _install_obs(args)
    shared = SharedComponentCache(
        max_entries=args.cache_entries,
        max_bytes=args.cache_mb * 1024 * 1024,
        spill_dir=args.spill_dir,
    )
    registry = DesignRegistry(shared_cache=shared)
    registry.config.workers = args.workers
    for i, preset_name in enumerate(args.designs):
        name = f"{preset_name}-{i}"
        registry.add_preset(name, preset_name, scale=args.scale)
        entry = registry.entry(name)
        print(
            f"design {name}: preset {preset_name} @ scale {args.scale} "
            f"({entry.session.design.total_register_count()} registers)"
        )

    async def _serve() -> dict:
        server = ComposeServer(registry, queue_depth=args.queue_depth)
        host, port = await server.serve(args.host, args.port)
        print(f"repro serve: listening on {host}:{port} (queue depth {args.queue_depth})")
        print(f"submit with: repro submit status --host {host} --port {port}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:
                pass
        try:
            await stop.wait()
        finally:
            manifest = server.build_manifest()
            await server.aclose()
        return manifest

    try:
        manifest = asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ninterrupted")
        return 130
    print("shutting down")
    if args.manifest_out:
        obs.write_manifest(args.manifest_out, manifest)
        print(f"wrote run manifest: {args.manifest_out}")
    return 0


def cmd_submit(args) -> int:
    """One-shot client of a running ``repro serve`` instance."""
    from repro.serve import TcpClient, submit_stdin_lines

    try:
        client = TcpClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    try:
        if args.stdin:
            failures = 0
            for response in submit_stdin_lines(client, sys.stdin):
                print(json.dumps(response))
                if not response.get("ok"):
                    failures += 1
            return 1 if failures else 0
        try:
            params = json.loads(args.params) if args.params else {}
        except json.JSONDecodeError as exc:
            print(f"--params is not valid JSON: {exc}", file=sys.stderr)
            return 2
        response = client.submit(args.kind, design=args.design, params=params)
        print(json.dumps(response.to_wire(), indent=2))
        return 0 if response.ok else 1
    except ConnectionError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        client.close()


def cmd_obs_critical_path(args) -> int:
    """Longest self-time chain through a Chrome trace's span tree."""
    from repro.obs import analyze

    try:
        data = analyze.load_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(analyze.format_critical_path(analyze.critical_path(data)))
    return 0


def cmd_obs_diff(args) -> int:
    """Per-stage / per-counter deltas between two run manifests."""
    from repro.obs import analyze

    try:
        manifest_a = analyze.load_manifest(args.manifest_a)
        manifest_b = analyze.load_manifest(args.manifest_b)
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    diff = analyze.diff_manifests(manifest_a, manifest_b)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(diff, fh, indent=2)
            fh.write("\n")
        print(f"wrote diff JSON: {args.json_out}")
    print(analyze.format_manifest_diff(diff, top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="MBR composition flow over design files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic benchmark to disk")
    gen.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5", "huge"], default="D1")
    gen.add_argument("--scale", type=float, default=0.25)
    gen.add_argument("--out-prefix", required=True)
    gen.set_defaults(func=cmd_generate)

    def add_design_io(p):
        p.add_argument("--lib", help="liberty-subset library (default: built-in)")
        p.add_argument("--verilog", required=True)
        p.add_argument("--def", dest="def_file", required=True)
        p.add_argument("--period", type=float, required=True, help="clock period (ns)")

    def add_flow_options(p):
        p.add_argument("--heuristic", action="store_true", help="Fig. 6 baseline")
        p.add_argument(
            "--decompose",
            type=int,
            nargs="*",
            help="MBR widths to decompose before composition (e.g. --decompose 8)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="process-pool width of the ILP solve stage (default: 1, serial)",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="print per-stage runtimes (the pipeline's StageTrace) and "
            "incremental-timing effort (retimed-node counts vs graph size)",
        )

    def add_profile_options(p):
        p.add_argument(
            "--profile",
            metavar="OUT.folded",
            help="sample the run's span stacks into a collapsed-stack "
            "(flamegraph) file; also: REPRO_PROFILE=1 or =path",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="emit heartbeat progress events (stage, work done, ETA) "
            "on stderr for long runs; also: REPRO_PROGRESS=1",
        )

    def add_obs_outputs(p):
        p.add_argument(
            "--trace-out",
            dest="trace_out",
            help="write a Chrome trace_event JSON of the run's spans "
            "(open in Perfetto / chrome://tracing)",
        )
        p.add_argument(
            "--manifest-out",
            dest="manifest_out",
            help="write the validated run manifest JSON "
            "(config + metrics registry + span roll-up + resource timeline)",
        )
        add_profile_options(p)

    run = sub.add_parser(
        "run", help="run the full flow on a synthetic preset (no files needed)"
    )
    run.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5", "huge"], default="D1")
    run.add_argument("--scale", type=float, default=0.25)
    add_flow_options(run)
    add_obs_outputs(run)
    run.set_defaults(func=cmd_run)

    trc = sub.add_parser(
        "trace", help="run a preset flow and write its Chrome trace JSON"
    )
    trc.add_argument("output", help="Chrome trace_event JSON output path")
    trc.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5", "huge"], default="D1")
    trc.add_argument("--scale", type=float, default=0.25)
    add_flow_options(trc)
    trc.add_argument(
        "--manifest-out",
        dest="manifest_out",
        help="also write the validated run manifest JSON",
    )
    add_profile_options(trc)
    trc.set_defaults(func=cmd_trace)

    comp = sub.add_parser("compose", help="run the composition flow on files")
    add_design_io(comp)
    add_flow_options(comp)
    add_obs_outputs(comp)
    comp.add_argument("--out-prefix", help="write the composed design here")
    comp.set_defaults(func=cmd_compose)

    rep = sub.add_parser("report", help="print Table-1 metrics of a design")
    add_design_io(rep)
    rep.set_defaults(func=cmd_report)

    eco = sub.add_parser(
        "eco", help="incremental recomposition demo: edit storm on a session"
    )
    eco.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5", "huge"], default="D1")
    eco.add_argument("--scale", type=float, default=0.4)
    eco.add_argument("--moves", type=int, default=20, help="number of register moves")
    eco.add_argument("--seed", type=int, default=11)
    eco.add_argument(
        "--radius", type=float, default=3.0, help="max move distance (um)"
    )
    eco.add_argument(
        "--audit",
        action="store_true",
        help="shadow-check every incremental recompose against a "
        "from-scratch compose (also: REPRO_ECO_AUDIT=1)",
    )
    eco.set_defaults(func=cmd_eco)

    chk = sub.add_parser(
        "check",
        help="seeded edit-storm fuzzing with invariant checkers and "
        "differential oracles; nonzero exit + reproducer JSON on violation",
    )
    chk.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5", "huge"], default="D1")
    chk.add_argument("--scale", type=float, default=0.15)
    chk.add_argument("--storms", type=int, default=5, help="edit storms to run")
    chk.add_argument("--seed", type=int, default=7)
    chk.add_argument(
        "--edits-per-storm",
        dest="edits_per_storm",
        type=int,
        default=8,
        help="random edits per storm before recomposing (default: 8)",
    )
    chk.add_argument(
        "--inject-fault",
        dest="inject_fault",
        action="store_true",
        help="plant a deliberate multi-driver corruption in the first storm "
        "(self-test: must exit nonzero and write a reproducer)",
    )
    chk.add_argument(
        "--reproducer-out",
        dest="reproducer_out",
        default="repro_check_reproducer.json",
        help="where to write the reproducer JSON on failure",
    )
    chk.add_argument(
        "--replay",
        help="re-execute a reproducer JSON instead of fuzzing "
        "(deterministic: same violations every run)",
    )
    add_obs_outputs(chk)
    chk.set_defaults(func=cmd_check)

    bench = sub.add_parser(
        "bench", help="benchmark-trajectory tools (the regression sentinel)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    brep = bench_sub.add_parser(
        "report",
        help="judge every BENCH_history.jsonl trajectory against "
        "bench_policy.json (median + MAD rolling baseline)",
    )
    brep.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="trajectory log to judge (default: ./BENCH_history.jsonl)",
    )
    brep.add_argument(
        "--policy",
        help="bench_policy.json path (default: the repo's checked-in policy; "
        "built-in defaults when absent)",
    )
    brep.add_argument(
        "--json",
        dest="json_out",
        help="also write the machine-readable report (repro.bench.report/1)",
    )
    brep.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any trajectory regressed (the CI gate)",
    )
    brep.set_defaults(func=cmd_bench_report)

    srv = sub.add_parser(
        "serve",
        help="compose-as-a-service: asyncio job server over named EcoSessions",
    )
    srv.add_argument(
        "--designs",
        nargs="+",
        choices=["D1", "D2", "D3", "D4", "D5", "huge"],
        default=["D1"],
        help="presets to serve (repeat a name for replicas; designs are "
        "registered as PRESET-0, PRESET-1, ...)",
    )
    srv.add_argument("--scale", type=float, default=0.25)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7821)
    srv.add_argument(
        "--queue-depth",
        dest="queue_depth",
        type=int,
        default=64,
        help="max jobs in flight before submissions are rejected queue_full",
    )
    srv.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width of each session's ILP solve stage",
    )
    srv.add_argument(
        "--cache-entries",
        dest="cache_entries",
        type=int,
        default=65536,
        help="shared component cache entry budget",
    )
    srv.add_argument(
        "--cache-mb",
        dest="cache_mb",
        type=int,
        default=256,
        help="shared component cache byte budget (MiB)",
    )
    srv.add_argument(
        "--spill-dir",
        dest="spill_dir",
        help="spill shared cache entries to digest-named files here "
        "(reused across server restarts)",
    )
    add_obs_outputs(srv)
    srv.set_defaults(func=cmd_serve)

    sbm = sub.add_parser(
        "submit", help="submit one job to a running repro serve instance"
    )
    sbm.add_argument("kind", choices=["compose", "eco", "check", "status"])
    sbm.add_argument("--design", help="registered design name (see serve startup log)")
    sbm.add_argument(
        "--params",
        help='job params as JSON, e.g. \'{"seed": 7, "moves": 3, "radius": 3.0}\'',
    )
    sbm.add_argument("--host", default="127.0.0.1")
    sbm.add_argument("--port", type=int, default=7821)
    sbm.add_argument("--timeout", type=float, default=300.0)
    sbm.add_argument(
        "--stdin",
        action="store_true",
        help="read request frames (JSON lines) from stdin instead",
    )
    sbm.set_defaults(func=cmd_submit)

    obsg = sub.add_parser("obs", help="trace/manifest analytics")
    obs_sub = obsg.add_subparsers(dest="obs_command", required=True)
    ocp = obs_sub.add_parser(
        "critical-path",
        help="longest self-time chain through a Chrome trace's span tree",
    )
    ocp.add_argument("trace", help="Chrome trace_event JSON (repro run --trace-out)")
    ocp.set_defaults(func=cmd_obs_critical_path)
    odf = obs_sub.add_parser(
        "diff", help="per-stage/per-counter deltas between two run manifests"
    )
    odf.add_argument("manifest_a", help="baseline run manifest JSON")
    odf.add_argument("manifest_b", help="comparison run manifest JSON")
    odf.add_argument(
        "--top", type=int, default=15, help="rows per section (default: 15)"
    )
    odf.add_argument("--json", dest="json_out", help="also write the raw diff JSON")
    odf.set_defaults(func=cmd_obs_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Reports are meant to be piped into head/grep; a closed pipe is a
        # normal way for the read side to say "seen enough", not an error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
