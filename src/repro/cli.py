"""Command-line driver: MBR composition over liberty/verilog/DEF files.

Usage::

    python -m repro.cli compose --lib repro28.lib --verilog design.v \\
        --def design.def --period 1.2 --out-prefix composed \\
        [--heuristic] [--workers 4] [--trace]
    python -m repro.cli generate --preset D1 --scale 0.25 --out-prefix d1
    python -m repro.cli report --lib repro28.lib --verilog d.v --def d.def --period 1.2
    python -m repro.cli eco --preset D1 --moves 20 [--audit]

``generate`` writes a synthetic benchmark to disk; ``compose`` runs the
paper's flow on files and writes the composed netlist/placement;
``report`` prints the Table-1-style metrics of a placed design; ``eco``
demonstrates incremental recomposition — a seeded storm of localized
register moves, each followed by ``EcoSession.recompose()``, reporting
how much cached work every edit reused (``--audit``, or
``REPRO_ECO_AUDIT=1``, shadow-checks each recompose against a
from-scratch compose).
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.bench import generate_design, preset
from repro.flow import EcoSession, FlowConfig, run_flow
from repro.geometry.point import Point
from repro.io import (
    read_def,
    read_liberty,
    read_verilog,
    write_def,
    write_liberty,
    write_verilog,
)
from repro.library import default_library
from repro.metrics import collect_metrics
from repro.reporting import format_stage_runtimes, format_table1
from repro.scan import ScanModel
from repro.sta import Timer


def _load(args):
    library = read_liberty(args.lib) if args.lib else default_library()
    design = read_verilog(args.verilog, library)
    read_def(args.def_file, design)
    scan_model = ScanModel.from_design(design)
    timer = Timer(design, clock_period=args.period)
    return library, design, scan_model, timer


def cmd_generate(args) -> int:
    library = default_library()
    bundle = generate_design(preset(args.preset, scale=args.scale), library)
    write_liberty(library, f"{args.out_prefix}.lib")
    write_verilog(bundle.design, f"{args.out_prefix}.v")
    write_def(bundle.design, f"{args.out_prefix}.def")
    print(
        f"wrote {args.out_prefix}.lib/.v/.def: "
        f"{len(bundle.design.cells)} cells, "
        f"{bundle.design.total_register_count()} registers, "
        f"clock period {bundle.clock_period} ns"
    )
    return 0


def cmd_compose(args) -> int:
    _, design, scan_model, timer = _load(args)
    config = FlowConfig(
        algorithm="heuristic" if args.heuristic else "ilp",
        decompose_widths=tuple(args.decompose) if args.decompose else (),
    )
    config.composer.workers = args.workers
    report = run_flow(design, timer, scan_model, config)
    print(format_table1([report]))
    if args.trace:
        print()
        print(format_stage_runtimes([report]))
        print()
        print(report.trace.format())
        stats = timer.stats
        print()
        print(
            f"incremental timing: {stats.changes_applied} changes, "
            f"{stats.incremental_timings} incremental / {stats.full_timings} full "
            f"propagations; {stats.retimed_nodes} nodes retimed total, "
            f"last cone {stats.last_retimed_nodes}/{stats.graph_nodes} nodes"
        )
    if args.out_prefix:
        write_verilog(design, f"{args.out_prefix}.v")
        write_def(design, f"{args.out_prefix}.def")
        print(f"wrote {args.out_prefix}.v and {args.out_prefix}.def")
    return 0


def cmd_eco(args) -> int:
    """Seeded ECO storm: localized register moves + incremental recompose."""
    library = default_library()
    bundle = generate_design(preset(args.preset, scale=args.scale), library)
    design, timer = bundle.design, bundle.timer
    session = EcoSession(
        design,
        timer,
        bundle.scan_model,
        audit_mode=True if args.audit else None,
    )

    t0 = time.perf_counter()
    prime = session.recompose()
    print(
        f"prime: {design.name} composed {len(prime.result.composed)} groups, "
        f"{prime.result.registers_before} -> {prime.result.registers_after} "
        f"registers in {time.perf_counter() - t0:.2f}s"
    )

    rng = random.Random(args.seed)
    totals: dict[str, list[float]] = {}
    eco_seconds = 0.0
    for move in range(args.moves):
        movable = [
            c for c in design.registers() if not c.fixed and not c.dont_touch
        ]
        if not movable:
            print("no movable registers left")
            break
        cell = rng.choice(movable)
        r = args.radius
        x = min(
            max(design.die.xlo, cell.origin.x + rng.uniform(-r, r)),
            design.die.xhi - cell.libcell.width,
        )
        y = min(
            max(design.die.ylo, cell.origin.y + rng.uniform(-r, r)),
            design.die.yhi - cell.libcell.height,
        )
        with session.edit():
            design.move_cell(cell, Point(x, y))
        t0 = time.perf_counter()
        stats = session.recompose()
        dt = time.perf_counter() - t0
        eco_seconds += dt
        for key, (reused, recomputed) in stats.reuse.items():
            slot = totals.setdefault(key, [0.0, 0.0])
            slot[0] += reused
            slot[1] += recomputed
        line = (
            f"move {move:>3}: {cell.name:<12} dirty={stats.dirty_registers:>4} "
            f"composed={len(stats.result.composed)} {dt * 1e3:6.1f}ms"
        )
        if stats.audit_checked:
            line += "  [audit ok]"
        print(line)

    summary = timer.summary()
    print(
        f"\n{args.moves} edits in {eco_seconds:.2f}s; "
        f"WNS {summary.wns:.3f} TNS {summary.tns:.2f}"
    )
    for key, (reused, recomputed) in sorted(totals.items()):
        whole = reused + recomputed
        frac = (recomputed / whole) if whole else 0.0
        print(
            f"  {key:<12} reused {reused:>7.0f}  recomputed {recomputed:>7.0f}"
            f"  ({frac:.1%} recomputed)"
        )
    return 0


def cmd_report(args) -> int:
    _, design, scan_model, timer = _load(args)
    metrics = collect_metrics(design, timer, scan_model)
    print(f"design {design.name}")
    print(f"  area               {metrics.area:.1f} um^2")
    print(f"  cells              {metrics.total_cells}")
    print(f"  registers          {metrics.total_regs} "
          f"({metrics.comp_regs} composable)")
    print(f"  width histogram    {metrics.width_histogram}")
    print(f"  clock buffers      {metrics.clk_bufs}")
    print(f"  clock capacitance  {metrics.clk_cap:.4f} pF")
    print(f"  WNS / TNS          {metrics.wns:.3f} / {metrics.tns:.2f} ns")
    print(f"  failing endpoints  {metrics.failing_endpoints}/{metrics.total_endpoints}")
    print(f"  overflow edges     {metrics.overflow_edges}")
    print(f"  wirelength         clk {metrics.wirelength_clk:.0f} + "
          f"other {metrics.wirelength_other:.0f} um")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="MBR composition flow over design files"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic benchmark to disk")
    gen.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5"], default="D1")
    gen.add_argument("--scale", type=float, default=0.25)
    gen.add_argument("--out-prefix", required=True)
    gen.set_defaults(func=cmd_generate)

    def add_design_io(p):
        p.add_argument("--lib", help="liberty-subset library (default: built-in)")
        p.add_argument("--verilog", required=True)
        p.add_argument("--def", dest="def_file", required=True)
        p.add_argument("--period", type=float, required=True, help="clock period (ns)")

    comp = sub.add_parser("compose", help="run the composition flow on files")
    add_design_io(comp)
    comp.add_argument("--heuristic", action="store_true", help="Fig. 6 baseline")
    comp.add_argument(
        "--decompose",
        type=int,
        nargs="*",
        help="MBR widths to decompose before composition (e.g. --decompose 8)",
    )
    comp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width of the ILP solve stage (default: 1, serial)",
    )
    comp.add_argument(
        "--trace",
        action="store_true",
        help="print per-stage runtimes (the pipeline's StageTrace) and "
        "incremental-timing effort (retimed-node counts vs graph size)",
    )
    comp.add_argument("--out-prefix", help="write the composed design here")
    comp.set_defaults(func=cmd_compose)

    rep = sub.add_parser("report", help="print Table-1 metrics of a design")
    add_design_io(rep)
    rep.set_defaults(func=cmd_report)

    eco = sub.add_parser(
        "eco", help="incremental recomposition demo: edit storm on a session"
    )
    eco.add_argument("--preset", choices=["D1", "D2", "D3", "D4", "D5"], default="D1")
    eco.add_argument("--scale", type=float, default=0.4)
    eco.add_argument("--moves", type=int, default=20, help="number of register moves")
    eco.add_argument("--seed", type=int, default=11)
    eco.add_argument(
        "--radius", type=float, default=3.0, help="max move distance (um)"
    )
    eco.add_argument(
        "--audit",
        action="store_true",
        help="shadow-check every incremental recompose against a "
        "from-scratch compose (also: REPRO_ECO_AUDIT=1)",
    )
    eco.set_defaults(func=cmd_eco)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
