"""Recursive median-partitioning clock-tree synthesis."""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from repro.geometry.point import Point, centroid
from repro.geometry.rect import Rect
from repro.library.cells import ClockBufferCell, ClockGateCell, RegisterCell
from repro.library.library import Technology
from repro.netlist.db import Pin
from repro.netlist.design import Design


@dataclass(frozen=True, slots=True)
class _Sink:
    """A clock consumer: location and capacitive load."""

    location: Point
    cap: float
    name: str


@dataclass
class ClockTreeReport:
    """Clock-tree cost summary — Table 1's clock columns.

    ``capacitance`` is the total capacitance the clock network switches every
    cycle: routed clock wire, register/ICG clock pins, and buffer input pins.
    """

    num_sinks: int
    num_buffers: int
    wirelength: float
    capacitance: float
    buffer_area: float

    def __add__(self, other: "ClockTreeReport") -> "ClockTreeReport":
        return ClockTreeReport(
            self.num_sinks + other.num_sinks,
            self.num_buffers + other.num_buffers,
            self.wirelength + other.wirelength,
            self.capacitance + other.capacitance,
            self.buffer_area + other.buffer_area,
        )


@dataclass
class ClockTree:
    """One synthesized (virtual) clock tree: per-level buffer clusters.

    ``parent`` links every sink (and intermediate buffer) to its driving
    buffer; ``driver_delay`` holds each buffer's stage delay — together they
    give per-leaf insertion delays and the tree's global skew.
    """

    levels: list[list[_Sink]] = field(default_factory=list)
    report: ClockTreeReport = field(
        default_factory=lambda: ClockTreeReport(0, 0, 0.0, 0.0, 0.0)
    )
    parent: dict[str, str] = field(default_factory=dict)
    driver_delay: dict[str, float] = field(default_factory=dict)
    leaf_names: list[str] = field(default_factory=list)

    def insertion_delay(self, leaf: str) -> float:
        """Clock latency from the tree root to one leaf sink."""
        total = 0.0
        node = leaf
        while node in self.parent:
            node = self.parent[node]
            total += self.driver_delay.get(node, 0.0)
        return total

    def insertion_delays(self) -> dict[str, float]:
        return {leaf: self.insertion_delay(leaf) for leaf in self.leaf_names}

    def global_skew(self) -> float:
        """Max minus min leaf insertion delay — what useful-skew windows
        must stay within after CTS realizes them."""
        delays = list(self.insertion_delays().values())
        if not delays:
            return 0.0
        return max(delays) - min(delays)


def _cluster_wirelength(sinks: list[_Sink]) -> float:
    """Steiner-length estimate for one cluster.

    For two or three sinks the bounding-box half-perimeter is (near) exact;
    for larger clusters the standard RSMT estimate scales it by
    ``sqrt(n)/2`` (uniformly spread terminals), so a cluster's wire cost
    grows with its sink count — the effect MBR composition exploits when it
    removes clock sinks.  Single-sink clusters contribute no wire (the
    buffer sits on the sink).
    """
    n = len(sinks)
    if n <= 1:
        return 0.0
    box = Rect.from_points([s.location for s in sinks])
    scale = max(1.0, math.sqrt(n) / 2.0)
    return box.half_perimeter * scale


def _partition(sinks: list[_Sink], max_fanout: int, max_cap: float) -> list[list[_Sink]]:
    """Recursively split sinks by median until every cluster fits the
    fanout and capacitance limits of the strongest clock buffer."""
    total_cap = sum(s.cap for s in sinks)
    if len(sinks) <= max_fanout and total_cap <= max_cap:
        return [sinks]
    xs = [s.location.x for s in sinks]
    ys = [s.location.y for s in sinks]
    split_on_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
    ordered = sorted(sinks, key=lambda s: s.location.x if split_on_x else s.location.y)
    mid = len(ordered) // 2
    left, right = ordered[:mid], ordered[mid:]
    if not left or not right:  # all sinks coincident: split by count
        left, right = ordered[: max(1, mid)], ordered[max(1, mid) :]
        if not left or not right:
            return [sinks]
    return _partition(left, max_fanout, max_cap) + _partition(right, max_fanout, max_cap)


def _pick_buffer(buffers: list[ClockBufferCell], load: float) -> ClockBufferCell:
    """Smallest buffer able to drive ``load`` (largest one as fallback)."""
    for buf in buffers:  # sorted weakest -> strongest by the library
        if buf.max_fanout_cap >= load:
            return buf
    return buffers[-1]


def _clock_pin(cell) -> Pin | None:
    """The cell's clock input pin, if the cell consumes a clock net."""
    lc = cell.libcell
    if isinstance(lc, RegisterCell):
        pin = cell.pin(lc.clock_pin_name)
    elif isinstance(lc, ClockGateCell):
        pin = cell.pin("CK")
    else:
        return None
    if pin.net is None or not pin.net.is_clock:
        return None
    return pin


def _collect_sinks(design: Design, net_name: str | None = None) -> list[_Sink]:
    """Clock sinks: register clock pins and ICG clock inputs on clock nets.

    With ``net_name`` given, only sinks of that specific clock net — used
    by per-domain synthesis, where every gated net gets its own subtree.
    """
    sinks: list[_Sink] = []
    for cell in design.cells.values():
        pin = _clock_pin(cell)
        if pin is None:
            continue
        if net_name is not None and pin.net.name != net_name:
            continue
        sinks.append(_Sink(pin.location, pin.cap, pin.full_name))
    return sinks


def _collect_sinks_by_net(design: Design) -> dict[str, list[_Sink]]:
    """All clock sinks grouped by clock-net name, in one pass over the
    cells.  Per-net lists keep cell iteration order, matching what a
    filtered :func:`_collect_sinks` scan of that net would produce."""
    by_net: dict[str, list[_Sink]] = {}
    for cell in design.cells.values():
        pin = _clock_pin(cell)
        if pin is None:
            continue
        by_net.setdefault(pin.net.name, []).append(
            _Sink(pin.location, pin.cap, pin.full_name)
        )
    return by_net


def synthesize_clock_network(
    design: Design,
    max_fanout: int = 16,
    technology: Technology | None = None,
) -> dict[str, ClockTree]:
    """Synthesize one subtree per clock net (per-domain CTS).

    A gated domain's registers hang off their ICG, whose own clock pin is a
    sink of the parent net's tree — so the domain structure of the netlist
    carries straight into the virtual clock network.  Returns a map of
    clock-net name to its subtree; sum the reports for network totals.

    Sinks for every domain come from one shared pass over the cells
    (:func:`_collect_sinks_by_net`) — a design with many gated domains no
    longer rescans the whole netlist per domain.
    """
    by_net = _collect_sinks_by_net(design)
    return {
        net.name: synthesize_clock_tree(
            design,
            max_fanout=max_fanout,
            technology=technology,
            clock_net=net.name,
            sinks=by_net.get(net.name, []),
        )
        for net in design.clock_nets()
    }


def synthesize_clock_tree(
    design: Design,
    max_fanout: int = 16,
    technology: Technology | None = None,
    clock_net: str | None = None,
    sinks: list[_Sink] | None = None,
) -> ClockTree:
    """Build a virtual buffered clock tree over the design's clock sinks.

    Level 0 clusters the leaf sinks; each cluster's buffer becomes a sink of
    the next level, until a single root cluster remains.  The report
    accumulates wirelength, buffer count/area, and total switched
    capacitance across all levels.  ``clock_net`` restricts synthesis to one
    net's sinks (see :func:`synthesize_clock_network` for per-domain trees);
    by default all clock sinks share one tree — a flat approximation whose
    before/after deltas track the per-domain ones.  A pre-collected
    ``sinks`` list (from :func:`_collect_sinks_by_net`) skips the design
    scan entirely.
    """
    tech = technology or design.library.technology
    buffers = design.library.clock_buffers()
    if not buffers:
        raise ValueError("library has no clock buffers for CTS")
    max_cap = buffers[-1].max_fanout_cap

    tree = ClockTree()
    current = sinks if sinks is not None else _collect_sinks(design, clock_net)
    tree.report.num_sinks = len(current)
    tree.report.capacitance = sum(s.cap for s in current)
    tree.leaf_names = [s.name for s in current]
    if not current:
        return tree

    guard = 0
    buf_count = 0
    while len(current) > 1:
        guard += 1
        if guard > 64:  # pragma: no cover - safety against degenerate input
            raise RuntimeError("CTS failed to converge")
        tree.levels.append(current)
        next_level: list[_Sink] = []
        for cluster in _partition(current, max_fanout, max_cap):
            wl = _cluster_wirelength(cluster)
            load = sum(s.cap for s in cluster) + tech.wire_cap_per_um * wl
            buf = _pick_buffer(buffers, load)
            where = centroid([s.location for s in cluster])
            buf_count += 1
            buf_name = f"ctsbuf_{buf_count}"
            stage_delay = (
                buf.intrinsic_delay
                + buf.drive_resistance * load
                + tech.wire_delay_per_um * wl / max(len(cluster), 1)
            )
            tree.driver_delay[buf_name] = stage_delay
            for sink in cluster:
                tree.parent[sink.name] = buf_name
            tree.report.num_buffers += 1
            tree.report.buffer_area += buf.area
            tree.report.wirelength += wl
            tree.report.capacitance += tech.wire_cap_per_um * wl + buf.pin("A").cap
            next_level.append(_Sink(where, buf.pin("A").cap, buf_name))
        current = next_level
    return tree
