"""Clock-tree synthesis (CTS-lite) and clock metrics.

MBR composition's headline benefit is a lighter clock tree: fewer sinks,
less leaf capacitance, fewer and smaller buffers (paper Section 1 and the
'Clk Bufs' / 'Clk Cap' columns of Table 1).  This package synthesizes a
buffered clock tree over the design's clock sinks — recursive median
partitioning into fanout-limited clusters, a buffer per cluster — and
reports buffer count, clock wirelength, and total clock-tree capacitance.

The tree is *virtual*: it is measured, not stitched into the netlist, which
matches the paper's flow where composition happens before CTS and only the
tree cost model is needed to evaluate the benefit.
"""

from repro.clocktree.cts import (
    ClockTree,
    ClockTreeReport,
    synthesize_clock_network,
    synthesize_clock_tree,
)

__all__ = [
    "ClockTree",
    "ClockTreeReport",
    "synthesize_clock_network",
    "synthesize_clock_tree",
]
