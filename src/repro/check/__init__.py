"""repro.check: invariant checkers, differential oracles, edit-storm fuzzing.

Three layers, all returning typed :class:`Violation` lists instead of
raising, so callers decide what is fatal:

* :mod:`repro.check.invariants` — pure structural checkers
  (``check_design`` / ``check_timing`` / ``check_scan`` /
  ``check_composition``);
* :mod:`repro.check.oracles` — differential oracles pitting each fast
  path against a from-scratch reference;
* :mod:`repro.check.fuzz` — the seeded edit-storm fuzzer behind
  ``repro check``, with deterministic JSON reproducers.

:mod:`repro.check.strategies` adds Hypothesis generators for the property
tests; it is the only part that needs ``hypothesis`` installed.
"""

from repro.check.invariants import (
    CheckError,
    Violation,
    assert_clean,
    check_all,
    check_composition,
    check_design,
    check_scan,
    check_timing,
    format_violations,
)
from repro.check.oracles import (
    bit_connectivity_signature,
    clone_world,
    compare_session_to_reference,
    composition_signature,
    diff_arraytimer_vs_dict,
    diff_serial_vs_parallel,
    diff_timer_vs_fresh,
    grouping_signature,
    hold_signature,
    placement_signature,
    scratch_compose,
    timing_signature,
)

__all__ = [
    "CheckError",
    "Violation",
    "assert_clean",
    "bit_connectivity_signature",
    "check_all",
    "check_composition",
    "check_design",
    "check_scan",
    "check_timing",
    "clone_world",
    "compare_session_to_reference",
    "composition_signature",
    "diff_arraytimer_vs_dict",
    "diff_serial_vs_parallel",
    "diff_timer_vs_fresh",
    "format_violations",
    "grouping_signature",
    "hold_signature",
    "placement_signature",
    "scratch_compose",
    "timing_signature",
]
