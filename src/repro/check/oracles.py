"""Differential oracles: fast path vs from-scratch reference.

Each of the repo's three fast paths (parallel per-subgraph ILP solving,
dirty-cone incremental STA, digest-keyed ECO recomposition) promises
*bit-identical* results to a from-scratch recompute.  These oracles make
that promise checkable from anywhere — property tests, the edit-storm
fuzzer, the CLI — by cloning the world, running the slow reference, and
diffing signatures.  Like the invariant checkers, they report
:class:`~repro.check.invariants.Violation` lists instead of raising, so
one storm can surface every divergence at once.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.check.invariants import Violation
from repro.netlist.design import Design
from repro.netlist.registers import RegisterView
from repro.scan.model import ScanModel
from repro.sta.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.composer import CompositionResult
    from repro.flow.session import EcoSession


# ---------------------------------------------------------------------------
# Signatures: order-stable, comparable summaries of a world's state
# ---------------------------------------------------------------------------


def composition_signature(result: "CompositionResult") -> list[tuple]:
    """Composed groups in application order: the ECO-equivalence currency."""
    return [
        (g.new_cell, g.libcell, tuple(g.members), g.bits) for g in result.composed
    ]


def grouping_signature(result: "CompositionResult") -> list[tuple]:
    """Name-free group signature (member sets + QoR fields).

    Used where new-cell *names* may legitimately differ — e.g. comparing
    two from-scratch composes of independently generated (but identical)
    designs, or translation-invariance checks.
    """
    return [
        (frozenset(g.members), g.weight, g.bits, g.libcell, g.incomplete)
        for g in result.composed
    ]


def placement_signature(design: Design) -> dict[str, tuple[str, float, float]]:
    """Every cell's libcell and exact origin — bit-identical or bust."""
    return {
        name: (c.libcell.name, c.origin.x, c.origin.y)
        for name, c in design.cells.items()
    }


def timing_signature(timer: Timer) -> dict[str, float]:
    """Endpoint name -> setup slack (name-sorted upstream, dict here)."""
    return {e.name: e.slack for e in timer.endpoint_slacks()}


def hold_signature(timer: Timer) -> dict[str, float]:
    return {e.name: e.slack for e in timer.hold_slacks()}


def bit_connectivity_signature(design: Design) -> list[tuple]:
    """Cell-name-free connectivity of every connected register bit.

    One tuple per connected bit: its data nets, clock net, and control
    nets.  Scan nets are excluded — composition and decomposition restitch
    the scan chain through fresh nets by design, so scan connectivity is
    checked structurally by ``check_scan`` instead.  Two netlists with
    equal signatures hold the same registered state under the same
    clocking and control, which is what "compose then decompose yields an
    equivalent netlist" means.
    """
    sig: list[tuple] = []
    for cell in design.registers():
        view = RegisterView(cell)
        controls = tuple(
            sorted(
                (name, net.name if net is not None else None)
                for name, net in view.control_nets().items()
            )
        )
        clock = view.clock_net.name if view.clock_net is not None else None
        for bit in view.connected_bits():
            sig.append(
                (
                    bit.d_net.name if bit.d_net is not None else None,
                    bit.q_net.name if bit.q_net is not None else None,
                    clock,
                    controls,
                )
            )
    sig.sort(key=repr)
    return sig


# ---------------------------------------------------------------------------
# World cloning and references
# ---------------------------------------------------------------------------


def clone_world(
    design: Design, timer: Timer, scan_model: ScanModel | None = None
) -> tuple[Design, Timer, ScanModel | None]:
    """An independent copy of (design, timer, scan) sharing nothing mutable.

    The cloned timer is cold (fresh full propagation on first query) and
    never audits — it *is* the reference.
    """
    clone = design.clone()
    fresh = Timer(
        clone,
        timer.clock_period,
        skew=dict(timer.skew),
        input_delay=timer.input_delay,
        output_delay=timer.output_delay,
        technology=timer.tech,
        audit_mode=False,
    )
    scan = scan_model.clone() if scan_model is not None else None
    return clone, fresh, scan


def scratch_compose(
    session: "EcoSession",
) -> tuple["CompositionResult", Design, Timer]:
    """From-scratch :func:`compose_design` on a clone of the session's world.

    Uses the session's own config with ``passes`` pinned to its
    ``max_passes`` — the same totals an incremental recompose converges to.
    Returns ``(result, design, timer)`` of the reference world.
    """
    from repro.core.composer import compose_design

    design, timer, scan = clone_world(
        session.design, session.timer, session.scan_model
    )
    result = compose_design(
        design,
        timer,
        scan,
        config=replace(session.config, passes=session.max_passes),
    )
    return result, design, timer


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------


def _diff_map(check: str, subject: str, live: dict, ref: dict) -> list[Violation]:
    """Key-by-key diff of two signature maps (bit-exact)."""
    if live == ref:
        return []
    keys = sorted(
        k for k in live.keys() | ref.keys() if live.get(k) != ref.get(k)
    )
    detail = ", ".join(
        f"{k}: {live.get(k)!r} vs {ref.get(k)!r}" for k in keys[:5]
    )
    return [
        Violation(
            check,
            subject,
            f"{len(keys)} entr(y/ies) diverge from the reference: {detail}",
        )
    ]


def _diff_timers(check: str, timer: Timer, ref: Timer) -> list[Violation]:
    """Bit-exact comparison of two timers on every query surface."""
    out: list[Violation] = []
    out += _diff_map(
        check,
        "endpoint slacks",
        timing_signature(timer),
        timing_signature(ref),
    )
    out += _diff_map(
        check,
        "hold slacks",
        hold_signature(timer),
        hold_signature(ref),
    )
    if timer.summary() != ref.summary():
        out.append(
            Violation(
                check,
                "setup summary",
                f"{timer.summary()} vs reference {ref.summary()}",
            )
        )
    if timer.hold_summary() != ref.hold_summary():
        out.append(
            Violation(
                check,
                "hold summary",
                f"{timer.hold_summary()} vs reference {ref.hold_summary()}",
            )
        )
    return out


def diff_timer_vs_fresh(timer: Timer) -> list[Violation]:
    """Incremental STA == fresh-timer rebuild, on every query surface.

    Clones the design so the reference cannot perturb the live timer, then
    compares endpoint slacks, hold slacks, and both summaries bit-exactly.
    """
    _, fresh, _ = clone_world(timer.design, timer)
    return _diff_timers("sta-incremental-vs-fresh", timer, fresh)


def diff_arraytimer_vs_dict(timer: Timer) -> list[Violation]:
    """Array timing kernel == dict reference timer, bit for bit.

    Clones the live timer's design into a fresh ``kernel="dict"`` timer
    (the pre-vectorization reference implementation) and compares endpoint
    slacks, hold slacks, and both summaries bit-exactly.  Exercised by the
    edit-storm fuzzer, this pins the array kernel's full sweeps *and* its
    masked dirty-cone retimes to the dict semantics.
    """
    clone = timer.design.clone()
    ref = Timer(
        clone,
        timer.clock_period,
        skew=dict(timer.skew),
        input_delay=timer.input_delay,
        output_delay=timer.output_delay,
        technology=timer.tech,
        audit_mode=False,
        kernel="dict",
    )
    return _diff_timers("sta-array-vs-dict", timer, ref)


def diff_serial_vs_parallel(
    make_world: Callable[[], tuple[Design, Timer, ScanModel | None]],
    workers: int = 4,
    config=None,
) -> list[Violation]:
    """Parallel solve fan-out == serial path, bit for bit.

    ``make_world`` must build an identical fresh world on every call (the
    compose mutates its input, so the two runs need independent copies).
    """
    from repro.core.composer import compose_design

    d_serial, t_serial, s_serial = make_world()
    serial = compose_design(d_serial, t_serial, s_serial, config, workers=1)
    d_par, t_par, s_par = make_world()
    par = compose_design(d_par, t_par, s_par, config, workers=workers)

    out: list[Violation] = []
    if grouping_signature(serial) != grouping_signature(par):
        out.append(
            Violation(
                "compose-serial-vs-parallel",
                f"workers={workers}",
                f"{len(serial.composed)} serial vs {len(par.composed)} "
                "parallel groups, or differing membership/weights",
            )
        )
    for field in ("registers_after", "registers_before", "ilp_nodes"):
        if getattr(serial, field) != getattr(par, field):
            out.append(
                Violation(
                    "compose-serial-vs-parallel",
                    field,
                    f"{getattr(serial, field)} serial vs "
                    f"{getattr(par, field)} parallel",
                )
            )
    out += _diff_map(
        "compose-serial-vs-parallel",
        "placements",
        placement_signature(d_serial),
        placement_signature(d_par),
    )
    if d_serial.width_histogram() != d_par.width_histogram():
        out.append(
            Violation(
                "compose-serial-vs-parallel",
                "width histogram",
                f"{d_serial.width_histogram()} serial vs "
                f"{d_par.width_histogram()} parallel",
            )
        )
    return out


def compare_session_to_reference(
    session: "EcoSession",
    live_result: "CompositionResult",
    ref_result: "CompositionResult",
    ref_design: Design,
    ref_timer: Timer,
) -> list[Violation]:
    """``EcoSession.recompose`` == from-scratch compose, bit for bit.

    The reference must be captured from a clone taken *before* the live
    recompose (the recompose mutates the session's world)::

        ref, ref_design, ref_timer = scratch_compose(session)  # pre-recompose
        stats = session.recompose()
        violations = compare_session_to_reference(
            session, stats.result, ref, ref_design, ref_timer)
    """
    out: list[Violation] = []
    if composition_signature(live_result) != composition_signature(ref_result):
        out.append(
            Violation(
                "eco-session-vs-scratch",
                "composed groups",
                f"{len(live_result.composed)} live vs "
                f"{len(ref_result.composed)} reference groups, or "
                "differing names/members/widths",
            )
        )
    out += _diff_map(
        "eco-session-vs-scratch",
        "placements",
        placement_signature(session.design),
        placement_signature(ref_design),
    )
    live_sum, ref_sum = session.timer.summary(), ref_timer.summary()
    if (live_sum.wns, live_sum.tns) != (ref_sum.wns, ref_sum.tns):
        out.append(
            Violation(
                "eco-session-vs-scratch",
                "timing summary",
                f"live wns/tns {live_sum.wns}/{live_sum.tns} vs reference "
                f"{ref_sum.wns}/{ref_sum.tns}",
            )
        )
    return out
