"""Hypothesis strategies for designs and edit sequences.

The generators stay *shrink-friendly* by drawing plain data — spec
parameters, ``(kind, seed)`` edit tuples — and resolving it through the
deterministic bench generator and the fuzzer's concrete-op machinery.
Hypothesis shrinks the data; the heavy objects are always derived, never
drawn, so a shrunk failing example is a small seeded netlist plus a short
edit list, both trivially replayable.

Requires ``hypothesis`` (a dev extra); importing this module without it
raises ImportError, but nothing else in :mod:`repro.check` depends on it.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.bench.generator import BenchmarkSpec, DesignBundle, generate_design
from repro.check.fuzz import OP_KINDS, EditWorld, apply_op, propose_op
from repro.library import default_library

#: One shared library instance: spec resolution is pure, the library is
#: immutable in practice, and rebuilding it per example doubles runtime.
_LIBRARY = default_library()

#: Width mixes worth probing: single-bit heavy, MBR heavy, and mixed.
_WIDTH_MIXES = (
    {1: 1.0},
    {1: 0.6, 2: 0.4},
    {1: 0.45, 2: 0.25, 4: 0.20, 8: 0.10},
    {2: 0.3, 4: 0.4, 8: 0.3},
)


@st.composite
def design_specs(draw) -> BenchmarkSpec:
    """Small, fully seeded :class:`BenchmarkSpec` instances.

    Sizes stay in the 12–36 register range: big enough to form cliques,
    partitions, and scan chains, small enough that a property running
    dozens of examples (each of which composes the design more than once)
    finishes in CI time.
    """
    return BenchmarkSpec(
        name="hyp",
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        n_registers=draw(st.integers(min_value=12, max_value=36)),
        width_mix=draw(st.sampled_from(_WIDTH_MIXES)),
        cluster_size=draw(st.sampled_from((6, 10, 20))),
        dont_touch_fraction=draw(st.sampled_from((0.0, 0.12))),
        scan_fraction=draw(st.sampled_from((0.0, 0.5))),
        chain_length=10,
        failing_endpoint_fraction=draw(st.sampled_from((0.1, 0.38))),
    )


def build_bundle(spec: BenchmarkSpec) -> DesignBundle:
    """Resolve a drawn spec into a placed, timed, scan-stitched world."""
    return generate_design(spec, _LIBRARY)


def edit_sequences(
    min_size: int = 1, max_size: int = 8
) -> st.SearchStrategy[list[tuple[str, int]]]:
    """Sequences of ``(kind, seed)`` pairs describing edits abstractly.

    Each pair resolves against the *current* world via
    :func:`apply_edit_sequence`, so a sequence stays meaningful as the
    netlist changes underneath it — and shrinking drops or simplifies
    pairs without ever invalidating the rest of the list.
    """
    return st.lists(
        st.tuples(
            st.sampled_from(OP_KINDS),
            st.integers(min_value=0, max_value=2**16),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def apply_edit_sequence(
    world: EditWorld, sequence: list[tuple[str, int]]
) -> list[dict]:
    """Resolve and apply an abstract edit sequence; returns concrete ops.

    Each ``(kind, seed)`` pair proposes a concrete op with its own
    ``random.Random(seed)``; kinds with no candidate in the current world
    (e.g. ``decompose`` with no multi-bit register) resolve to nothing and
    are skipped.
    """
    applied: list[dict] = []
    for kind, seed in sequence:
        op = propose_op(world, random.Random(seed), kind=kind)
        if op is not None and apply_op(world, op):
            applied.append(op)
    return applied
