"""Invariant checkers: the structural facts the flow assumes silently.

Every fast path added on top of the paper's flow — dirty-cone retiming,
digest-keyed component replay, parallel ILP fan-out — *assumes* a pile of
structural invariants that no code enforces explicitly: a pin is on at
most one net and that net knows about it, a net has at most one driver,
every MBR's width exists in the library, a scan chain is a single
Hamiltonian path over its scan cells, the timer's patched graph matches a
fresh build node-for-node, TNS is exactly the sum of negative endpoint
slacks.  These checkers make each assumption a pure function returning a
typed :class:`Violation` list (never raising), so the fuzzer, the CLI,
and the property tests can all consume the same evidence.

The checkers are *observers*: they never mutate the design, the timer's
cached state, or the scan model — except that :func:`check_timing`
forces a (normal, query-path) timing evaluation, exactly like calling
``timer.summary()`` would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.library.functional import ScanStyle
from repro.netlist.db import Pin, Port
from repro.netlist.design import Design
from repro.netlist.registers import RegisterView
from repro.placement.rows import PlacementRows
from repro.scan.model import ScanModel
from repro.sta.graph import TimingGraph
from repro.sta.timer import Timer

#: Position tolerance for row/site snap checks (um).
_SNAP_TOL = 1e-6


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant.

    ``check`` is a stable kebab-case identifier (grep-able, groupable);
    ``subject`` names the offending object (``"net q_reg_3_0"``,
    ``"cell mbr_17"``); ``message`` carries the human-readable detail.
    """

    check: str
    subject: str
    message: str
    severity: str = "error"

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def __str__(self) -> str:
        return f"[{self.check}] {self.subject}: {self.message}"


class CheckError(AssertionError):
    """Raised by :func:`assert_clean` when violations were found."""


def format_violations(violations: list[Violation]) -> str:
    """A stable, line-per-violation report (errors first, then warnings)."""
    ordered = sorted(
        violations, key=lambda v: (v.severity != "error", v.check, v.subject)
    )
    return "\n".join(str(v) for v in ordered)


def assert_clean(violations: list[Violation]) -> None:
    """Raise :class:`CheckError` when any *error*-severity violation exists."""
    errors = [v for v in violations if v.is_error]
    if errors:
        raise CheckError(
            f"{len(errors)} invariant violation(s):\n" + format_violations(errors)
        )


# ---------------------------------------------------------------------------
# Design structure
# ---------------------------------------------------------------------------


def check_design(design: Design) -> list[Violation]:
    """Structural invariants of the netlist container itself.

    * namespace keys match object names (``design.cells[n].name == n``);
    * pin/net cross-references agree in both directions, and every
      terminal appears on at most one net's terminal list, at most once;
    * every net has at most one driver, and no net has sinks without one;
    * every register's width exists in the library for its functional
      class and scan style, and its clock pin is connected;
    * every cell's footprint lies inside the die.
    """
    out: list[Violation] = []

    for key, cell in design.cells.items():
        if cell.name != key:
            out.append(
                Violation(
                    "design-name-key",
                    f"cell {key}",
                    f"keyed {key!r} but object is named {cell.name!r}",
                )
            )
    for key, net in design.nets.items():
        if net.name != key:
            out.append(
                Violation(
                    "design-name-key",
                    f"net {key}",
                    f"keyed {key!r} but object is named {net.name!r}",
                )
            )

    # Terminal <-> net cross-references, in both directions.  Keyed by
    # ``full_name`` (unique per the name-key checks above), NOT ``id()``:
    # terminal views are weakly cached, so two visits to the same terminal
    # may build distinct objects — and worse, a recycled object address can
    # alias two different terminals across loop iterations.
    memberships: dict[str, list[str]] = {}
    for net in design.nets.values():
        for t in net.terminals:
            memberships.setdefault(t.full_name, []).append(net.name)
            if t.net is not net:
                holder = t.net.name if t.net is not None else None
                out.append(
                    Violation(
                        "pin-net-crossref",
                        f"terminal {t.full_name}",
                        f"listed on net {net.name} but points at {holder!r}",
                    )
                )
    for t in design.iter_terminals():
        nets = memberships.get(t.full_name, [])
        if len(nets) > 1:
            out.append(
                Violation(
                    "pin-multiple-nets",
                    f"terminal {t.full_name}",
                    f"appears on {len(nets)} net terminal lists: "
                    + ", ".join(sorted(nets)),
                )
            )
        if t.net is not None and not nets:
            out.append(
                Violation(
                    "pin-net-crossref",
                    f"terminal {t.full_name}",
                    f"points at net {t.net.name} but is not on its terminal list",
                )
            )

    # Driver discipline.
    for net in design.nets.values():
        drivers = [
            t
            for t in net.terminals
            if (isinstance(t, Pin) and t.is_output)
            or (isinstance(t, Port) and t.is_input)
        ]
        if len(drivers) > 1:
            out.append(
                Violation(
                    "net-multi-driver",
                    f"net {net.name}",
                    "driven by " + ", ".join(d.full_name for d in drivers),
                )
            )
        if not drivers and net.sinks:
            out.append(
                Violation(
                    "net-undriven-sinks",
                    f"net {net.name}",
                    f"{len(net.sinks)} sink(s) but no driver",
                )
            )

    # Registers: library width membership and clock connectivity.
    for cell in design.cells.values():
        if cell.is_register:
            lc = cell.register_cell
            widths = design.library.widths_for(
                lc.func_class, scan_styles=(lc.scan_style,)
            )
            if lc.width_bits not in widths:
                out.append(
                    Violation(
                        "mbr-width-not-in-library",
                        f"cell {cell.name}",
                        f"{lc.name} is {lc.width_bits} bits; library offers "
                        f"{list(widths)} for {lc.func_class.name}/"
                        f"{lc.scan_style.name}",
                    )
                )
            if cell.pin(lc.clock_pin_name).net is None:
                out.append(
                    Violation(
                        "register-clock-unconnected",
                        f"cell {cell.name}",
                        f"clock pin {lc.clock_pin_name} has no net",
                    )
                )
        if not design.die.contains_rect(cell.footprint):
            out.append(
                Violation(
                    "cell-outside-die",
                    f"cell {cell.name}",
                    f"footprint {cell.footprint} exceeds die {design.die}",
                )
            )

    return out


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


def check_timing(timer: Timer) -> list[Violation]:
    """Invariants of the (possibly incrementally patched) timer.

    * the cached graph matches a from-scratch :class:`TimingGraph` build:
      same arc multiset, same launch/capture/port seeds, same launch
      delays, and node refcounts in agreement (nodes retire exactly when
      their last arc or seed role disappears);
    * no skew entry dangles on a cell missing from the design;
    * summary consistency: TNS equals the sum of negative endpoint
      slacks, WNS the minimum slack, and the failing count the number of
      negative entries — for both setup and hold.
    """
    out: list[Violation] = []
    design = timer.design

    for name in sorted(timer.skew):
        if name not in design.cells:
            out.append(
                Violation(
                    "skew-dangling-cell",
                    f"skew {name}",
                    f"offset {timer.skew[name]} targets a cell not in the design",
                )
            )

    g = timer.graph  # builds fresh if nothing is cached — then trivially equal
    fresh = TimingGraph(design, timer.tech)

    def arc_multiset(graph: TimingGraph) -> dict[tuple[int, int, float], int]:
        counts: dict[tuple[int, int, float], int] = {}
        for arcs in graph.fanout.values():
            for arc in arcs:
                key = (id(arc.src), id(arc.dst), arc.delay)
                counts[key] = counts.get(key, 0) + 1
        return counts

    live_arcs, fresh_arcs = arc_multiset(g), arc_multiset(fresh)
    if live_arcs != fresh_arcs:
        out.append(
            Violation(
                "timer-graph-arcs",
                f"design {design.name}",
                f"patched graph has {sum(live_arcs.values())} arcs, a fresh "
                f"build has {sum(fresh_arcs.values())}; "
                f"{len(set(live_arcs) ^ set(fresh_arcs))} arc keys differ",
            )
        )
    for label, live_map, fresh_map in (
        ("launch pins", g.launch_by_id, fresh.launch_by_id),
        ("capture pins", g.capture_by_id, fresh.capture_by_id),
        ("input ports", g.input_ports_by_id, fresh.input_ports_by_id),
        ("output ports", g.output_ports_by_id, fresh.output_ports_by_id),
    ):
        if set(live_map) != set(fresh_map):
            out.append(
                Violation(
                    "timer-graph-seeds",
                    f"design {design.name}",
                    f"{label} differ from a fresh build "
                    f"({len(live_map)} vs {len(fresh_map)})",
                )
            )
    if g.launch_delay != fresh.launch_delay:
        out.append(
            Violation(
                "timer-graph-seeds",
                f"design {design.name}",
                "launch delays differ from a fresh build",
            )
        )
    if g._refs != fresh._refs:
        diff = {
            nid
            for nid in g._refs.keys() | fresh._refs.keys()
            if g._refs.get(nid) != fresh._refs.get(nid)
        }
        names = sorted(
            getattr(g._nodes.get(nid) or fresh._nodes.get(nid), "full_name", "?")
            for nid in diff
        )
        out.append(
            Violation(
                "timer-node-refcounts",
                f"design {design.name}",
                f"{len(diff)} node refcount(s) disagree with a fresh build: "
                + ", ".join(names[:8]),
            )
        )

    for mode, slacks, summary in (
        ("setup", timer.endpoint_slacks(), timer.summary()),
        ("hold", timer.hold_slacks(), timer.hold_summary()),
    ):
        neg = [e.slack for e in slacks if e.slack < 0.0]
        tns = sum(neg)
        wns = min((e.slack for e in slacks), default=0.0)
        if not math.isclose(summary.tns, tns, rel_tol=0.0, abs_tol=0.0):
            out.append(
                Violation(
                    "tns-not-sum-of-negative-slacks",
                    f"{mode} summary",
                    f"TNS {summary.tns!r} != sum of negative endpoint "
                    f"slacks {tns!r}",
                )
            )
        if summary.wns != wns:
            out.append(
                Violation(
                    "wns-not-min-slack",
                    f"{mode} summary",
                    f"WNS {summary.wns!r} != min endpoint slack {wns!r}",
                )
            )
        if summary.failing_endpoints != len(neg) or summary.total_endpoints != len(
            slacks
        ):
            out.append(
                Violation(
                    "endpoint-counts",
                    f"{mode} summary",
                    f"{summary.failing_endpoints}/{summary.total_endpoints} "
                    f"reported, {len(neg)}/{len(slacks)} recomputed",
                )
            )

    return out


# ---------------------------------------------------------------------------
# Scan
# ---------------------------------------------------------------------------


def check_scan(scan_model: ScanModel, design: Design | None = None) -> list[Violation]:
    """Invariants of the scan model, and (with a design) its physical form.

    Model-only: every chain's ``hop_bits`` aligns with its hop list, and
    the ``_chain_of`` index agrees with the chains — it maps every chain
    member to one of the chains carrying it, and carries no stale entries.
    A cell MAY appear on several chains (a multi-SI/SO MBR is visited
    per-bit by different chains); the index then records one of them.

    With a design: every chain member is a live scan register; a
    non-multi-scan register sits on exactly one chain and no scan *bit*
    is visited twice across all chains (the Hamiltonian-path condition);
    and consecutive hops are physically stitched — the scan-out pin
    drives the net feeding the next hop's scan-in.
    """
    out: list[Violation] = []

    on_chains: dict[str, set[str]] = {}
    for chain in scan_model.chains.values():
        if len(chain.hop_bits) != len(chain.cells):
            out.append(
                Violation(
                    "scan-hop-bits-misaligned",
                    f"chain {chain.name}",
                    f"{len(chain.cells)} hops but {len(chain.hop_bits)} "
                    "hop_bits entries",
                )
            )
        for cell_name in chain.cells:
            on_chains.setdefault(cell_name, set()).add(chain.name)

    for cell_name, chain_name in sorted(scan_model._chain_of.items()):
        if chain_name not in scan_model.chains:
            out.append(
                Violation(
                    "scan-index-stale",
                    f"cell {cell_name}",
                    f"indexed on chain {chain_name} which does not exist",
                )
            )
        elif cell_name not in scan_model.chains[chain_name].cells:
            out.append(
                Violation(
                    "scan-index-stale",
                    f"cell {cell_name}",
                    f"indexed on chain {chain_name} but absent from its hops",
                )
            )
    for cell_name, chains in sorted(on_chains.items()):
        if scan_model._chain_of.get(cell_name) not in chains:
            out.append(
                Violation(
                    "scan-index-missing",
                    f"cell {cell_name}",
                    f"on chain(s) {sorted(chains)} but the chain index says "
                    f"{scan_model._chain_of.get(cell_name)!r}",
                )
            )

    if design is None:
        return out

    # Per-bit visit accounting: the Hamiltonian condition is that every
    # scanned bit is traversed at most once across ALL chains.  A hop with
    # no bit restriction visits the whole cell.
    visits: dict[tuple[str, int], list[str]] = {}
    seen_internal: set[tuple[str, str]] = set()
    for chain in scan_model.chains.values():
        for cell_name, hop_bits in zip(chain.cells, chain.hop_bits):
            cell = design.cells.get(cell_name)
            if cell is None:
                out.append(
                    Violation(
                        "scan-chain-dangling-cell",
                        f"chain {chain.name}",
                        f"hop {cell_name} is not in the design",
                    )
                )
                continue
            if not cell.is_register or not cell.register_cell.func_class.is_scan:
                out.append(
                    Violation(
                        "scan-chain-nonscan-cell",
                        f"chain {chain.name}",
                        f"hop {cell_name} ({cell.libcell.name}) is not a "
                        "scan register",
                    )
                )
                continue
            lc = cell.register_cell
            if lc.scan_style is not ScanStyle.MULTI and len(
                on_chains.get(cell_name, ())
            ) > 1:
                # Reported once per (cell, chain) pair; dedup below.
                visits.setdefault((cell_name, -1), []).append(chain.name)
                continue
            if lc.scan_style is not ScanStyle.MULTI:
                # Restitch threads an internal-scan cell once per chain no
                # matter how often it is listed — mirror that dedup here.
                if (cell_name, chain.name) in seen_internal:
                    continue
                seen_internal.add((cell_name, chain.name))
            bits = (
                hop_bits
                if (lc.scan_style is ScanStyle.MULTI and hop_bits is not None)
                else range(lc.width_bits)
            )
            for bit in bits:
                visits.setdefault((cell_name, bit), []).append(chain.name)

    for (cell_name, bit), chains in sorted(visits.items()):
        if bit == -1:
            out.append(
                Violation(
                    "scan-cell-on-two-chains",
                    f"cell {cell_name}",
                    f"single-SI/SO register on chains {sorted(set(chains))}",
                )
            )
        elif len(chains) > 1:
            out.append(
                Violation(
                    "scan-bit-visited-twice",
                    f"cell {cell_name}",
                    f"bit {bit} traversed by hops of {chains} — the scan "
                    "path is not Hamiltonian",
                )
            )

    # Hamiltonian-path check over each chain's physical hops: every
    # consecutive (SO, SI) pair must share a net driven by the SO pin.
    for chain in scan_model.chains.values():
        hops = scan_model._chain_hops(design, chain)
        for (so_pin, _), (_, si_pin) in zip(hops[:-1], hops[1:]):
            if si_pin.net is None or si_pin.net is not so_pin.net:
                out.append(
                    Violation(
                        "scan-chain-broken-stitch",
                        f"chain {chain.name}",
                        f"{so_pin.full_name} -> {si_pin.full_name} not on a "
                        "shared net",
                    )
                )
            elif so_pin.net.driver is not so_pin:
                driver = so_pin.net.driver
                out.append(
                    Violation(
                        "scan-chain-broken-stitch",
                        f"chain {chain.name}",
                        f"stitch net {so_pin.net.name} driven by "
                        f"{driver.full_name if driver else None}, not "
                        f"{so_pin.full_name}",
                    )
                )

    return out


# ---------------------------------------------------------------------------
# Composition results
# ---------------------------------------------------------------------------


def check_composition(result, design: Design | None = None) -> list[Violation]:
    """Invariants of one :class:`~repro.core.composer.CompositionResult`.

    * each composed group's bit count fits its target library cell, and
      the target's width exists in the library;
    * group members are gone from the design, and each group's new cell
      is either alive or was itself consumed by a later group (multi-pass
      composition merges fresh MBRs again);
    * ``registers_after`` matches the design's live register count;
    * legalized cells sit on the row/site grid inside the die.
    """
    out: list[Violation] = []
    consumed: set[str] = set()
    for group in result.composed:
        consumed.update(group.members)

    for group in result.composed:
        subject = f"group {group.new_cell}"
        if design is not None:
            cell = design.cells.get(group.new_cell)
            if cell is None:
                if group.new_cell not in consumed:
                    out.append(
                        Violation(
                            "composed-cell-missing",
                            subject,
                            "new cell absent from the design and never "
                            "consumed by a later group",
                        )
                    )
            else:
                lc = cell.register_cell if cell.is_register else None
                if lc is None or lc.name != group.libcell:
                    out.append(
                        Violation(
                            "composed-cell-libcell",
                            subject,
                            f"expected {group.libcell}, found "
                            f"{cell.libcell.name}",
                        )
                    )
                elif group.bits > lc.width_bits:
                    out.append(
                        Violation(
                            "composed-bits-overflow",
                            subject,
                            f"{group.bits} bits composed into "
                            f"{lc.width_bits}-bit {lc.name}",
                        )
                    )
                elif (
                    len(RegisterView(cell).connected_bits()) > lc.width_bits
                ):  # pragma: no cover - overflow guard above catches first
                    out.append(
                        Violation(
                            "composed-bits-overflow",
                            subject,
                            "more connected bits than the cell has",
                        )
                    )
            for member in group.members:
                if member in design.cells:
                    out.append(
                        Violation(
                            "composed-member-alive",
                            subject,
                            f"member {member} still in the design",
                        )
                    )

    if design is not None:
        live = design.total_register_count()
        if result.registers_after is not None and result.registers_after != live:
            out.append(
                Violation(
                    "register-count-mismatch",
                    f"design {design.name}",
                    f"result says {result.registers_after} registers, "
                    f"design has {live}",
                )
            )

        legalization = result.legalization
        if legalization is not None and legalization.ok:
            rows = PlacementRows(
                design.die,
                design.library.technology.row_height,
                design.library.technology.site_width,
            )
            for name in legalization.moved:
                cell = design.cells.get(name)
                if cell is None:
                    continue
                snapped = rows.snap(cell.origin)
                if (
                    abs(snapped.x - cell.origin.x) > _SNAP_TOL
                    or abs(snapped.y - cell.origin.y) > _SNAP_TOL
                ):
                    out.append(
                        Violation(
                            "placement-off-grid",
                            f"cell {name}",
                            f"legalized to {cell.origin} which is off the "
                            f"row/site grid (nearest {snapped})",
                        )
                    )

    return out


# ---------------------------------------------------------------------------
# Aggregate
# ---------------------------------------------------------------------------


def check_all(
    design: Design,
    timer: Timer | None = None,
    scan_model: ScanModel | None = None,
    result=None,
) -> list[Violation]:
    """Run every applicable checker and concatenate the findings."""
    out = check_design(design)
    if timer is not None:
        out += check_timing(timer)
    if scan_model is not None:
        out += check_scan(scan_model, design)
    if result is not None:
        out += check_composition(result, design)
    return out
