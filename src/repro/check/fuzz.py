"""Edit-storm fuzzer: seeded random edits, every invariant checked.

Drives an :class:`~repro.flow.session.EcoSession` through storms of
randomized edits (moves, sizings, manual merges, decompositions, rewires,
skew changes), recomposing after each storm with the session's audit mode
armed, and running the full invariant + differential-oracle suite on the
result.  Every proposed edit is recorded as a *concrete* operation — cell
names, coordinates, net names — so a failing run dumps a reproducer JSON
(schema ``repro.check.reproducer/1``) that :func:`replay` re-executes
deterministically without any random state.

Determinism rules the design of the op format:

* proposal consumes the RNG, application never does — replay applies the
  recorded ops directly;
* names minted during application (composed MBRs, decomposed bits) come
  from the design's own ``unique_name`` counter, which evolves identically
  on replay; the fuzzer annotates the minted names onto the op and replay
  asserts they match, so any nondeterminism is itself a detected failure.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.check.invariants import Violation, check_all, format_violations
from repro.check.oracles import diff_arraytimer_vs_dict, diff_timer_vs_fresh
from repro.flow.session import EcoAuditError, EcoSession
from repro.geometry import Point
from repro.library.library import CellLibrary
from repro.netlist.db import Pin, Port
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.netlist.registers import RegisterView

REPRODUCER_SCHEMA = "repro.check.reproducer/1"

#: Edit kinds the proposal loop draws from (weights implicit: uniform).
OP_KINDS = ("move", "swap", "merge", "decompose", "rewire", "skew")

_SKEW_OFFSETS = (0.0, 0.02, 0.05, -0.03, 0.1)


@dataclass
class EditWorld:
    """The mutable state one storm edits: a session plus its parts."""

    session: EcoSession

    @property
    def design(self) -> Design:
        return self.session.design

    @property
    def timer(self):
        return self.session.timer

    @property
    def scan_model(self):
        return self.session.scan_model


# ---------------------------------------------------------------------------
# Proposal: RNG -> concrete op dict (or None when the kind has no candidate)
# ---------------------------------------------------------------------------


def _editable_registers(design: Design) -> list:
    return sorted(
        (c for c in design.registers() if not (c.fixed or c.dont_touch)),
        key=lambda c: c.name,
    )


def _propose_move(world: EditWorld, rng: random.Random) -> dict | None:
    regs = _editable_registers(world.design)
    if not regs:
        return None
    cell = rng.choice(regs)
    die = world.design.die
    x = min(
        max(die.xlo, cell.origin.x + rng.uniform(-4.0, 4.0)),
        die.xhi - cell.libcell.width,
    )
    y = min(
        max(die.ylo, cell.origin.y + rng.uniform(-4.0, 4.0)),
        die.yhi - cell.libcell.height,
    )
    return {"op": "move", "cell": cell.name, "x": x, "y": y}


def _propose_swap(world: EditWorld, rng: random.Random) -> dict | None:
    regs = _editable_registers(world.design)
    die = world.design.die
    rng.shuffle(regs)
    for cell in regs:
        current = cell.register_cell
        options = [
            c
            for c in world.design.library.register_cells(
                current.func_class,
                current.width_bits,
                scan_styles=(current.scan_style,),
            )
            if c.name != current.name
            # a wider drive variant must still fit at the current origin:
            # nobody legalizes a user-swapped cell, so keep the edit legal.
            and cell.origin.x + c.width <= die.xhi
            and cell.origin.y + c.height <= die.yhi
        ]
        if options:
            return {"op": "swap", "cell": cell.name, "libcell": rng.choice(options).name}
    return None


def _propose_merge(world: EditWorld, rng: random.Random) -> dict | None:
    """Two compatible non-scan 1-bit flops into a 2-bit MBR.

    Restricted to non-scan registers so the manual merge never has to
    update the scan model by hand — scan merges are exercised through the
    session's own recompose, which owns that bookkeeping.
    """
    singles = [
        c
        for c in _editable_registers(world.design)
        if c.width_bits == 1 and not c.register_cell.func_class.is_scan
    ]
    rng.shuffle(singles)
    for i, a in enumerate(singles):
        va = RegisterView(a)
        for b in singles[i + 1 :]:
            if b.register_cell.func_class is not a.register_cell.func_class:
                continue
            vb = RegisterView(b)
            if va.clock_net is not vb.clock_net:
                continue
            if va.control_nets() != vb.control_nets():
                continue
            targets = world.design.library.register_cells(
                a.register_cell.func_class,
                2,
                scan_styles=(a.register_cell.scan_style,),
            )
            if not targets:
                continue
            die = world.design.die
            target = targets[0]
            mid = Point(
                min(
                    max(die.xlo, (a.origin.x + b.origin.x) / 2.0),
                    die.xhi - target.width,
                ),
                min(
                    max(die.ylo, (a.origin.y + b.origin.y) / 2.0),
                    die.yhi - target.height,
                ),
            )
            return {
                "op": "merge",
                "cells": [a.name, b.name],
                "target": target.name,
                "x": mid.x,
                "y": mid.y,
            }
    return None


def _propose_decompose(world: EditWorld, rng: random.Random) -> dict | None:
    wide = [c for c in _editable_registers(world.design) if c.width_bits > 1]
    if not wide:
        return None
    return {"op": "decompose", "cell": rng.choice(wide).name}


def _propose_rewire(world: EditWorld, rng: random.Random) -> dict | None:
    """Re-point one combinational input at a seed-driven net.

    Candidate target nets are driven directly by a register Q pin or an
    input port, which cannot create a combinational cycle no matter where
    the sink sits.
    """
    design = world.design
    seed_nets = sorted(
        net.name
        for net in design.nets.values()
        if not net.is_clock
        and (
            (
                isinstance(net.driver, Pin)
                and net.driver.cell.is_register
                # Q outputs only: scan-out nets get swept and restitched
                # by composition, which would orphan a comb sink.
                and net.driver.desc.name.startswith("Q")
            )
            or isinstance(net.driver, Port)
        )
    )
    if not seed_nets:
        return None
    comb_inputs = sorted(
        pin.full_name
        for cell in design.cells.values()
        if not cell.is_register
        for pin in cell.pins.values()
        if pin.is_input and pin.net is not None and not pin.net.is_clock
    )
    if not comb_inputs:
        return None
    pin_name = rng.choice(comb_inputs)
    cell_name, _, leaf = pin_name.partition("/")
    current = design.cells[cell_name].pin(leaf).net
    choices = [n for n in seed_nets if current is None or n != current.name]
    if not choices:
        return None
    return {"op": "rewire", "pin": pin_name, "net": rng.choice(choices)}


def _propose_skew(world: EditWorld, rng: random.Random) -> dict | None:
    regs = _editable_registers(world.design)
    if not regs:
        return None
    return {
        "op": "skew",
        "cell": rng.choice(regs).name,
        "offset": rng.choice(_SKEW_OFFSETS),
    }


_PROPOSERS = {
    "move": _propose_move,
    "swap": _propose_swap,
    "merge": _propose_merge,
    "decompose": _propose_decompose,
    "rewire": _propose_rewire,
    "skew": _propose_skew,
}


def propose_op(
    world: EditWorld, rng: random.Random, kind: str | None = None
) -> dict | None:
    """Draw one concrete edit of ``kind`` (random kind when ``None``)."""
    if kind is None:
        kind = rng.choice(OP_KINDS)
    return _PROPOSERS[kind](world, rng)


def propose_fault(world: EditWorld) -> dict:
    """A deliberate invariant break: a second driver forced onto a live net.

    Deterministic without RNG — the victim is the alphabetically first
    non-clock net with a driver and sinks; the rogue buffer's name is
    derived from the design size, not the ``unique_name`` counter, so
    injection leaves the counter stream untouched.
    """
    design = world.design
    victim = min(
        net.name
        for net in design.nets.values()
        if not net.is_clock and net.driver is not None and net.sinks
    )
    return {
        "op": "corrupt-driver",
        "net": victim,
        "buf": f"storm_fault_{len(design.cells)}",
    }


# ---------------------------------------------------------------------------
# Application: op dict -> world mutation (no RNG; replay calls this too)
# ---------------------------------------------------------------------------


class ReplayDivergence(AssertionError):
    """A replayed op minted different names than the recorded run."""


def apply_op(world: EditWorld, op: dict) -> bool:
    """Apply one concrete op; returns False when it legally no-ops.

    Ops annotated with minted names (``merge.new_cell``,
    ``decompose.new_cells``) are cross-checked on re-application; a
    mismatch raises :class:`ReplayDivergence`.
    """
    session, design = world.session, world.design
    kind = op["op"]
    if kind == "move":
        with session.edit():
            design.move_cell(design.cells[op["cell"]], Point(op["x"], op["y"]))
        return True
    if kind == "swap":
        with session.edit():
            design.swap_libcell(
                design.cells[op["cell"]], design.library.cell(op["libcell"])
            )
        return True
    if kind == "merge":
        group = [design.cells[n] for n in op["cells"]]
        target = design.library.cell(op["target"])
        try:
            record = compose_mbr(
                design, group, target, Point(op["x"], op["y"])
            )
        except ComposeError:
            return False
        minted = record.new_cell.name if record.new_cell is not None else None
        if op.setdefault("new_cell", minted) != minted:
            raise ReplayDivergence(
                f"merge minted {minted!r}, recorded run minted "
                f"{op['new_cell']!r}"
            )
        session.absorb(record)
        return True
    if kind == "decompose":
        from repro.core.decompose import decompose_mbr

        record = decompose_mbr(design, design.cells[op["cell"]], world.scan_model)
        minted = sorted(c.name for c in record.new_cells)
        if op.setdefault("new_cells", minted) != minted:
            raise ReplayDivergence(
                f"decompose minted {minted!r}, recorded run minted "
                f"{op['new_cells']!r}"
            )
        session.absorb(record)
        return True
    if kind == "rewire":
        cell_name, _, leaf = op["pin"].partition("/")
        pin = design.cells[cell_name].pin(leaf)
        with session.edit():
            design.connect(pin, design.nets[op["net"]])
        return True
    if kind == "skew":
        world.timer.set_skew(op["cell"], op["offset"])
        return True
    if kind == "corrupt-driver":
        with session.edit():
            rogue = design.add_cell(
                op["buf"], design.library.cell("BUF_X1"), Point(0.0, 0.0)
            )
            design.connect(rogue.pin("Z"), design.nets[op["net"]])
        return True
    raise ValueError(f"unknown op kind {kind!r}")


# ---------------------------------------------------------------------------
# The storm loop
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything one fuzz run produced: violations, trace, reproducer."""

    preset: str
    scale: float
    seed: int
    storms_run: int = 0
    edits_applied: int = 0
    violations: list[Violation] = field(default_factory=list)
    trace: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(v.is_error for v in self.violations)

    def reproducer(self) -> dict:
        """The JSON document that makes this run replayable."""
        return {
            "schema": REPRODUCER_SCHEMA,
            "preset": self.preset,
            "scale": self.scale,
            "seed": self.seed,
            "trace": self.trace,
            "violations": [
                {
                    "check": v.check,
                    "subject": v.subject,
                    "message": v.message,
                    "severity": v.severity,
                }
                for v in self.violations
            ],
        }

    def format(self) -> str:
        head = (
            f"repro check: preset {self.preset} scale {self.scale} "
            f"seed {self.seed} — {self.storms_run} storm(s), "
            f"{self.edits_applied} edit(s) applied"
        )
        if self.ok:
            return f"{head}\nOK — no invariant violations"
        body = format_violations([v for v in self.violations if v.is_error])
        return f"{head}\nFAIL — violations:\n{body}"


def _recompose_and_check(world: EditWorld, storm: int) -> list[Violation]:
    """One storm's verdict: recompose, then sweep checkers and oracles.

    Shared by :func:`run_check` and :func:`replay` so both derive a
    storm's violations identically.  A crash anywhere — audit divergence,
    a composer exception on a corrupted netlist, a checker that cannot
    even evaluate — degrades to a deterministic violation instead of
    aborting the run, so fault-injected worlds still produce a report.
    """
    out: list[Violation] = []
    result = None
    try:
        result = world.session.recompose().result
    except EcoAuditError as exc:
        out.append(
            Violation(
                "eco-audit",
                f"storm {storm}",
                f"incremental recompose diverged: {exc}",
            )
        )
    except Exception as exc:  # noqa: BLE001 - corrupted worlds may crash anywhere
        out.append(
            Violation(
                "storm-crash", f"storm {storm}", f"recompose raised {exc!r}"
            )
        )
    try:
        out += check_all(world.design, world.timer, world.scan_model, result)
        out += diff_timer_vs_fresh(world.timer)
        out += diff_arraytimer_vs_dict(world.timer)
    except Exception as exc:  # noqa: BLE001
        out.append(
            Violation(
                "checker-crash", f"storm {storm}", f"checkers raised {exc!r}"
            )
        )
    return out


def run_check(
    preset_name: str = "D1",
    scale: float = 0.15,
    storms: int = 5,
    seed: int = 7,
    edits_per_storm: int = 8,
    inject_fault: bool = False,
    library: CellLibrary | None = None,
) -> FuzzReport:
    """Run ``storms`` seeded edit storms with every checker armed.

    Each storm applies up to ``edits_per_storm`` random edits through the
    session, recomposes with the ECO audit shadow-check on, then runs the
    invariant checkers and the incremental-STA oracle.  ``inject_fault``
    plants a deliberate multi-driver corruption at the start of the first
    storm (the CLI's self-test / CI-wiring check).
    """
    from repro.bench import generate_design, preset
    from repro.library import default_library

    report = FuzzReport(preset=preset_name, scale=scale, seed=seed)
    reg = obs.get_registry()
    with obs.span("check.fuzz", cat="check", preset=preset_name, storms=storms):
        bundle = generate_design(preset(preset_name, scale=scale), library or default_library())
        world = EditWorld(
            EcoSession(
                bundle.design, bundle.timer, bundle.scan_model, audit_mode=True
            )
        )
        world.session.recompose()  # prime: cache populated, audit armed
        rng = random.Random(seed)

        for storm in range(storms):
            with obs.span("check.storm", cat="check", index=storm):
                if inject_fault and storm == 0:
                    fault = propose_fault(world)
                    apply_op(world, fault)
                    report.trace.append(fault)
                for _ in range(edits_per_storm):
                    op = propose_op(world, rng)
                    if op is None:
                        continue
                    if apply_op(world, op):
                        report.trace.append(op)
                        report.edits_applied += 1
                        reg.counter("check.edits_applied").inc()
                report.trace.append({"op": "recompose"})
                found = _recompose_and_check(world, storm)
                report.violations.extend(found)
                reg.counter("check.violations").inc(
                    sum(1 for v in found if v.is_error)
                )
            report.storms_run = storm + 1
            if any(v.is_error for v in report.violations):
                break  # first broken storm is the reproducer; stop digging

    reg.gauge("check.violations_total").set(
        float(sum(1 for v in report.violations if v.is_error))
    )
    return report


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay(path: str | Path, library: CellLibrary | None = None) -> FuzzReport:
    """Re-execute a reproducer file; returns the re-derived report.

    No RNG is involved: the recorded concrete ops are applied in order,
    recomposing at each recorded ``recompose`` marker and re-running the
    same checkers.  The result is bit-deterministic, so a reproducer's
    violations come back identical run after run.
    """
    from repro.bench import generate_design, preset
    from repro.library import default_library

    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != REPRODUCER_SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, expected {REPRODUCER_SCHEMA!r}"
        )

    report = FuzzReport(
        preset=doc["preset"], scale=doc["scale"], seed=doc["seed"]
    )
    bundle = generate_design(
        preset(doc["preset"], scale=doc["scale"]), library or default_library()
    )
    world = EditWorld(
        EcoSession(bundle.design, bundle.timer, bundle.scan_model, audit_mode=True)
    )
    world.session.recompose()

    for op in doc["trace"]:
        if op["op"] == "recompose":
            report.violations.extend(
                _recompose_and_check(world, report.storms_run)
            )
            report.storms_run += 1
        elif apply_op(world, op):
            report.edits_applied += 1
        report.trace.append(op)
    return report


def write_reproducer(report: FuzzReport, path: str | Path) -> Path:
    """Dump the reproducer JSON; returns the path written."""
    out = Path(path)
    out.write_text(json.dumps(report.reproducer(), indent=2) + "\n")
    return out
