"""The MBR composition engine, as a pipeline of typed stages.

This ties Sections 2-4 together.  Each incremental pass runs the stage
pipeline **analyze → graph → partition → enumerate → solve → apply**, and
the run finishes with **scan → legalize**:

* *analyze* — per-register compatibility analysis;
* *graph* — the compatibility graph;
* *partition* — clock-pin-driven decomposition into ≤30-node subgraphs;
* *enumerate* — weighted candidate MBRs per subgraph;
* *solve* — the set-partitioning ILPs, detached into pure picklable
  :class:`~repro.core.subproblem.SubproblemSpec` s and (optionally) fanned
  out across a process pool (``ComposerConfig.workers``);
* *apply* — map, place, and commit every selected candidate (serial: it
  mutates the netlist and the scan model);
* *scan* / *legalize* — chain reordering/restitching and row legalization.

Every stage execution is timed into the :class:`CompositionResult.trace`
(:class:`repro.engine.StageTrace`).
"""

from __future__ import annotations

import hashlib
import math
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import networkx as nx

from repro import obs
from repro.core.candidates import CandidateConfig, CandidateMBR, enumerate_candidates
from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    analyze_register,
    analyze_registers,
    info_signature,
)
from repro.core.graph import build_compatibility_graph, patch_compatibility_graph
from repro.core.mapping import MappingChoice
from repro.core.mbr_placement import place_mbr
from repro.core.partition import DEFAULT_MAX_NODES, partition_component
from repro.core.subproblem import make_spec, solve_subproblems
from repro.engine import FlowContext, Pipeline, StageTrace, stage
from repro.geometry.rect import Rect
from repro.geometry.region import FeasibleRegion
from repro.library.functional import ScanStyle
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.netlist.registers import RegisterBit, RegisterView
from repro.placement.legalize import LegalizeResult, PlacementRows, legalize
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass
class ComposerConfig:
    """All knobs of one composition run."""

    compatibility: CompatibilityConfig = field(default_factory=CompatibilityConfig)
    candidates: CandidateConfig = field(default_factory=CandidateConfig)
    max_subgraph_nodes: int = DEFAULT_MAX_NODES
    solver: str = "exact"  # "exact" (our branch-and-bound) or "scipy"
    placement_method: str = "pwl"  # "pwl" or "lp"
    run_legalize: bool = True
    legalize_max_displacement: float | None = None
    passes: int = 2
    """Incremental composition passes.  The paper applies composition
    incrementally, including on MBRs composed earlier; a second pass over
    the re-analyzed design merges newly-adjacent MBRs (e.g. two fresh 4-bit
    cells into an 8-bit) and groups whose polygons became clean when their
    blockers merged away."""
    workers: int = 1
    """Process-pool width of the solve stage.  The per-subgraph ILPs are
    independent (Section 3), so they fan out across processes; ``1`` keeps
    the historical in-process serial path.  Both paths are bit-identical."""


@dataclass
class ComposedGroup:
    """One applied composition."""

    new_cell: str
    libcell: str
    members: tuple[str, ...]
    bits: int
    weight: float
    incomplete: bool


@dataclass
class CompositionResult:
    """Statistics and records of a composition run."""

    composed: list[ComposedGroup] = field(default_factory=list)
    rejected: list[tuple[tuple[str, ...], str]] = field(default_factory=list)
    registers_before: int = 0
    registers_after: int = 0
    composable_registers: int = 0
    subgraphs: int = 0
    candidates_considered: int = 0
    ilp_nodes: int = 0
    runtime_seconds: float = 0.0
    legalization: LegalizeResult | None = None
    trace: StageTrace | None = None

    @property
    def register_reduction(self) -> int:
        return self.registers_before - self.registers_after


@dataclass
class ComponentCache:
    """Cached outcome of one connected component, keyed by content digest.

    ``chosen`` is the solver's selection for the component (non-singleton
    candidates only).  Enumeration and solving are deterministic functions
    of the component's content, so a digest hit may replay ``chosen``
    verbatim instead of re-partitioning/re-enumerating/re-solving.
    """

    digest: str
    nodes: tuple[str, ...]
    subgraphs: int
    candidates: int
    ilp_nodes: int
    chosen: tuple[CandidateMBR, ...]


#: Version tag of the serialized :class:`ComponentCache` payload.  A spill
#: file carrying any other tag is discarded, never reinterpreted.
ENTRY_CODEC_SCHEMA = "repro.compose.component/1"


def entry_payload(entry: ComponentCache) -> dict:
    """Pure-data form of a cache entry (the spill / accounting codec).

    Library cells are referenced **by name** — the netlist store interns
    libcells by object identity, so a decoded entry must rebind against the
    live :class:`~repro.library.library.CellLibrary` rather than carry its
    own unpickled copies.  Regions flatten to their rect coordinates.
    """
    chosen = []
    for c in entry.chosen:
        m = c.mapping
        region = None
        if c.region is not None:
            r = c.region.rect
            region = (r.xlo, r.ylo, r.xhi, r.yhi, bool(c.region.pinned))
        chosen.append(
            {
                "members": list(c.members),
                "bits": c.bits,
                "weight": c.weight,
                "blockers": c.blockers,
                "cell": None if m is None else m.cell.name,
                "incomplete": False if m is None else bool(m.incomplete),
                "spare_bits": 0 if m is None else m.spare_bits,
                "region": region,
            }
        )
    return {
        "digest": entry.digest,
        "nodes": list(entry.nodes),
        "subgraphs": entry.subgraphs,
        "candidates": entry.candidates,
        "ilp_nodes": entry.ilp_nodes,
        "chosen": chosen,
    }


def entry_from_payload(payload: dict, library) -> ComponentCache:
    """Rebuild a :class:`ComponentCache` from its pure-data payload.

    Raises ``KeyError`` when a referenced cell name is unknown to
    ``library`` — callers treat any exception as "payload not trusted".
    """
    chosen = []
    for c in payload["chosen"]:
        mapping = None
        if c["cell"] is not None:
            mapping = MappingChoice(
                cell=library.cell(c["cell"]),
                incomplete=bool(c["incomplete"]),
                spare_bits=int(c["spare_bits"]),
            )
        region = None
        if c["region"] is not None:
            xlo, ylo, xhi, yhi, pinned = c["region"]
            region = FeasibleRegion(Rect(xlo, ylo, xhi, yhi), pinned=bool(pinned))
        chosen.append(
            CandidateMBR(
                members=tuple(c["members"]),
                bits=int(c["bits"]),
                weight=float(c["weight"]),
                blockers=int(c["blockers"]),
                mapping=mapping,
                region=region,
            )
        )
    return ComponentCache(
        digest=payload["digest"],
        nodes=tuple(payload["nodes"]),
        subgraphs=int(payload["subgraphs"]),
        candidates=int(payload["candidates"]),
        ilp_nodes=int(payload["ilp_nodes"]),
        chosen=tuple(chosen),
    )


def entry_blob(entry: ComponentCache) -> bytes:
    """Self-describing binary form of an entry (schema-tagged pickle)."""
    return pickle.dumps(
        {"schema": ENTRY_CODEC_SCHEMA, "payload": entry_payload(entry)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def entry_from_blob(blob: bytes, library) -> ComponentCache:
    """Decode :func:`entry_blob` output; raises on any mismatch or damage."""
    wrapper = pickle.loads(blob)
    if not isinstance(wrapper, dict) or wrapper.get("schema") != ENTRY_CODEC_SCHEMA:
        raise ValueError(f"unknown component payload schema: {wrapper!r:.80}")
    return entry_from_payload(wrapper["payload"], library)


@dataclass
class CompositionCache:
    """Cross-recompose memo of the composition pipeline.

    Owned by a :class:`repro.flow.session.EcoSession`; ``compose_design``
    itself runs cache-less (``ComposeState.cache is None``), which keeps the
    one-shot path byte-identical to the pre-cache implementation.

    ``infos`` and ``graph`` are the live analysis state (mutated in place by
    the incremental analyze/graph stages); ``components`` maps content
    digests (see :func:`component_digest`) to :class:`ComponentCache`
    entries, LRU-bounded by **both** ``max_components`` and ``max_bytes``
    (sizes per :func:`entry_blob`, so a long session cannot grow the memo
    without bound).

    When ``shared`` is attached (a :class:`repro.serve.SharedComponentCache`
    or anything duck-typed like it), local misses fall through to the
    process-wide tier and fresh entries are written through to it; the
    shared tier needs ``namespace`` (library/config fingerprint — those are
    out of :func:`component_digest` by the "fixed per session" contract) and
    ``library`` (to rebind spilled entries' cells by name).

    ``replay_in_full`` opts *full* composes into cache reads.  The default
    (off) keeps the classic contract — full mode never reads, so one-shot
    composes stay byte-identical to the pre-cache implementation; server
    sessions switch it on so priming a design replays components already
    solved for another design (sound: replay is bit-identical by the digest
    contract, which the ECO audit shadow-checks).
    """

    infos: dict[str, RegisterInfo] = field(default_factory=dict)
    graph: object | None = None
    components: "OrderedDict[str, ComponentCache]" = field(
        default_factory=OrderedDict
    )
    max_components: int = 8192
    max_bytes: int = 64 * 1024 * 1024
    total_bytes: int = 0
    shared: object | None = None
    namespace: str = ""
    library: object | None = None
    replay_in_full: bool = False
    _entry_bytes: dict[str, int] = field(default_factory=dict)
    incumbents: "OrderedDict[tuple[str, ...], tuple[frozenset[str], ...]]" = field(
        default_factory=OrderedDict
    )
    """Last solver selection per subgraph, keyed by its sorted node-name
    tuple and stored as member-name groups (non-singletons only).  Unlike
    ``components``, this survives *content* changes: when a digest misses
    but the same registers re-form a subgraph, the prior selection is
    re-weighed against the fresh candidates into a
    :class:`~repro.ilp.setpart.WarmStart` bound that prunes the new solve
    immediately."""

    def get(self, digest: str) -> ComponentCache | None:
        entry = self.components.get(digest)
        if entry is not None:
            self.components.move_to_end(digest)
            obs.get_registry().counter("compose.cache.hits").inc()
            return entry
        obs.get_registry().counter("compose.cache.misses").inc()
        if self.shared is not None:
            entry = self.shared.get(
                digest, namespace=self.namespace, library=self.library
            )
            if entry is not None:
                # Adopt locally so the next lookup is a local hit; the entry
                # is already in the shared tier, so no write-through.
                self._store(entry)
        return entry

    def put(self, entry: ComponentCache) -> None:
        blob = self._store(entry)
        if self.shared is not None:
            self.shared.put(entry, namespace=self.namespace, blob=blob)

    def _store(self, entry: ComponentCache) -> bytes:
        """Insert into the local memo, then evict LRU to both budgets."""
        blob = entry_blob(entry)
        digest = entry.digest
        self.total_bytes -= self._entry_bytes.get(digest, 0)
        self.components[digest] = entry
        self.components.move_to_end(digest)
        self._entry_bytes[digest] = len(blob)
        self.total_bytes += len(blob)
        evicted = 0
        while len(self.components) > 1 and (
            len(self.components) > self.max_components
            or self.total_bytes > self.max_bytes
        ):
            old, _ = self.components.popitem(last=False)
            self.total_bytes -= self._entry_bytes.pop(old, 0)
            evicted += 1
        if evicted:
            obs.get_registry().counter("compose.cache.evictions").inc(evicted)
        return blob

    def get_incumbent(
        self, nodes: tuple[str, ...]
    ) -> tuple[frozenset[str], ...] | None:
        groups = self.incumbents.get(nodes)
        if groups is not None:
            self.incumbents.move_to_end(nodes)
        return groups

    def put_incumbent(
        self, nodes: tuple[str, ...], groups: tuple[frozenset[str], ...]
    ) -> None:
        self.incumbents[nodes] = groups
        self.incumbents.move_to_end(nodes)
        while len(self.incumbents) > self.max_components:
            self.incumbents.popitem(last=False)


def component_digest(
    nodes: list[str],
    graph: "nx.Graph",
    infos: dict[str, RegisterInfo],
    all_regs,
    scan_model: ScanModel | None,
) -> str:
    """Content fingerprint of one connected component.

    Covers everything partition/enumerate/solve read for the component:

    * every member's :func:`~repro.core.compatibility.info_signature`
      (slacks, region, center, class, bits — bit-exact);
    * the member's scan context — partition, chain, ordered flag, and chain
      position for *ordered* chains (unordered positions are free to change
      without affecting enumeration, so they stay out of the key);
    * the component's internal edges;
    * the centers of *foreign* registers strictly inside the members'
      footprint bounding box.  Candidate test polygons are subsets of that
      box, and blockers are centers strictly inside a polygon — so these
      centers are the only out-of-component state the placement weights can
      observe, and freezing them makes weight reuse sound.

    The library, die, and composer config are fixed per session and stay
    out of the key.
    """
    h = hashlib.blake2b(digest_size=16)
    node_set = set(nodes)
    xlo = ylo = math.inf
    xhi = yhi = -math.inf
    for name in nodes:
        info = infos[name]
        h.update(repr(info_signature(info)).encode())
        fp = info.cell.footprint
        xlo, ylo = min(xlo, fp.xlo), min(ylo, fp.ylo)
        xhi, yhi = max(xhi, fp.xhi), max(yhi, fp.yhi)
        if scan_model is not None:
            chain = scan_model.chain_of(name)
            if chain is None:
                h.update(b"|scan:-")
            else:
                pos = chain.position(name) if chain.ordered else -1
                h.update(
                    f"|scan:{chain.partition}:{chain.name}:"
                    f"{int(chain.ordered)}:{pos}".encode()
                )
    for a in nodes:
        for b in sorted(graph.adj[a]):
            if a < b:
                h.update(f"|e:{a}~{b}".encode())
    if all_regs is not None:
        for cx, cy in all_regs.centers_in_box(xlo, ylo, xhi, yhi, node_set):
            h.update(f"|f:{cx!r},{cy!r}".encode())
    return h.hexdigest()


@dataclass
class ComposeState(FlowContext):
    """Shared context of the composition pipeline (one run, all passes).

    ``dirty`` is the stage work-set: ``None`` means "everything" (the
    classic full compose — also the only mode when ``cache`` is ``None``),
    a set of register names scopes the analyze/graph/partition stages to
    those registers and their components.  ``removed`` names registers gone
    from the design since the cache was last current.  ``change_log``
    collects the ChangeRecords of every mutating stage so a session can
    compute the next recompose's dirty set.
    """

    config: ComposerConfig = field(default_factory=ComposerConfig)
    result: CompositionResult = field(default_factory=CompositionResult)
    workers: int = 1
    pass_index: int = 0
    infos: dict[str, RegisterInfo] = field(default_factory=dict)
    all_regs: object | None = None
    graph: object | None = None
    parts: list = field(default_factory=list)
    candidates: list[list[CandidateMBR]] = field(default_factory=list)
    chosen: list[CandidateMBR] = field(default_factory=list)
    new_cells: list = field(default_factory=list)
    pass_cells: list = field(default_factory=list)
    dirty: set[str] | None = None
    removed: set[str] = field(default_factory=set)
    cache: CompositionCache | None = None
    change_log: list = field(default_factory=list)
    analysis_changed: set[str] | None = None
    reused_chosen: list[CandidateMBR] = field(default_factory=list)
    comp_work: list = field(default_factory=list)


@stage("analyze")
def _stage_analyze(state: ComposeState):
    """(Re-)analyze the work-set's compatibility profiles.

    Full mode (``dirty is None`` or no primed cache): every register, as
    always.  Incremental mode: only the dirty registers are re-analyzed;
    a refreshed info replaces the cached one only when its *content*
    changed (clean registers keep their exact objects, so graph node
    attributes stay consistent), and the set of actually-changed names is
    handed to the graph stage.
    """
    from repro.core.weights import RegisterField

    incremental = (
        state.dirty is not None
        and state.cache is not None
        and bool(state.cache.infos)
    )
    if not incremental:
        state.infos = analyze_registers(
            state.design, state.timer, state.scan_model, state.config.compatibility
        )
        state.analysis_changed = None
        if state.cache is not None:
            state.cache.infos = state.infos
        refreshed = len(state.infos)
    else:
        infos = state.cache.infos
        changed: set[str] = set()
        for name in state.removed:
            if infos.pop(name, None) is not None:
                changed.add(name)
        refreshed = 0
        for name in sorted(state.dirty):
            cell = state.design.cells.get(name)
            if cell is None or not cell.is_register:
                if infos.pop(name, None) is not None:
                    changed.add(name)
                continue
            refreshed += 1
            fresh = analyze_register(
                state.design, cell, state.timer, state.config.compatibility
            )
            old = infos.get(name)
            if old is None or info_signature(old) != info_signature(fresh):
                infos[name] = fresh
                changed.add(name)
        state.infos = infos
        state.analysis_changed = changed
    if state.pass_index == 0:
        state.result.composable_registers = sum(
            1 for i in state.infos.values() if i.composable
        )
    state.all_regs = RegisterField(list(state.infos.values()))
    return {
        "registers": len(state.infos),
        "registers_recomputed": refreshed,
        "registers_reused": len(state.infos) - refreshed,
    }


@stage("graph")
def _stage_graph(state: ComposeState):
    """Build — or incrementally patch — the compatibility graph."""
    if (
        state.analysis_changed is None
        or state.cache is None
        or state.cache.graph is None
    ):
        state.graph = build_compatibility_graph(
            state.infos, state.scan_model, state.config.compatibility
        )
        if state.cache is not None:
            state.cache.graph = state.graph
        retested = state.graph.number_of_nodes()
    else:
        state.graph = state.cache.graph
        retested = patch_compatibility_graph(
            state.graph,
            state.infos,
            state.analysis_changed,
            state.scan_model,
            state.config.compatibility,
        )
    return {
        "nodes": state.graph.number_of_nodes(),
        "edges": state.graph.number_of_edges(),
        "nodes_recomputed": retested,
        "nodes_reused": state.graph.number_of_nodes() - retested,
    }


@stage("partition")
def _stage_partition(state: ComposeState):
    """Cut the graph into independent ≤max_nodes subgraphs.

    With a cache, every connected component is fingerprinted
    (:func:`component_digest`); in incremental mode a digest hit replays the
    cached solver selection and skips partition/enumerate/solve for that
    component entirely.  Full mode never *reads* the cache (identical
    behavior to the classic path) but still records digests for later reuse
    — unless the cache opts in via ``replay_in_full`` (service sessions do,
    so priming one design replays components solved for another).
    """
    if state.config.max_subgraph_nodes < 2:
        raise ValueError("max_nodes must be at least 2")
    parts: list = []
    state.reused_chosen = []
    state.comp_work = []
    reused = 0
    n_components = 0
    for component in nx.connected_components(state.graph):
        n_components += 1
        nodes = sorted(component)
        digest = None
        if state.cache is not None:
            digest = component_digest(
                nodes, state.graph, state.infos, state.all_regs, state.scan_model
            )
            if state.dirty is not None or state.cache.replay_in_full:
                entry = state.cache.get(digest)
                if entry is not None:
                    reused += 1
                    state.reused_chosen.extend(entry.chosen)
                    continue
        start = len(parts)
        parts.extend(
            partition_component(state.graph, nodes, state.config.max_subgraph_nodes)
        )
        state.comp_work.append((digest, tuple(nodes), start, len(parts)))
    state.parts = parts
    state.result.subgraphs += len(parts)
    reg = obs.get_registry()
    reg.counter("compose.components_reused").inc(reused)
    reg.counter("compose.components_recomputed").inc(n_components - reused)
    return {
        "subgraphs": len(parts),
        "components": n_components,
        "components_reused": reused,
        "components_recomputed": n_components - reused,
    }


@stage("enumerate")
def _stage_enumerate(state: ComposeState):
    """Enumerate and weigh candidate MBRs per subgraph."""
    state.candidates = [
        enumerate_candidates(
            part,
            state.all_regs,
            state.design.library,
            state.scan_model,
            state.config.candidates,
        )
        for part in state.parts
    ]
    count = sum(len(c) for c in state.candidates)
    state.result.candidates_considered += count
    return {"candidates": count}


def _warm_bound(
    nodes: tuple[str, ...],
    candidates: list[CandidateMBR],
    groups: tuple[frozenset[str], ...] | None,
) -> float:
    """Re-weigh a prior selection against the current candidate list.

    Returns the current-weight objective of completing ``groups`` with
    singletons — a known-feasible solution of the *current* instance, hence
    a sound :class:`~repro.ilp.setpart.WarmStart` bound.  Returns ``inf``
    (no warm start) when the prior selection is no longer expressible: a
    group that is not among today's candidates, overlaps another, or a
    member whose singleton candidate disappeared.
    """
    if groups is None:
        return float("inf")
    by_members: dict[frozenset[str], float] = {}
    for c in candidates:
        key = frozenset(c.members)
        w = by_members.get(key)
        if w is None or c.weight < w:
            by_members[key] = c.weight
    node_set = set(nodes)
    covered: set[str] = set()
    total = 0.0
    for g in groups:
        w = by_members.get(g)
        if w is None or not g <= node_set or covered & g:
            return float("inf")
        covered |= g
        total += w
    for name in node_set - covered:
        w = by_members.get(frozenset((name,)))
        if w is None:
            return float("inf")
        total += w
    return total


@stage("solve")
def _stage_solve(state: ComposeState):
    """Solve every subgraph's set-partitioning ILP (pure; fans out).

    Components replayed from the cache contribute their recorded selection
    without a solve; freshly solved components write their outcome back to
    the cache under the digest the partition stage computed.  When the
    session cache holds a prior selection for a subgraph (same node set,
    different content — e.g. re-weighed after neighbors moved), it is
    re-weighed into a warm-start bound that prunes the fresh solve without
    changing its result.
    """
    specs = []
    warm_specs = 0
    for i, (part, cands) in enumerate(zip(state.parts, state.candidates)):
        spec = make_spec(i, part.nodes, cands, state.config.solver)
        if state.cache is not None:
            wb = _warm_bound(spec.nodes, cands, state.cache.get_incumbent(spec.nodes))
            if wb < float("inf"):
                spec = make_spec(i, part.nodes, cands, state.config.solver, wb)
                warm_specs += 1
        specs.append(spec)
    results = solve_subproblems(specs, workers=state.workers)
    chosen: list[CandidateMBR] = []
    part_chosen: list[list[CandidateMBR]] = [[] for _ in state.parts]
    nodes = 0
    for k, (res, cands) in enumerate(zip(results, state.candidates)):
        nodes += res.nodes_explored
        picked = [c for c in (cands[i] for i in res.chosen) if not c.is_singleton]
        part_chosen[k] = picked
        chosen.extend(picked)
    if state.cache is not None:
        for k, spec in enumerate(specs):
            state.cache.put_incumbent(
                spec.nodes, tuple(frozenset(c.members) for c in part_chosen[k])
            )
        for digest, comp_nodes, start, end in state.comp_work:
            if digest is None:
                continue
            state.cache.put(
                ComponentCache(
                    digest=digest,
                    nodes=comp_nodes,
                    subgraphs=end - start,
                    candidates=sum(
                        len(state.candidates[k]) for k in range(start, end)
                    ),
                    ilp_nodes=sum(
                        results[k].nodes_explored for k in range(start, end)
                    ),
                    chosen=tuple(
                        c for k in range(start, end) for c in part_chosen[k]
                    ),
                )
            )
    state.result.ilp_nodes += nodes
    state.chosen = state.reused_chosen + chosen
    return {
        "subproblems": len(specs),
        "ilp_nodes": nodes,
        "chosen": len(state.chosen),
        "workers": state.workers,
        "warm_starts": warm_specs,
    }


@stage("apply")
def _stage_apply(state: ComposeState):
    """Map, place, and commit the selected candidates (mutates the design)."""
    with state.design.track() as tracker:
        state.pass_cells = _apply_candidates(
            state.design,
            state.chosen,
            state.infos,
            state.scan_model,
            state.config,
            state.result,
        )
    state.new_cells = [
        c for c in state.new_cells if c.name in state.design.cells
    ] + state.pass_cells
    record = tracker.record()
    state.change_log.append(record)
    state.timer.apply_change(record)
    return {"composed": len(state.pass_cells)}


@stage("scan")
def _stage_scan(state: ComposeState):
    """Reorder and restitch scan chains around the new MBRs."""
    if state.scan_model is None:
        return {"chains": 0}
    state.scan_model.reorder_chains(state.design)
    with state.design.track() as tracker:
        state.scan_model.restitch(state.design)
    record = tracker.record()
    state.change_log.append(record)
    state.timer.apply_change(record)
    return {"chains": len(state.scan_model.chains)}


@stage("legalize")
def _stage_legalize(state: ComposeState):
    """Row-legalize the freshly placed MBRs."""
    live = [c for c in state.new_cells if c.name in state.design.cells]
    if not (state.config.run_legalize and live):
        return {"moved": 0}
    rows = PlacementRows(
        state.design.die,
        state.design.library.technology.row_height,
        state.design.library.technology.site_width,
    )
    with state.design.track() as tracker:
        state.result.legalization = legalize(
            state.design,
            rows,
            movable=live,
            max_displacement=state.config.legalize_max_displacement,
        )
    record = tracker.record()
    state.change_log.append(record)
    state.timer.apply_change(record)
    return {"moved": len(state.result.legalization.moved)}


PASS_PIPELINE: Pipeline[ComposeState] = Pipeline(
    (
        _stage_analyze,
        _stage_graph,
        _stage_partition,
        _stage_enumerate,
        _stage_solve,
        _stage_apply,
    )
)

FINALIZE_PIPELINE: Pipeline[ComposeState] = Pipeline((_stage_scan, _stage_legalize))


def compose_design(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: ComposerConfig | None = None,
    workers: int | None = None,
) -> CompositionResult:
    """Run the full placement-aware ILP composition on a placed design.

    The design is edited in place; ``timer`` absorbs every edit through
    scoped :meth:`~repro.sta.timer.Timer.apply_change` calls (dirty-cone
    retiming instead of full invalidation).  ``workers`` overrides ``config.workers`` (process-pool width of the
    solve stage; any value returns bit-identical results).  Returns the
    :class:`CompositionResult` record, including its stage
    :class:`~repro.engine.StageTrace`.
    """
    config = config or ComposerConfig()
    t0 = time.perf_counter()
    result = CompositionResult(registers_before=design.total_register_count())
    trace = StageTrace()
    state = ComposeState(
        design,
        timer,
        scan_model,
        config=config,
        result=result,
        workers=config.workers if workers is None else workers,
    )

    with obs.span(
        "compose.run", cat="compose", registers=result.registers_before
    ) as sp:
        for pass_index in range(max(1, config.passes)):
            state.pass_index = pass_index
            with obs.span("compose.pass", cat="compose", index=pass_index):
                PASS_PIPELINE.run(state, trace)
            if not state.pass_cells:
                break

        FINALIZE_PIPELINE.run(state, trace)

        result.registers_after = design.total_register_count()
        sp.set(
            registers_after=result.registers_after,
            composed=len(result.composed),
            ilp_nodes=result.ilp_nodes,
        )
    result.runtime_seconds = time.perf_counter() - t0
    result.trace = trace
    obs.log(
        "compose.done",
        registers_before=result.registers_before,
        registers_after=result.registers_after,
        composed=len(result.composed),
        runtime_seconds=round(result.runtime_seconds, 6),
    )
    return result


def _bit_order(
    members: list[RegisterInfo], scan_model: ScanModel | None
) -> list[RegisterBit]:
    """Old register bits in the order they take the new cell's bit slots.

    Members on a scan chain come in chain order (so an internal-scan MBR
    preserves it); remaining members follow in name order.
    """

    def sort_key(info: RegisterInfo):
        if scan_model is not None:
            chain = scan_model.chain_of(info.name)
            if chain is not None:
                return (0, chain.name, chain.position(info.name))
        return (1, info.name, 0)

    ordered = sorted(members, key=sort_key)
    bits: list[RegisterBit] = []
    for info in ordered:
        bits.extend(RegisterView(info.cell).connected_bits())
    return bits


def _bit_map(bit_order: list[RegisterBit]) -> dict[str, tuple[int, ...]]:
    """Map each source register to the new-cell bit indices it occupies."""
    mapping: dict[str, list[int]] = {}
    for new_index, old_bit in enumerate(bit_order):
        mapping.setdefault(old_bit.cell.name, []).append(new_index)
    return {name: tuple(indices) for name, indices in mapping.items()}


def _apply_candidates(
    design: Design,
    chosen: list[CandidateMBR],
    infos: dict[str, RegisterInfo],
    scan_model: ScanModel | None,
    config: ComposerConfig,
    result: CompositionResult,
):
    """Map, place, and commit every selected multi-register candidate."""
    new_cells = []
    for cand in sorted(chosen, key=lambda c: (-c.bits, c.members)):
        members = [infos[m] for m in cand.members]
        target = cand.mapping.cell
        bit_order = _bit_order(members, scan_model)
        region = _placement_window(design, cand.region.rect, target)
        origin = place_mbr(region, target, bit_order, method=config.placement_method)
        try:
            new_cell = compose_mbr(
                design,
                [m.cell for m in members],
                target,
                origin,
                bit_order=bit_order,
            ).new_cell
        except ComposeError as exc:
            result.rejected.append((cand.members, str(exc)))
            continue
        if scan_model is not None:
            scan_model.replace_group(
                list(cand.members),
                new_cell.name,
                bit_map=_bit_map(bit_order),
                multi=target.scan_style is ScanStyle.MULTI,
            )
        new_cells.append(new_cell)
        result.composed.append(
            ComposedGroup(
                new_cell=new_cell.name,
                libcell=target.name,
                members=cand.members,
                bits=cand.bits,
                weight=cand.weight,
                incomplete=cand.is_incomplete,
            )
        )
    return new_cells


def _placement_window(design: Design, region: Rect, target) -> Rect:
    """Clip a feasible region so the new cell stays on the die."""
    window = Rect(
        design.die.xlo,
        design.die.ylo,
        max(design.die.xlo, design.die.xhi - target.width),
        max(design.die.ylo, design.die.yhi - target.height),
    )
    clipped = region.intersect(window)
    if clipped is None:
        # Fully constrained region outside the window: take the window point
        # nearest the region (degenerate but safe).
        return Rect.point(window.clamp_point(region.center))
    return clipped
