"""The MBR composition engine: ILP selection and netlist application.

This ties Sections 2-4 together: analyze registers, build and partition the
compatibility graph, enumerate weighted candidates per subgraph, solve the
set-partitioning ILP exactly, then apply each selected candidate — map it to
a library cell, place it with the wire-length LP, rewrite the netlist, track
scan chains — and finally legalize the new cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.candidates import CandidateConfig, CandidateMBR, enumerate_candidates
from repro.core.compatibility import (
    CompatibilityConfig,
    RegisterInfo,
    analyze_registers,
)
from repro.core.graph import build_compatibility_graph
from repro.core.mbr_placement import place_mbr
from repro.core.partition import DEFAULT_MAX_NODES, partition_graph
from repro.geometry.rect import Rect
from repro.ilp.setpart import SetPartitionProblem, solve_set_partition
from repro.ilp.scipy_backend import solve_set_partition_scipy
from repro.netlist.design import Design
from repro.netlist.edit import ComposeError, compose_mbr
from repro.netlist.registers import RegisterBit, RegisterView
from repro.placement.legalize import LegalizeResult, PlacementRows, legalize
from repro.scan.model import ScanModel
from repro.sta.timer import Timer


@dataclass
class ComposerConfig:
    """All knobs of one composition run."""

    compatibility: CompatibilityConfig = field(default_factory=CompatibilityConfig)
    candidates: CandidateConfig = field(default_factory=CandidateConfig)
    max_subgraph_nodes: int = DEFAULT_MAX_NODES
    solver: str = "exact"  # "exact" (our branch-and-bound) or "scipy"
    placement_method: str = "pwl"  # "pwl" or "lp"
    run_legalize: bool = True
    legalize_max_displacement: float | None = None
    passes: int = 2
    """Incremental composition passes.  The paper applies composition
    incrementally, including on MBRs composed earlier; a second pass over
    the re-analyzed design merges newly-adjacent MBRs (e.g. two fresh 4-bit
    cells into an 8-bit) and groups whose polygons became clean when their
    blockers merged away."""


@dataclass
class ComposedGroup:
    """One applied composition."""

    new_cell: str
    libcell: str
    members: tuple[str, ...]
    bits: int
    weight: float
    incomplete: bool


@dataclass
class CompositionResult:
    """Statistics and records of a composition run."""

    composed: list[ComposedGroup] = field(default_factory=list)
    rejected: list[tuple[tuple[str, ...], str]] = field(default_factory=list)
    registers_before: int = 0
    registers_after: int = 0
    composable_registers: int = 0
    subgraphs: int = 0
    candidates_considered: int = 0
    ilp_nodes: int = 0
    runtime_seconds: float = 0.0
    legalization: LegalizeResult | None = None

    @property
    def register_reduction(self) -> int:
        return self.registers_before - self.registers_after


def compose_design(
    design: Design,
    timer: Timer,
    scan_model: ScanModel | None = None,
    config: ComposerConfig | None = None,
) -> CompositionResult:
    """Run the full placement-aware ILP composition on a placed design.

    The design is edited in place; ``timer`` is invalidated at the end.
    Returns the :class:`CompositionResult` record.
    """
    config = config or ComposerConfig()
    t0 = time.perf_counter()
    result = CompositionResult(registers_before=design.total_register_count())

    new_cells = []
    for pass_index in range(max(1, config.passes)):
        infos = analyze_registers(design, timer, scan_model, config.compatibility)
        if pass_index == 0:
            result.composable_registers = sum(
                1 for i in infos.values() if i.composable
            )
        from repro.core.weights import RegisterField

        all_regs = RegisterField(list(infos.values()))

        graph = build_compatibility_graph(infos, scan_model, config.compatibility)
        parts = partition_graph(graph, config.max_subgraph_nodes)
        result.subgraphs += len(parts)

        chosen: list[CandidateMBR] = []
        for part in parts:
            candidates = enumerate_candidates(
                part, all_regs, design.library, scan_model, config.candidates
            )
            result.candidates_considered += len(candidates)
            selected, nodes = _solve_subgraph(part, candidates, config.solver)
            result.ilp_nodes += nodes
            chosen.extend(c for c in selected if not c.is_singleton)

        pass_cells = _apply_candidates(design, chosen, infos, scan_model, config, result)
        new_cells = [c for c in new_cells if c.name in design.cells] + pass_cells
        timer.dirty()
        if not pass_cells:
            break

    if scan_model is not None:
        scan_model.reorder_chains(design)
        scan_model.restitch(design)
    if config.run_legalize and new_cells:
        rows = PlacementRows(
            design.die,
            design.library.technology.row_height,
            design.library.technology.site_width,
        )
        result.legalization = legalize(
            design,
            rows,
            movable=new_cells,
            max_displacement=config.legalize_max_displacement,
        )

    timer.dirty()
    result.registers_after = design.total_register_count()
    result.runtime_seconds = time.perf_counter() - t0
    return result


def _solve_subgraph(
    part, candidates: list[CandidateMBR], solver: str
) -> tuple[list[CandidateMBR], int]:
    """Solve one subgraph's weighted set-partitioning ILP."""
    names = sorted(part.nodes)
    index = {n: i for i, n in enumerate(names)}
    problem = SetPartitionProblem(
        n_elements=len(names),
        subsets=tuple(frozenset(index[m] for m in c.members) for c in candidates),
        weights=tuple(c.weight for c in candidates),
    )
    if solver == "scipy":
        sol = solve_set_partition_scipy(problem)
        nodes = 0
    elif solver == "exact":
        sol = solve_set_partition(problem)
        nodes = sol.nodes_explored
        if not sol.optimal:
            # Pathologically dense subproblem: let HiGHS finish the job and
            # keep whichever solution is better.
            alt = solve_set_partition_scipy(problem)
            if alt.feasible and alt.objective < sol.objective - 1e-9:
                sol = alt
    else:
        raise ValueError(f"unknown solver {solver!r}")
    if not sol.feasible:  # pragma: no cover - singletons guarantee feasibility
        raise RuntimeError("composition ILP infeasible despite singleton candidates")
    return [candidates[i] for i in sol.chosen], nodes


def _bit_order(
    members: list[RegisterInfo], scan_model: ScanModel | None
) -> list[RegisterBit]:
    """Old register bits in the order they take the new cell's bit slots.

    Members on a scan chain come in chain order (so an internal-scan MBR
    preserves it); remaining members follow in name order.
    """

    def sort_key(info: RegisterInfo):
        if scan_model is not None:
            chain = scan_model.chain_of(info.name)
            if chain is not None:
                return (0, chain.name, chain.position(info.name))
        return (1, info.name, 0)

    ordered = sorted(members, key=sort_key)
    bits: list[RegisterBit] = []
    for info in ordered:
        bits.extend(RegisterView(info.cell).connected_bits())
    return bits


def _bit_map(bit_order: list[RegisterBit]) -> dict[str, tuple[int, ...]]:
    """Map each source register to the new-cell bit indices it occupies."""
    mapping: dict[str, list[int]] = {}
    for new_index, old_bit in enumerate(bit_order):
        mapping.setdefault(old_bit.cell.name, []).append(new_index)
    return {name: tuple(indices) for name, indices in mapping.items()}


def _apply_candidates(
    design: Design,
    chosen: list[CandidateMBR],
    infos: dict[str, RegisterInfo],
    scan_model: ScanModel | None,
    config: ComposerConfig,
    result: CompositionResult,
):
    """Map, place, and commit every selected multi-register candidate."""
    new_cells = []
    for cand in sorted(chosen, key=lambda c: (-c.bits, c.members)):
        members = [infos[m] for m in cand.members]
        target = cand.mapping.cell
        bit_order = _bit_order(members, scan_model)
        region = _placement_window(design, cand.region.rect, target)
        origin = place_mbr(region, target, bit_order, method=config.placement_method)
        try:
            new_cell = compose_mbr(
                design,
                [m.cell for m in members],
                target,
                origin,
                bit_order=bit_order,
            )
        except ComposeError as exc:
            result.rejected.append((cand.members, str(exc)))
            continue
        if scan_model is not None:
            scan_model.replace_group(
                list(cand.members), new_cell.name, bit_map=_bit_map(bit_order)
            )
        new_cells.append(new_cell)
        result.composed.append(
            ComposedGroup(
                new_cell=new_cell.name,
                libcell=target.name,
                members=cand.members,
                bits=cand.bits,
                weight=cand.weight,
                incomplete=cand.is_incomplete,
            )
        )
    return new_cells


def _placement_window(design: Design, region: Rect, target) -> Rect:
    """Clip a feasible region so the new cell stays on the die."""
    window = Rect(
        design.die.xlo,
        design.die.ylo,
        max(design.die.xlo, design.die.xhi - target.width),
        max(design.die.ylo, design.die.yhi - target.height),
    )
    clipped = region.intersect(window)
    if clipped is None:
        # Fully constrained region outside the window: take the window point
        # nearest the region (degenerate but safe).
        return Rect.point(window.clamp_point(region.center))
    return clipped
